"""Execution counters shared by every join algorithm in the library.

The paper's headline evaluation (Figure 3) reports two metrics: running
time and *intermediate result size*. :class:`JoinStats` records both, plus
lower-level effort counters (comparisons, seeks, emitted tuples) that the
ablation benchmarks use. Algorithms accept an optional ``stats`` argument;
passing ``None`` costs almost nothing because the null object pattern is
implemented by a shared :data:`NULL_STATS` instance whose methods are
no-ops.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class StageRecord:
    """Size of one intermediate stage of a join (e.g. one attribute level)."""

    label: str
    size: int


class JoinStats:
    """Mutable counters threaded through a join execution.

    ``max_intermediate`` is the quantity bounded by Lemma 3.5: the largest
    number of partial tuples alive at any stage of the algorithm.
    """

    def __init__(self) -> None:
        self.stages: list[StageRecord] = []
        self.max_intermediate: int = 0
        self.total_intermediate: int = 0
        self.comparisons: int = 0
        self.seeks: int = 0
        self.emitted: int = 0
        self.filtered: int = 0
        self.wall_time: float = 0.0
        self.phase_times: dict[str, float] = {}
        self._start: float | None = None

    # -- stage accounting ------------------------------------------------

    def record_stage(self, label: str, size: int) -> None:
        """Record that stage *label* produced *size* live partial tuples."""
        self.stages.append(StageRecord(label, size))
        self.total_intermediate += size
        if size > self.max_intermediate:
            self.max_intermediate = size

    # -- effort counters ---------------------------------------------------

    def count_comparisons(self, n: int = 1) -> None:
        self.comparisons += n

    def count_seeks(self, n: int = 1) -> None:
        self.seeks += n

    def count_emitted(self, n: int = 1) -> None:
        self.emitted += n

    def count_filtered(self, n: int = 1) -> None:
        self.filtered += n

    # -- timing ----------------------------------------------------------

    def start_timer(self) -> None:
        self._start = time.perf_counter()

    def stop_timer(self) -> None:
        if self._start is not None:
            self.wall_time += time.perf_counter() - self._start
            self._start = None

    def record_phase(self, label: str, seconds: float) -> None:
        """Accumulate time spent in a named execution phase (e.g. the
        engine's dictionary-encoding step vs the join proper)."""
        self.phase_times[label] = self.phase_times.get(label, 0.0) + seconds

    @contextmanager
    def phase(self, label: str):
        """Context manager timing one phase into :attr:`phase_times`."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_phase(label, time.perf_counter() - start)

    # -- merging (parallel workers) ----------------------------------------

    def absorb(self, summary: "dict[str, float]", *,
               stage_label: str | None = None) -> None:
        """Fold one worker's counter ``summary()`` into this object.

        Used by the parallel executor: effort counters add up across
        morsels, ``max_intermediate`` takes the per-morsel peak (the
        largest number of partial tuples alive in any one worker), and
        an optional stage records the morsel's emitted count so stage
        listings show the partition shape.
        """
        self.comparisons += int(summary.get("comparisons", 0))
        self.seeks += int(summary.get("seeks", 0))
        self.emitted += int(summary.get("emitted", 0))
        self.filtered += int(summary.get("filtered", 0))
        self.total_intermediate += int(summary.get("total_intermediate", 0))
        peak = int(summary.get("max_intermediate", 0))
        if peak > self.max_intermediate:
            self.max_intermediate = peak
        if stage_label is not None:
            # Not record_stage: total_intermediate above already counted
            # the worker's stages; this entry only names the morsel.
            self.stages.append(
                StageRecord(stage_label, int(summary.get("emitted", 0))))

    # -- reporting ---------------------------------------------------------

    def stage_sizes(self) -> list[int]:
        return [record.size for record in self.stages]

    def summary(self) -> dict[str, float]:
        """A flat dict for printing in benchmark tables."""
        return {
            "max_intermediate": self.max_intermediate,
            "total_intermediate": self.total_intermediate,
            "comparisons": self.comparisons,
            "seeks": self.seeks,
            "emitted": self.emitted,
            "filtered": self.filtered,
            "wall_time": self.wall_time,
        }

    def __repr__(self) -> str:
        return (f"JoinStats(max_intermediate={self.max_intermediate}, "
                f"stages={len(self.stages)}, comparisons={self.comparisons})")


class _NullStats(JoinStats):
    """A JoinStats whose mutators are no-ops; shared default instance."""

    def record_stage(self, label: str, size: int) -> None:  # noqa: D102
        pass

    def count_comparisons(self, n: int = 1) -> None:  # noqa: D102
        pass

    def count_seeks(self, n: int = 1) -> None:  # noqa: D102
        pass

    def count_emitted(self, n: int = 1) -> None:  # noqa: D102
        pass

    def count_filtered(self, n: int = 1) -> None:  # noqa: D102
        pass

    def start_timer(self) -> None:  # noqa: D102
        pass

    def stop_timer(self) -> None:  # noqa: D102
        pass

    def record_phase(self, label: str, seconds: float) -> None:  # noqa: D102
        pass

    def absorb(self, summary: "dict[str, float]", *,
               stage_label: str | None = None) -> None:  # noqa: D102
        pass


#: Shared do-nothing stats object used when callers pass ``stats=None``.
NULL_STATS = _NullStats()


def ensure_stats(stats: JoinStats | None) -> JoinStats:
    """Return *stats* or the shared null object."""
    return NULL_STATS if stats is None else stats
