"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class RelationError(ReproError):
    """A relation is malformed (arity mismatch, unknown attribute, ...)."""


class QueryError(ReproError):
    """A query is malformed (unknown relation, unbound attribute, ...)."""


class XMLParseError(ReproError):
    """The XML parser rejected its input."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        detail = message
        if line is not None and column is not None:
            detail = f"{message} (line {line}, column {column})"
        elif position is not None:
            detail = f"{message} (offset {position})"
        super().__init__(detail)
        self.position = position
        self.line = line
        self.column = column


class TwigError(ReproError):
    """A twig pattern is malformed or cannot be parsed."""


class LPError(ReproError):
    """The linear-program solver failed (infeasible, unbounded, ...)."""


class PlanError(ReproError):
    """A join plan or attribute order is invalid for the given query."""


class EngineError(ReproError):
    """The encoded execution engine was misused (unknown algorithm,
    value outside an encoded domain, instance/algorithm mismatch, ...)."""


class TransportError(EngineError):
    """No parallel transport can carry this job on this platform
    (e.g. a twig-bearing join without ``fork``: validators pin live
    documents, which are never serialized). Subclasses
    :class:`EngineError` so transport-agnostic callers keep working."""


class UpdateError(ReproError):
    """An update is invalid (unknown input, foreign node, deleting the
    document root, row/arity mismatch, ...)."""


class SnapshotError(ReproError):
    """A snapshot is misused (read after release, double release, a
    pinned version whose artifact was never preserved, ...)."""


class ServiceError(ReproError):
    """A service request is invalid or cannot be admitted.

    ``code`` is the wire-level error code (``bad_request``, ``quota``,
    ``backpressure``, ``unknown_session``, ...) echoed to clients by the
    line-JSON protocol (:mod:`repro.service.protocol`).
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
