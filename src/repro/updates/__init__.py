"""The incremental update subsystem.

Accepts tuple inserts/deletes on relations and subtree insert/delete /
value-change edits on XML documents, and propagates *deltas* through
every layer that PRs 1-2 built batch-style: relation statistics and
per-attribute dictionaries, columnar document views and document
statistics, engine tries, planner caches, twig answers, and the
materialized query result itself. See ``docs/updates.md``.

Entry points:

* :class:`~repro.updates.session.QuerySession` — hold a
  :class:`~repro.core.multimodel.MultiModelQuery` open across an update
  stream and re-answer it incrementally;
* :class:`~repro.updates.relations.VersionedRelation` — one relation
  under updates (delta log + installed stats);
* :class:`~repro.updates.documents.DocumentEditor` — one document under
  updates (patched labels/views/stats, churn-bounded);
* :class:`~repro.updates.encodings.IncrementalInstance` — maintained
  dictionaries and tries for the relational kernels.
"""

from repro.updates.delta import (
    SUBTREE_DELETE,
    SUBTREE_INSERT,
    VALUE_CHANGE,
    DocumentDelta,
    RelationDelta,
)
from repro.updates.dictionary import IncrementalDictionary
from repro.updates.documents import DocumentEditor
from repro.updates.encodings import IncrementalInstance
from repro.updates.relations import VersionedRelation
from repro.updates.session import QuerySession
from repro.updates.twigs import MaintainedTwigAnswer

__all__ = [
    "DocumentDelta",
    "DocumentEditor",
    "IncrementalDictionary",
    "IncrementalInstance",
    "MaintainedTwigAnswer",
    "QuerySession",
    "RelationDelta",
    "SUBTREE_DELETE",
    "SUBTREE_INSERT",
    "VALUE_CHANGE",
    "VersionedRelation",
]
