"""Delta records: the version-stamped log entries of the update layer.

Every mutation accepted by the update subsystem is recorded as one
immutable delta — single tuples on the relational side, single subtrees
or value edits on the XML side. Logs serve three purposes: they document
*what* changed (the differential test harness replays them against a
rebuild-from-scratch oracle), they let downstream caches refresh from
the change instead of rescanning the input, and they carry the version
stamp that ties a delta to the input state it produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.schema import Value


@dataclass(frozen=True)
class RelationDelta:
    """One batch of tuple changes applied to a named relation.

    ``version`` is the version of the relation *after* the batch;
    ``inserted``/``deleted`` hold only rows that actually changed
    membership (inserting a present row or deleting an absent one is
    filtered out before logging, so replaying a log is idempotent).
    """

    relation: str
    version: int
    inserted: tuple[tuple[Value, ...], ...] = ()
    deleted: tuple[tuple[Value, ...], ...] = ()

    @property
    def net_rows(self) -> int:
        """The delta's net cardinality change (inserts minus deletes)."""
        return len(self.inserted) - len(self.deleted)


#: Document delta kinds.
SUBTREE_INSERT = "subtree_insert"
SUBTREE_DELETE = "subtree_delete"
VALUE_CHANGE = "value_change"


@dataclass(frozen=True)
class DocumentDelta:
    """One structural or value edit applied to a document.

    ``version`` is the document version after the edit; ``nodes`` is the
    number of tree nodes the edit touched (the churn unit that drives the
    rebuild fallback); ``start`` locates the edit by the pre-edit region
    label of the subtree root / edited node; ``rebuilt`` records whether
    the edit was applied as an in-place patch (False) or fell back to a
    full reindex + view rebuild (True).
    """

    kind: str
    version: int
    nodes: int
    start: int
    rebuilt: bool = False
