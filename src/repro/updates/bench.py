"""Shared scenarios for the update benchmark.

Both front-ends — ``python -m repro bench --suite updates`` and
``benchmarks/bench_updates.py`` — time the same code through this
module, so the CLI table, the pytest gate and CI can never drift apart
on what they measure. Each scenario returns per-operation timings for
the delta-apply path (a live :class:`~repro.updates.session.
QuerySession`) against the rebuild-from-scratch path (fresh encode +
full evaluation per change) plus an exactness check between the two.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.synthetic import agm_tight_triangle
from repro.engine.planner import run_query
from repro.relational.relation import Relation
from repro.updates.session import QuerySession
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

#: The acceptance target: delta-apply must beat rebuild by this factor
#: for single-tuple / single-subtree changes on both scenarios.
SPEEDUP_TARGET = 3.0


@dataclass(frozen=True)
class UpdateTiming:
    """One operation kind's delta-apply vs rebuild cost (ms/update)."""

    label: str
    delta_ms: float
    rebuild_ms: float

    @property
    def ratio(self) -> float:
        """Rebuild cost over delta-apply cost (the speedup factor)."""
        return self.rebuild_ms / max(self.delta_ms, 1e-9)

    @property
    def meets_target(self) -> bool:
        """Does the speedup reach :data:`SPEEDUP_TARGET`?"""
        return self.ratio >= SPEEDUP_TARGET


@dataclass(frozen=True)
class ScenarioResult:
    """All timings of one scenario plus the delta/rebuild agreement."""

    title: str
    timings: tuple[UpdateTiming, ...]
    consistent: bool

    @property
    def ok(self) -> bool:
        """Scenario verdict: answers agree and every timing hits target."""
        return self.consistent and all(t.meets_target
                                       for t in self.timings)


def _per_op(fn, repeat: int) -> float:
    start = time.perf_counter()
    for i in range(repeat):
        fn(i)
    return (time.perf_counter() - start) * 1e3 / repeat


def triangle_scenario(n: int = 300) -> ScenarioResult:
    """The triangle query under single-tuple insert/delete churn."""
    relations = agm_tight_triangle(n)
    session = QuerySession(MultiModelQuery(relations, name="triangle"))

    def current_clone() -> MultiModelQuery:
        return MultiModelQuery(
            [Relation(r.name, r.schema, r.rows)
             for r in session.query.relations], name="triangle")

    def delta(i: int) -> None:
        row = (n + 1 + i, n + 1 + i)
        session.insert("R", row)
        session.answer()
        session.delete("R", row)
        session.answer()

    delta_ms = _per_op(delta, 12) / 2  # two updates per cycle
    rebuild_ms = _per_op(lambda _i: run_query(current_clone()), 6)
    consistent = session.answer().rows == run_query(current_clone()).rows
    return ScenarioResult(
        title=f"triangle (n={n}, single-tuple insert/delete)",
        timings=(UpdateTiming("single tuple", delta_ms, rebuild_ms),),
        consistent=consistent)


def xmark_scenario(factor: float = 2.0) -> ScenarioResult:
    """An XMark document under single-subtree churn and value edits."""
    document = xmark_document(factor, seed=7)
    twig = parse_twig("p=person(/nm=name, //i=interest)")
    session = QuerySession(
        MultiModelQuery([], [TwigBinding(twig, document)], name="X"))
    people = document.nodes("people")[0]
    inserted: list[XMLNode] = []

    def insert(i: int) -> None:
        subtree = XMLNode("person", attributes={"id": f"bench{i}"})
        subtree.add("name", text=f"bench-person-{i}")
        subtree.add("interest", text=f"category{i % 5}")
        inserted.append(subtree)
        session.insert_subtree("X", people, subtree)
        session.answer()

    def delete(i: int) -> None:
        session.delete_subtree("X", inserted[i])
        session.answer()

    insert_ms = _per_op(insert, 8)
    interests = document.nodes("interest")

    def change(i: int) -> None:
        session.change_value("X", interests[i % len(interests)],
                             f"retuned{i}")
        session.answer()

    change_ms = _per_op(change, 8)
    delete_ms = _per_op(delete, len(inserted))

    # The replica clone is untimed setup; reindex + encode + match is
    # exactly what the rebuild path pays per change.
    replica = XMLDocument(document.root.copy())

    def rebuild(_i: int) -> None:
        replica.reindex()
        run_query(MultiModelQuery([], [TwigBinding(twig, replica)],
                                  name="X"))

    rebuild_ms = _per_op(rebuild, 3)
    oracle = run_query(MultiModelQuery(
        [], [TwigBinding(twig, XMLDocument(document.root.copy()))],
        name="X"))
    return ScenarioResult(
        title=(f"XMark factor {factor:g} ({document.size()} nodes, "
               "single-subtree insert/delete + value change)"),
        timings=(UpdateTiming("subtree insert", insert_ms, rebuild_ms),
                 UpdateTiming("subtree delete", delete_ms, rebuild_ms),
                 UpdateTiming("value change", change_ms, rebuild_ms)),
        consistent=session.answer().rows == oracle.rows)
