"""Delta-maintained attribute dictionaries (append-only + remap).

The engine's :class:`~repro.engine.dictionary.Dictionary` is immutable
and assigns codes in value order; rebuilding it on every single-tuple
update would re-sort the whole domain per change. An
:class:`IncrementalDictionary` keeps the same duck interface (``encode``
/ ``decode`` / ``codes`` / ``values``) but *learns* unseen values by
appending codes at the end of the table, which temporarily breaks the
code-order-equals-value-order invariant. The join kernels only need
per-trie key lists sorted **by code** plus cross-input code equality —
both survive appending — so queries stay correct between remaps; only
value-order reasoning (none of the kernels' hot paths) would not.

The *overflow remap threshold* bounds the drift: once the appended
fraction exceeds it, :meth:`compact` re-sorts the domain, restores the
order invariant, and returns the old-code -> new-code remap so the
owning :class:`~repro.updates.encodings.IncrementalInstance` can
re-encode its tries. After a compaction the dictionary is equal, code
for code, to one built from scratch over the same domain.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import EngineError
from repro.relational.schema import Value, sort_key


class IncrementalDictionary:
    """A mutable value <-> code bijection with append-only growth.

    >>> d = IncrementalDictionary("a", [3, 1])
    >>> d.encode(1), d.encode(3)
    (0, 1)
    >>> d.learn(2)   # appended past the sorted base
    2
    >>> d.overflow
    1
    >>> d.compact()  # old code -> new code
    [0, 2, 1]
    >>> [d.decode(c) for c in range(len(d))]
    [1, 2, 3]
    """

    __slots__ = ("attribute", "values", "codes", "overflow")

    def __init__(self, attribute: str, domain: Iterable[Value] = ()):
        self.attribute = attribute
        if not isinstance(domain, (set, frozenset)):
            domain = set(domain)
        #: Domain values indexed by code: a sorted base followed by
        #: learned values in arrival order.
        self.values: list[Value] = sorted(domain, key=sort_key)
        self.codes: dict[Value, int] = {
            value: code for code, value in enumerate(self.values)}
        #: Number of values appended since the last compaction.
        self.overflow = 0

    # -- the engine Dictionary duck interface -----------------------------

    def encode(self, value: Value) -> int:
        """The code of *value* (EngineError if outside the domain)."""
        try:
            return self.codes[value]
        except KeyError:
            raise EngineError(
                f"value {value!r} is not in the encoded domain of "
                f"attribute {self.attribute!r}") from None

    def encode_or_none(self, value: Value) -> int | None:
        """The code of *value*, or None when it is not in the domain."""
        return self.codes.get(value)

    def decode(self, code: int) -> Value:
        """The value behind *code* (EngineError if out of range)."""
        try:
            return self.values[code]
        except IndexError:
            raise EngineError(
                f"code {code!r} is outside the encoded domain of "
                f"attribute {self.attribute!r} (size {len(self.values)})"
            ) from None

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: object) -> bool:
        return value in self.codes

    def __repr__(self) -> str:
        return (f"IncrementalDictionary({self.attribute!r}, "
                f"{len(self.values)} values, overflow={self.overflow})")

    # -- delta maintenance -------------------------------------------------

    def learn(self, value: Value) -> int:
        """The code of *value*, appending a fresh one if it is unseen.

        Deletions never unlearn a value: its code stays valid (old log
        entries and still-encoded rows may reference it) until the next
        :meth:`compact` garbage-collects nothing but re-sorts — dead
        values cost one table slot each, bounded by the remap threshold's
        eventual rebuild of the owning instance.
        """
        code = self.codes.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self.codes[value] = code
            self.overflow += 1
        return code

    @property
    def overflow_fraction(self) -> float:
        """Appended fraction of the table since the last compaction."""
        return self.overflow / len(self.values) if self.values else 0.0

    def needs_compaction(self, threshold: float) -> bool:
        """Has appended overflow outgrown the *threshold* fraction?"""
        return self.overflow > 0 and self.overflow_fraction > threshold

    def compact(self) -> list[int]:
        """Re-sort the table into value order; return old -> new codes.

        The result is positionally indexed by old code. After compaction
        the dictionary equals one built from scratch over the same
        domain, and ``overflow`` resets to zero.
        """
        old_values = self.values
        self.values = sorted(old_values, key=sort_key)
        self.codes = {value: code for code, value in enumerate(self.values)}
        self.overflow = 0
        return [self.codes[value] for value in old_values]
