"""Incremental maintenance of twig answers under document edits.

The full answer of a twig is a *set* of value tuples, but one tuple may
be witnessed by many embeddings, so set-level deletion needs support
counting: :class:`MaintainedTwigAnswer` keeps ``tuple -> embedding
count`` and turns an edit into an exact answer delta.

The locality argument: every query node of a twig is a descendant of the
twig root, so every node of an embedding lies in the subtree of the
embedding's root image. An edit at (or inserting/removing) a subtree
``S`` can therefore only create or destroy embeddings whose root image
is an ancestor of ``S`` or inside ``S`` — a set of candidate roots of
size O(depth + |S|), not O(document). Re-enumerating the embeddings
rooted at just those candidates before and after the edit yields the
exact count delta; untouched embeddings under the same roots cancel.

The worst case (the twig root's tag sits at or near the document root)
degrades to a full re-match of that twig — never worse than the rebuild
path, and the common case (edits deep in a large document) touches a
few dozen candidate roots.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.schema import Value
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.navigation import match_embeddings
from repro.xml.twig import TwigQuery


def embeddings_rooted_at(document: XMLDocument, twig: TwigQuery,
                         root_node: XMLNode) -> "list[dict[str, XMLNode]]":
    """All embeddings whose root query node maps to *root_node* — the
    naive matcher with the root pinned, so the matching semantics stay
    in one place (:func:`repro.xml.navigation.match_embeddings`)."""
    return match_embeddings(document, twig, root=root_node)


def candidate_roots(twig: TwigQuery, anchor: XMLNode, *,
                    include_subtree: bool) -> list[XMLNode]:
    """Root-image candidates for embeddings touching *anchor*'s subtree:
    the ancestor-or-self chain, plus (optionally) the subtree itself."""
    tag = twig.root.tag
    roots = [node for node in anchor.path_from_root() if node.tag == tag]
    if include_subtree:
        roots.extend(node for node in anchor.descendants()
                     if node.tag == tag)
    return roots


class MaintainedTwigAnswer:
    """One twig's answer under updates, with embedding support counts."""

    def __init__(self, document: XMLDocument, twig: TwigQuery):
        self.document = document
        self.twig = twig
        self.attributes = twig.attributes
        self.counts: dict[tuple[Value, ...], int] = {}
        for embedding in match_embeddings(document, twig):
            row = self._row(embedding)
            self.counts[row] = self.counts.get(row, 0) + 1
        self._relation: Relation | None = None

    def _row(self, embedding: "dict[str, XMLNode]") -> tuple[Value, ...]:
        return tuple(embedding[a].value for a in self.attributes)

    def relation(self) -> Relation:
        """The current answer (set semantics), over the twig attributes."""
        if self._relation is None:
            self._relation = Relation(self.twig.name, self.attributes,
                                      self.counts)
        return self._relation

    # -- the edit protocol -------------------------------------------------

    def snapshot(self, roots: "list[XMLNode]"
                 ) -> dict[tuple[Value, ...], int]:
        """Support counts of the embeddings rooted at *roots* (call once
        before and once after the edit; the difference is the delta)."""
        counts: dict[tuple[Value, ...], int] = {}
        for root_node in roots:
            for embedding in embeddings_rooted_at(self.document, self.twig,
                                                  root_node):
                row = self._row(embedding)
                counts[row] = counts.get(row, 0) + 1
        return counts

    def apply_snapshots(self, before: dict, after: dict
                        ) -> "tuple[list[tuple], list[tuple]]":
        """Fold a before/after snapshot pair into the maintained counts;
        returns (tuples added to the answer, tuples removed from it)."""
        added: list[tuple[Value, ...]] = []
        removed: list[tuple[Value, ...]] = []
        for row, count in before.items():
            balance = self.counts.get(row, 0) - count
            delta = after.pop(row, 0)  # consumed: handled right here
            balance += delta
            if balance > 0:
                self.counts[row] = balance
            else:
                if row in self.counts:
                    removed.append(row)
                self.counts.pop(row, None)
        for row, count in after.items():
            if count <= 0:
                continue
            if row not in self.counts:
                added.append(row)
            self.counts[row] = self.counts.get(row, 0) + count
        if added or removed:
            self._relation = None
        return added, removed
