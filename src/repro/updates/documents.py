"""Delta application for XML documents and their columnar views.

A :class:`DocumentEditor` is the only sanctioned way to mutate an
:class:`~repro.xml.model.XMLDocument` without paying a full
``reindex()`` + columnar rebuild per change. For a localized edit it

* patches the region labels (``start``/``end``/``level``) and Dewey
  labels on the node objects — a suffix shift plus an ancestor-chain
  fix-up, never a whole-tree re-annotation;
* splices the same change into the cached
  :class:`~repro.xml.columnar.ColumnarDocument` buffers (node columns,
  per-tag postings, per-path node lists) in place, through the
  :mod:`repro.buffers.layout` helpers — splices ride the typed arrays'
  amortized resize, and a label that outgrows a column's typecode comes
  back as a widened copy, which is why every splice site rebinds the
  view slot (and any local alias) to the helper's return value;
* refreshes :class:`~repro.xml.columnar.DocumentStats` from the patched
  arrays (tag and path counts read off the maintained postings — no
  tree walk);
* bumps the document version and *installs* the patched artifacts into
  the version-keyed caches, so every twig algorithm, validator and
  planner estimate transparently reads the refreshed state. The
  relational accelerator (:mod:`repro.xml.accel`) inherits delta
  maintenance through exactly this path: its per-tag node relations
  *are* the maintained postings/columns, so each install is a node-
  relation delta and ``accel`` lowers from the patched arrays with no
  maintenance code of its own (the update oracle's
  ``test_accel_tracks_update_stream`` regime checks this per edit).

Past a cumulative churn threshold (fraction of the tree touched since
the last rebuild) the editor falls back to ``document.reindex()`` and a
fresh build — label gaps never accumulate, and a sequence of large
edits degrades to the rebuild cost it would have paid anyway.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.buffers.layout import delete, make, set_at, shift_from, \
    shift_tail, splice
from repro.errors import UpdateError
from repro.updates.delta import (
    SUBTREE_DELETE,
    SUBTREE_INSERT,
    VALUE_CHANGE,
    DocumentDelta,
)
from repro.xml.columnar import (
    ColumnarDocument,
    DocumentStats,
    columnar,
    document_stats,
    install_columnar,
    install_document_stats,
    invalidate_document_caches,
    stats_from_view,
)
from repro.xml.model import XMLDocument, XMLNode


class DocumentEditor:
    """Applies subtree inserts/deletes and value edits as deltas."""

    def __init__(self, document: XMLDocument, *,
                 churn_threshold: float = 0.5):
        self.document = document
        #: Fraction of the tree that may churn before a full rebuild.
        self.churn_threshold = churn_threshold
        self._churn = 0  # nodes touched since the last rebuild
        self.log: list[DocumentDelta] = []
        self.patches = 0
        self.rebuilds = 0
        #: Optional write-barrier, called with the document *before* the
        #: first mutation of every edit (labels, arrays and tree still in
        #: the pre-edit state). The MVCC layer
        #: (:class:`~repro.mvcc.manager.SnapshotManager`) hooks in here
        #: to freeze a clone of any version a snapshot still pins.
        self.on_before_change = None

    # -- helpers -----------------------------------------------------------

    def _notify_before_change(self) -> None:
        """Run the write-barrier; the edit's validations have passed and
        no state — tree, labels, columnar arrays — is mutated yet."""
        if self.on_before_change is not None:
            self.on_before_change(self.document)

    def _nid_of(self, view: ColumnarDocument, node: XMLNode) -> int:
        nid = (view.nid_index.get(node.start)
               if node.start is not None else None)
        if nid is None or view.nodes[nid] is not node:
            raise UpdateError(
                f"node <{node.tag}> does not belong to the edited document")
        return nid

    def _ancestor_nids(self, view: ColumnarDocument, nid: int) -> list[int]:
        chain = []
        while nid >= 0:
            chain.append(nid)
            nid = view.parents[nid]
        return chain

    def _should_rebuild(self, touched: int) -> bool:
        size = max(self.document.size(), 1)
        return self._churn + touched > self.churn_threshold * size

    def _finish(self, kind: str, touched: int, start: int, *,
                rebuilt: bool, view: ColumnarDocument | None = None,
                ) -> DocumentDelta:
        document = self.document
        if rebuilt:
            # Drop the superseded artifacts explicitly, reindex (which
            # bumps the version), and let the caches rebuild lazily.
            invalidate_document_caches(document)
            document.reindex()
            self._churn = 0
            self.rebuilds += 1
            version = document.version
        else:
            self._churn += touched
            self.patches += 1
            # No DocumentStats field depends on node values, so a value
            # edit carries the current stats object forward unchanged
            # (read before the bump, while the cache key still matches).
            stats = (document_stats(document) if kind == VALUE_CHANGE
                     else None)
            version = document.bump_version()
            assert view is not None
            install_columnar(document, view)
            if stats is None:
                stats = stats_from_view(view)
            install_document_stats(document, stats)
        delta = DocumentDelta(kind=kind, version=version, nodes=touched,
                              start=start, rebuilt=rebuilt)
        self.log.append(delta)
        return delta

    def stats(self) -> DocumentStats:
        """The document's current (delta-maintained) statistics."""
        return document_stats(self.document)

    # -- operations --------------------------------------------------------

    def change_value(self, node: XMLNode, text: str) -> DocumentDelta:
        """Replace *node*'s text content; labels and structure unchanged."""
        view = columnar(self.document)
        nid = self._nid_of(view, node)
        start = node.start
        self._notify_before_change()
        node.text = text
        view.values[nid] = node.value
        return self._finish(VALUE_CHANGE, 1, start, rebuilt=False, view=view)

    def insert_subtree(self, parent: XMLNode, subtree: XMLNode, *,
                       index: int | None = None) -> DocumentDelta:
        """Attach *subtree* as a child of *parent* at *index* (default:
        last), patching labels, arrays, postings and stats in place."""
        if subtree.parent is not None:
            raise UpdateError(
                f"subtree root <{subtree.tag}> is already attached")
        # Only a document root carries start label 0, and roots never
        # detach — so this rejects both inserting this document's own
        # root under a descendant (a cycle) and stealing another live
        # document's tree, while still allowing re-insertion of a
        # previously deleted (start > 0) subtree.
        if subtree.start == 0:
            raise UpdateError(
                f"subtree root <{subtree.tag}> is a document's root; "
                f"insert a detached copy instead (XMLNode.copy)")
        view = columnar(self.document)
        parent_nid = self._nid_of(view, parent)
        if index is None:
            index = len(parent.children)
        if not 0 <= index <= len(parent.children):
            raise UpdateError(
                f"insert index {index} out of range for <{parent.tag}> "
                f"with {len(parent.children)} children")
        sub_nodes = list(subtree.iter())  # pre-order
        m = len(sub_nodes)
        self._notify_before_change()
        if self._should_rebuild(m):
            subtree.parent = parent
            parent.children.insert(index, subtree)
            anchor = parent.start if parent.start is not None else 0
            return self._finish(SUBTREE_INSERT, m, anchor, rebuilt=True)

        # Label space: the new subtree takes [s0, s0 + 2m); every
        # existing label >= s0 shifts up by 2m. In pre-order terms the
        # subtree takes node ids [q, q + m).
        if index < len(parent.children):
            s0 = parent.children[index].start
        else:
            s0 = parent.end
        assert s0 is not None
        shift = 2 * m
        starts, ends = view.starts, view.ends
        q = bisect_left(starts, s0)
        ancestors = self._ancestor_nids(view, parent_nid)

        # 1. Region labels: suffix shift on nodes at nid >= q, plus the
        # end labels of the insertion point's ancestors (their intervals
        # grow to contain the new subtree).
        for node in view.nodes[q:]:
            node.start += shift
            node.end += shift
        view.starts = starts = shift_tail(starts, q, shift)
        ends = shift_tail(ends, q, shift)
        for a in ancestors:
            view.nodes[a].end += shift
            ends = set_at(ends, a, ends[a] + shift)
        view.ends = ends
        view.parents = shift_from(view.parents, q, q, m)

        # 2. Per-tag postings and per-path node lists: shift entries at
        # nid >= q; fix the ancestors' end entries individually.
        for tid in range(len(view.tags)):
            nids = view.tag_nids[tid]
            pos = bisect_left(nids, q)
            if pos < len(nids):
                view.tag_nids[tid] = shift_tail(nids, pos, m)
                view.tag_starts[tid] = shift_tail(view.tag_starts[tid],
                                                  pos, shift)
                view.tag_ends[tid] = shift_tail(view.tag_ends[tid],
                                                pos, shift)
        for a in ancestors:
            tid = view.tag_ids[a]
            pos = bisect_left(view.tag_nids[tid], a)
            column = view.tag_ends[tid]
            view.tag_ends[tid] = set_at(column, pos, column[pos] + shift)
        for pid, nids in enumerate(view.nids_by_path):
            pos = bisect_left(nids, q)
            if pos < len(nids):
                view.nids_by_path[pid] = shift_tail(nids, pos, m)

        # 3. Attach and label the subtree: regions from s0, levels below
        # the parent, Dewey under the parent's label at *index*.
        subtree.parent = parent
        parent.children.insert(index, subtree)
        counter = s0
        base_level = parent.level + 1  # type: ignore[operator]
        label_stack: list[tuple[XMLNode, int, int]] = [(subtree,
                                                        base_level, 0)]
        while label_stack:
            node, level, child_index = label_stack.pop()
            if child_index == 0:
                node.start = counter
                node.level = level
                counter += 1
            if child_index < len(node.children):
                label_stack.append((node, level, child_index + 1))
                label_stack.append((node.children[child_index],
                                    level + 1, 0))
            else:
                node.end = counter
                counter += 1
        subtree.dewey = parent.dewey + (index,)  # type: ignore[operator]
        dewey_stack = [subtree]
        while dewey_stack:
            node = dewey_stack.pop()
            for position, child in enumerate(node.children):
                child.dewey = node.dewey + (position,)
                dewey_stack.append(child)

        # 4. Build the subtree's columns (pre-order == [q, q + m)) and
        # splice them into the node-level arrays.
        nid_of_sub = {id(node): q + offset
                      for offset, node in enumerate(sub_nodes)}
        sub_starts, sub_ends, sub_levels = [], [], []
        sub_parents, sub_tag_ids, sub_values = [], [], []
        sub_deweys, sub_path_ids = [], []
        by_tid: dict[int, list[int]] = {}
        by_pid: dict[int, list[int]] = {}
        for offset, node in enumerate(sub_nodes):
            nid = q + offset
            sub_starts.append(node.start)
            sub_ends.append(node.end)
            sub_levels.append(node.level)
            sub_parents.append(parent_nid if node is subtree
                               else nid_of_sub[id(node.parent)])
            tid = view.tag_index.get(node.tag)
            if tid is None:
                tid = view.tag_index[node.tag] = len(view.tags)
                view.tags.append(node.tag)
                # Narrow empties; the splices below widen them to fit.
                view.tag_nids.append(make("B"))
                view.tag_starts.append(make("B"))
                view.tag_ends.append(make("B"))
            sub_tag_ids.append(tid)
            sub_values.append(node.value)
            sub_deweys.append(node.dewey)
            parent_pid = (view.path_ids[parent_nid] if node is subtree
                          else sub_path_ids[
                              nid_of_sub[id(node.parent)] - q])
            key = (parent_pid, tid)
            pid = view.path_table.get(key)
            if pid is None:
                pid = view.path_table[key] = len(view.paths)
                prefix = view.paths[parent_pid] if parent_pid >= 0 else ()
                view.paths.append(prefix + (node.tag,))
                view.nids_by_path.append(make("B"))
                view.pids_by_last_tag.setdefault(tid, []).append(pid)
            sub_path_ids.append(pid)
            by_tid.setdefault(tid, []).append(nid)
            by_pid.setdefault(pid, []).append(nid)
        view.nodes[q:q] = sub_nodes
        view.starts = starts = splice(starts, q, q, sub_starts)
        view.ends = ends = splice(ends, q, q, sub_ends)
        view.levels = splice(view.levels, q, q, sub_levels)
        view.parents = splice(view.parents, q, q, sub_parents)
        view.tag_ids = splice(view.tag_ids, q, q, sub_tag_ids)
        view.values[q:q] = sub_values
        view.deweys[q:q] = sub_deweys
        view.path_ids = splice(view.path_ids, q, q, sub_path_ids)
        view.size += m

        # 5. Insert the new posting/path entries: the new nids form one
        # contiguous sorted block per tag and per path.
        for tid, new_nids in by_tid.items():
            nids = view.tag_nids[tid]
            pos = bisect_left(nids, q)
            view.tag_nids[tid] = splice(nids, pos, pos, new_nids)
            view.tag_starts[tid] = splice(
                view.tag_starts[tid], pos, pos,
                [starts[n] for n in new_nids])
            view.tag_ends[tid] = splice(
                view.tag_ends[tid], pos, pos,
                [ends[n] for n in new_nids])
        for pid, new_nids in by_pid.items():
            nids = view.nids_by_path[pid]
            pos = bisect_left(nids, q)
            view.nids_by_path[pid] = splice(nids, pos, pos, new_nids)
        view.nid_index = {start: nid
                          for nid, start in enumerate(starts)}

        # 6. Dewey surgery on the following siblings: their component at
        # the parent's depth moves up by one.
        depth = len(parent.dewey)  # type: ignore[arg-type]
        for sibling in parent.children[index + 1:]:
            for node in sibling.iter():
                label = node.dewey
                node.dewey = (label[:depth] + (label[depth] + 1,)
                              + label[depth + 1:])
                view.deweys[view.nid_index[node.start]] = node.dewey

        # 7. Document-level indexes.
        self.document._by_start[q:q] = sub_nodes
        by_tag = self.document._by_tag
        for node in sub_nodes:
            insort(by_tag.setdefault(node.tag, []), node,
                   key=lambda n: n.start)

        return self._finish(SUBTREE_INSERT, m, s0, rebuilt=False, view=view)

    def delete_subtree(self, node: XMLNode) -> DocumentDelta:
        """Detach *node*'s whole subtree, patching everything in place."""
        if node.parent is None:
            raise UpdateError("cannot delete the document root")
        view = columnar(self.document)
        q = self._nid_of(view, node)
        m = (node.end - node.start + 1) // 2  # type: ignore[operator]
        s0 = node.start
        assert s0 is not None
        parent = node.parent
        self._notify_before_change()
        if self._should_rebuild(m):
            parent.children.remove(node)
            node.parent = None
            return self._finish(SUBTREE_DELETE, m, s0, rebuilt=True)

        shift = 2 * m
        parent_nid = view.parents[q]
        ancestors = self._ancestor_nids(view, parent_nid)
        sub_nodes = view.nodes[q:q + m]
        starts, ends = view.starts, view.ends

        # 1. Postings and path lists: drop the dead block, shift the
        # suffix, fix the ancestors' end entries.
        for tid in range(len(view.tags)):
            nids = view.tag_nids[tid]
            lo = bisect_left(nids, q)
            hi = bisect_left(nids, q + m, lo)
            if hi > lo:
                nids = delete(nids, lo, hi)
                view.tag_nids[tid] = nids
                view.tag_starts[tid] = delete(view.tag_starts[tid], lo, hi)
                view.tag_ends[tid] = delete(view.tag_ends[tid], lo, hi)
            if lo < len(nids):
                view.tag_nids[tid] = shift_tail(nids, lo, -m)
                view.tag_starts[tid] = shift_tail(view.tag_starts[tid],
                                                  lo, -shift)
                view.tag_ends[tid] = shift_tail(view.tag_ends[tid],
                                                lo, -shift)
        for a in ancestors:
            tid = view.tag_ids[a]
            pos = bisect_left(view.tag_nids[tid], a)
            column = view.tag_ends[tid]
            view.tag_ends[tid] = set_at(column, pos, column[pos] - shift)
        for pid, nids in enumerate(view.nids_by_path):
            lo = bisect_left(nids, q)
            hi = bisect_left(nids, q + m, lo)
            if hi > lo:
                nids = delete(nids, lo, hi)
                view.nids_by_path[pid] = nids
            if lo < len(nids):
                view.nids_by_path[pid] = shift_tail(nids, lo, -m)

        # 2. Region labels of the survivors.
        for survivor in view.nodes[q + m:]:
            survivor.start -= shift
            survivor.end -= shift
        for a in ancestors:
            view.nodes[a].end -= shift
            ends = set_at(ends, a, ends[a] - shift)

        # 3. Node-level arrays.
        del view.nodes[q:q + m]
        starts = delete(starts, q, q + m)
        view.starts = starts = shift_tail(starts, q, -shift)
        ends = delete(ends, q, q + m)
        view.ends = ends = shift_tail(ends, q, -shift)
        view.levels = delete(view.levels, q, q + m)
        parents = delete(view.parents, q, q + m)
        view.parents = shift_from(parents, q, q + m, -m)
        view.tag_ids = delete(view.tag_ids, q, q + m)
        del view.values[q:q + m]
        del view.deweys[q:q + m]
        view.path_ids = delete(view.path_ids, q, q + m)
        view.size -= m
        view.nid_index = {start: nid
                          for nid, start in enumerate(starts)}

        # 4. Detach; Dewey surgery on the following siblings.
        index = parent.children.index(node)
        parent.children.pop(index)
        node.parent = None
        depth = len(parent.dewey)  # type: ignore[arg-type]
        for sibling in parent.children[index:]:
            for survivor in sibling.iter():
                label = survivor.dewey
                survivor.dewey = (label[:depth] + (label[depth] - 1,)
                                  + label[depth + 1:])
                view.deweys[view.nid_index[survivor.start]] = survivor.dewey

        # 5. Document-level indexes.
        del self.document._by_start[q:q + m]
        dead = {id(dead_node) for dead_node in sub_nodes}
        by_tag = self.document._by_tag
        for tag in {dead_node.tag for dead_node in sub_nodes}:
            kept = [n for n in by_tag[tag] if id(n) not in dead]
            if kept:
                by_tag[tag] = kept
            else:
                del by_tag[tag]

        return self._finish(SUBTREE_DELETE, m, s0, rebuilt=False, view=view)

    def __repr__(self) -> str:
        return (f"DocumentEditor({self.document!r}, {self.patches} patches, "
                f"{self.rebuilds} rebuilds, churn={self._churn})")
