"""Query sessions: encoded state held across an update stream.

A :class:`QuerySession` wraps one :class:`~repro.core.multimodel.
MultiModelQuery` and keeps every expensive per-query artifact alive
between updates:

* each relational input as a :class:`~repro.updates.relations.
  VersionedRelation` (delta log + stats installed into the planner
  cache),
* each bound document behind a :class:`~repro.updates.documents.
  DocumentEditor` (columnar view + stats patched in place and installed
  into the version-keyed caches),
* each twig's answer as a :class:`~repro.updates.twigs.
  MaintainedTwigAnswer` (support-counted, edit-local deltas),
* one :class:`~repro.updates.encodings.IncrementalInstance` over the
  relationalized inputs (relations + twig answers) for the relational
  kernels, and
* the materialized query answer itself, maintained by classic delta
  rules for natural joins: a deleted input tuple kills exactly the
  result rows that restrict to it; an inserted tuple contributes the
  join of its singleton with the other (current) inputs.

``answer()`` therefore re-answers the query after a single-tuple or
single-subtree change in time proportional to the change's footprint,
while ``python -m repro bench --suite updates`` races it against the
rebuild-from-scratch path (fresh encode + full join per change).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.multimodel import MultiModelQuery
from repro.engine.planner import choose_algorithm, \
    refresh_query_statistics, run_query
from repro.errors import UpdateError
from repro.mvcc import Snapshot, SnapshotManager
from repro.parallel.answers import PartitionedAnswer
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value
from repro.updates.delta import DocumentDelta, RelationDelta
from repro.updates.documents import DocumentEditor
from repro.updates.encodings import IncrementalInstance
from repro.updates.relations import VersionedRelation
from repro.updates.twigs import MaintainedTwigAnswer, candidate_roots
from repro.xml.model import XMLNode


class QuerySession:
    """One query held open — and kept answered — across updates.

    With ``workers > 1`` the session becomes partition-aware: the
    initial evaluation runs through the partition-parallel executor and
    the materialized answer is held in a :class:`~repro.parallel.
    answers.PartitionedAnswer`, with each delta routed to the bucket(s)
    owning the affected rows (see ``docs/parallelism.md``). Answers are
    identical to the serial session's at every version.
    """

    def __init__(self, query: MultiModelQuery, *,
                 churn_threshold: float = 0.5,
                 overflow_threshold: float = 0.25,
                 workers: int = 0,
                 feedback: "object | None" = None,
                 feedback_churn_fraction: float = 0.25):
        self.query = query
        self.workers = max(0, workers)
        #: Optional :class:`~repro.engine.adaptive.FeedbackStore`: the
        #: session refreshes its version stamps exactly when it
        #: refreshes its maintained statistics — small deltas inherit
        #: the learned corrections, churn bursts (a relational delta
        #: above ``feedback_churn_fraction`` of the input, or a document
        #: edit that forced a columnar rebuild) invalidate them.
        self.feedback = feedback
        self._feedback_churn_fraction = feedback_churn_fraction
        self.version = 0
        self.relations: dict[str, VersionedRelation] = {
            relation.name: VersionedRelation(relation)
            for relation in query.relations}
        # One editor per distinct document object (two twigs may bind
        # the same tree); answers are per twig binding.
        self.editors: dict[int, DocumentEditor] = {}
        self._editor_of: dict[str, DocumentEditor] = {}
        self.answers: dict[str, MaintainedTwigAnswer] = {}
        for binding in query.twigs:
            editor = self.editors.get(id(binding.document))
            if editor is None:
                editor = DocumentEditor(binding.document,
                                        churn_threshold=churn_threshold)
                self.editors[id(binding.document)] = editor
            self._editor_of[binding.name] = editor
            self.answers[binding.name] = MaintainedTwigAnswer(
                binding.document, binding.twig)
        self.instance = IncrementalInstance(
            query.name, self._inputs(),
            order=query.attributes,
            overflow_threshold=overflow_threshold)
        self._attributes = query.attributes
        self._result_rows = PartitionedAnswer(
            run_query(query, workers=self.workers).rows,
            partitions=self.workers if self.workers > 1 else 1)
        self._answer: Relation | None = None
        #: The MVCC layer over this session's inputs: hooks the
        #: relations' and editors' write paths so superseded versions a
        #: snapshot pins are preserved instead of reclaimed.
        self.mvcc = SnapshotManager(self)

    # -- current inputs ----------------------------------------------------

    def _inputs(self) -> list[Relation]:
        """The relationalized inputs at their current versions."""
        return ([versioned.relation
                 for versioned in self.relations.values()]
                + [answer.relation() for answer in self.answers.values()])

    def _other_inputs(self, except_name: str) -> list[Relation]:
        return [relation for relation in self._inputs()
                if relation.name != except_name]

    # -- relational updates ------------------------------------------------

    def insert(self, relation_name: str,
               row: Sequence[Value]) -> RelationDelta:
        """Insert one tuple into a relational input."""
        return self._apply_relation(relation_name, inserted=[row])

    def delete(self, relation_name: str,
               row: Sequence[Value]) -> RelationDelta:
        """Delete one tuple from a relational input."""
        return self._apply_relation(relation_name, deleted=[row])

    def _apply_relation(self, name: str,
                        inserted: "Sequence[Sequence[Value]]" = (),
                        deleted: "Sequence[Sequence[Value]]" = ()
                        ) -> RelationDelta:
        versioned = self.relations.get(name)
        if versioned is None:
            raise UpdateError(
                f"unknown relation {name!r}; "
                f"choose from {sorted(self.relations)!r}")
        delta = versioned.apply(inserted=inserted, deleted=deleted)
        # Swap the fresh Relation object into the live query.
        for position, relation in enumerate(self.query.relations):
            if relation.name == name:
                self.query.relations[position] = versioned.relation
        self._propagate(name, versioned.relation.schema.attributes,
                        added=delta.inserted, removed=delta.deleted)
        if self.feedback is not None:
            moved = len(delta.inserted) + len(delta.deleted)
            size = max(1, len(versioned.relation))
            churn = moved > self._feedback_churn_fraction * size
            self.feedback.note_input_update(self.query, name, churn=churn)
        return delta

    # -- document updates --------------------------------------------------

    def _binding_editor(self, twig_name: str) -> DocumentEditor:
        editor = self._editor_of.get(twig_name)
        if editor is None:
            raise UpdateError(
                f"unknown twig input {twig_name!r}; "
                f"choose from {sorted(self._editor_of)!r}")
        return editor

    def document_of(self, twig_name: str):
        """The :class:`~repro.xml.model.XMLDocument` bound to the named
        twig input.

        The query service resolves wire-level node addresses (region
        ``start`` labels) against this document before routing an edit
        through :meth:`insert_subtree` / :meth:`delete_subtree` /
        :meth:`change_value`.
        """
        return self._binding_editor(twig_name).document

    def _document_edit(self, editor: DocumentEditor, *,
                       before_anchor: XMLNode,
                       before_subtree: bool,
                       after_anchor_fn,
                       after_subtree: bool,
                       edit_fn) -> DocumentDelta:
        """Run one edit with before/after answer snapshots per twig."""
        document = editor.document
        bindings = [binding for binding in self.query.twigs
                    if binding.document is document]
        before = {}
        for binding in bindings:
            answer = self.answers[binding.name]
            roots = candidate_roots(binding.twig, before_anchor,
                                    include_subtree=before_subtree)
            before[binding.name] = answer.snapshot(roots)
        rebuilds_before = editor.rebuilds
        delta = edit_fn()
        for binding in bindings:
            answer = self.answers[binding.name]
            anchor = after_anchor_fn()
            roots = candidate_roots(binding.twig, anchor,
                                    include_subtree=after_subtree)
            after = answer.snapshot(roots)
            added, removed = answer.apply_snapshots(
                before[binding.name], after)
            self._propagate(binding.name, answer.attributes,
                            added=added, removed=removed)
        if not bindings:
            self._bump()
        if self.feedback is not None:
            # A rebuild means the columnar view (and its statistics)
            # were reconstructed wholesale — churn; an in-place patch
            # inherits the corrections under the new document version.
            churn = editor.rebuilds > rebuilds_before
            for binding in bindings:
                self.feedback.note_input_update(self.query, binding.name,
                                                churn=churn)
        return delta

    def insert_subtree(self, twig_name: str, parent: XMLNode,
                       subtree: XMLNode, *,
                       index: int | None = None) -> DocumentDelta:
        """Insert *subtree* under *parent* in the named twig's document."""
        editor = self._binding_editor(twig_name)
        return self._document_edit(
            editor,
            # Pre-edit, only the ancestor chain exists; post-edit the
            # inserted subtree can host new embedding roots too.
            before_anchor=parent, before_subtree=False,
            after_anchor_fn=lambda: subtree, after_subtree=True,
            edit_fn=lambda: editor.insert_subtree(parent, subtree,
                                                  index=index))

    def delete_subtree(self, twig_name: str,
                       node: XMLNode) -> DocumentDelta:
        """Delete *node*'s subtree from the named twig's document."""
        editor = self._binding_editor(twig_name)
        parent = node.parent
        if parent is None:
            raise UpdateError("cannot delete the document root")
        return self._document_edit(
            editor,
            before_anchor=node, before_subtree=True,
            after_anchor_fn=lambda: parent, after_subtree=False,
            edit_fn=lambda: editor.delete_subtree(node))

    def change_value(self, twig_name: str, node: XMLNode,
                     text: str) -> DocumentDelta:
        """Change *node*'s text content in the named twig's document."""
        editor = self._binding_editor(twig_name)
        return self._document_edit(
            editor,
            # Only embeddings using *node* itself can change, and their
            # root images sit on its ancestor-or-self chain.
            before_anchor=node, before_subtree=False,
            after_anchor_fn=lambda: node, after_subtree=False,
            edit_fn=lambda: editor.change_value(node, text))

    # -- delta propagation -------------------------------------------------

    def _bump(self) -> None:
        self.version += 1
        self._answer = None
        refresh_query_statistics(self.query)

    def _propagate(self, input_name: str,
                   attributes: "tuple[str, ...]",
                   added: "Sequence[tuple[Value, ...]]",
                   removed: "Sequence[tuple[Value, ...]]") -> None:
        """Fold one input's row delta into the maintained artifacts.

        Deletions are routed to the partitions that can own affected
        rows: when the updated input binds the partition attribute (the
        query's first attribute), each dead tuple names its owner bucket
        and only those buckets are scanned; otherwise the delete
        broadcasts. Insertions produce join rows that carry their own
        partition value, so each lands directly in its owner.
        """
        self.instance.apply(input_name, added=added, removed=removed)
        if added or removed:
            positions = tuple(self._attributes.index(a)
                              for a in attributes)
            if removed:
                dead = set(map(tuple, removed))
                partition_attribute = self._attributes[0]
                owner_values = None
                if partition_attribute in attributes:
                    at = attributes.index(partition_attribute)
                    owner_values = {row[at] for row in dead}
                self._result_rows.discard_restricting(
                    positions, dead, owner_values=owner_values)
            if added:
                others = self._other_inputs(input_name)
                schema = Schema(attributes)
                for row in added:
                    self._result_rows.update(
                        self._delta_join(
                            Relation(input_name, schema, [row]), others))
        self._bump()

    def _delta_join(self, seed: Relation,
                    others: "list[Relation]"
                    ) -> "set[tuple[Value, ...]]":
        """Rows the *seed* singleton contributes to the full answer:
        greedy connected fold of the remaining inputs, projected onto
        the query's attribute order."""
        result = seed
        remaining = list(others)
        while remaining:
            if not result:
                return set()
            bound = set(result.schema.attributes)
            pick = next(
                (relation for relation in remaining
                 if bound & set(relation.schema.attributes)),
                remaining[0])
            remaining.remove(pick)
            result = result.natural_join(pick)
        if not result:
            return set()
        positions = result.schema.positions(self._attributes)
        return {tuple(row[p] for p in positions) for row in result.rows}

    # -- answers -----------------------------------------------------------

    def answer(self) -> Relation:
        """The query's current answer (maintained, never recomputed)."""
        if self._answer is None:
            self._answer = Relation(self.query.name,
                                    Schema(self._attributes),
                                    self._result_rows.rows())
        return self._answer

    def pin(self) -> Snapshot:
        """Pin a consistent snapshot of the current version vector.

        O(1): the snapshot borrows the live objects and the maintained
        answer; nothing is copied unless (until) a later update
        supersedes a version the snapshot still pins. Release it (or use
        it as a context manager) to let the MVCC layer reclaim.
        """
        return self.mvcc.pin()

    def planned_algorithm(self) -> str:
        """The planner's kernel choice for the relationalized instance.

        The maintained instance is purely relational (relations ⋈ twig
        answers), so :func:`~repro.engine.planner.choose_algorithm` over
        the relationalized view always yields a relational kernel.
        """
        return choose_algorithm(
            MultiModelQuery(self._inputs(), [], name=self.query.name))

    def run(self, algorithm: str | None = None) -> Relation:
        """Run a relational kernel over the maintained encoded instance
        (the relationalized view: relations ⋈ twig answers), decoded and
        projected like :func:`~repro.engine.planner.run_query`. With no
        explicit *algorithm* the planner's choice
        (:meth:`planned_algorithm`) is used, not a hard-coded kernel."""
        if algorithm is None:
            algorithm = self.planned_algorithm()
        result = self.instance.run(algorithm)
        if result.schema.attributes != self._attributes:
            result = result.project(self._attributes, name=self.query.name)
        return result.with_name(self.query.name)

    def __repr__(self) -> str:
        return (f"QuerySession({self.query.name!r}, v{self.version}, "
                f"{len(self.relations)} relations, "
                f"{len(self.answers)} twigs)")
