"""Delta-maintained encoded instances (dictionaries + tries).

The engine builds an :class:`~repro.engine.encoded.EncodedInstance` once
per query and throws it away; under an update stream that rebuild — the
dictionary sort plus the full re-encode of every input — dominates the
cost of a single-tuple change. An :class:`IncrementalInstance` keeps the
dictionaries (:class:`~repro.updates.dictionary.IncrementalDictionary`,
append-only code assignment) and the per-input tries alive across
updates, splicing single encoded rows in and out.

When any attribute's appended-code overflow crosses the remap threshold
the instance compacts: the dictionary re-sorts and every trie binding
that attribute is re-encoded through the old-code -> new-code remap
(rows are recovered from the tries themselves, so no input rescan).

The relational kernels (``generic_join``, ``leapfrog``) run unchanged
over :meth:`as_encoded` — they need sorted-by-code key lists and
cross-input code equality, both maintained here — so a query over the
maintained instance skips the whole encode phase.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.engine.encoded import EncodedInstance, EncodedTrie, _global_order
from repro.engine.interface import get_algorithm
from repro.errors import UpdateError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.relational.schema import Value
from repro.updates.dictionary import IncrementalDictionary


class IncrementalInstance:
    """Shared dictionaries + one maintained trie per input relation."""

    def __init__(self, name: str,
                 inputs: Sequence[Relation],
                 order: Sequence[str] | None = None, *,
                 overflow_threshold: float = 0.25):
        self.name = name
        self.order = _global_order([r.schema.attributes for r in inputs],
                                   order)
        self.overflow_threshold = overflow_threshold
        self.version = 0
        self.compactions = 0
        self.dictionaries: dict[str, IncrementalDictionary] = {
            attribute: IncrementalDictionary(attribute)
            for attribute in self.order}
        for relation in inputs:
            for position, attribute in enumerate(relation.schema):
                dictionary = self.dictionaries[attribute]
                for row in relation.rows:
                    dictionary.learn(row[position])
        for dictionary in self.dictionaries.values():
            dictionary.compact()  # initial state: sorted, zero overflow
        #: input name -> (trie, positions of the trie order in the
        #: input's schema order).
        self.tries: dict[str, tuple[EncodedTrie, tuple[int, ...]]] = {}
        for relation in inputs:
            trie_order = relation.schema.restrict_order(self.order)
            positions = relation.schema.positions(trie_order)
            dictionaries = [self.dictionaries[a] for a in trie_order]
            encoded = [
                tuple(d.codes[row[p]]
                      for p, d in zip(positions, dictionaries))
                for row in relation.rows]
            self.tries[relation.name] = (
                EncodedTrie(relation.name, trie_order, encoded),
                tuple(positions))

    # -- delta application ---------------------------------------------------

    def _encode(self, name: str, row: Sequence[Value], *,
                learn: bool) -> "tuple[int, ...] | None":
        trie, positions = self.tries[name]
        dictionaries = self.dictionaries
        if learn:
            return tuple(dictionaries[a].learn(row[p])
                         for p, a in zip(positions, trie.order))
        codes = []
        for p, a in zip(positions, trie.order):
            code = dictionaries[a].encode_or_none(row[p])
            if code is None:
                return None  # value unseen: the row cannot be stored
            codes.append(code)
        return tuple(codes)

    def apply(self, name: str,
              added: Iterable[Sequence[Value]] = (),
              removed: Iterable[Sequence[Value]] = ()) -> None:
        """Splice row changes of input *name* into its maintained trie.

        Removals never unlearn dictionary codes (other inputs may share
        the value); compaction is checked once per batch.
        """
        entry = self.tries.get(name)
        if entry is None:
            raise UpdateError(
                f"unknown input {name!r}; "
                f"choose from {sorted(self.tries)!r}")
        trie = entry[0]
        for row in removed:
            codes = self._encode(name, tuple(row), learn=False)
            if codes is not None:
                trie.remove(codes)
        for row in added:
            codes = self._encode(name, tuple(row), learn=True)
            assert codes is not None
            trie.insert(codes)
        self.version += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        remaps: dict[str, list[int]] = {}
        for attribute, dictionary in self.dictionaries.items():
            if dictionary.needs_compaction(self.overflow_threshold):
                remaps[attribute] = dictionary.compact()
        if not remaps:
            return
        self.compactions += 1
        for name, (trie, positions) in self.tries.items():
            touched = [level for level, attribute in enumerate(trie.order)
                       if attribute in remaps]
            if not touched:
                continue
            level_remaps = [remaps.get(attribute)
                            for attribute in trie.order]
            rows = [tuple(code if remap is None else remap[code]
                          for code, remap in zip(row, level_remaps))
                    for row in trie.tuples()]
            self.tries[name] = (EncodedTrie(trie.name, trie.order, rows),
                                positions)

    def vacuum(self) -> None:
        """Full remap: drop dead dictionary values and restore code order.

        Threshold compaction re-sorts but keeps values no live row
        references (deletes never unlearn). Vacuuming re-derives the
        live domains from the tries themselves and rebuilds dictionaries
        and tries from them, after which every dictionary equals — code
        for code — one built from scratch over the current rows.
        """
        decoded: dict[str, list[tuple[Value, ...]]] = {}
        for name, (trie, _positions) in self.tries.items():
            dictionaries = [self.dictionaries[a] for a in trie.order]
            decoded[name] = [
                tuple(d.decode(code) for d, code in zip(dictionaries, row))
                for row in trie.tuples()]
        domains: dict[str, set[Value]] = {a: set() for a in self.order}
        for name, (trie, _positions) in self.tries.items():
            for row in decoded[name]:
                for attribute, value in zip(trie.order, row):
                    domains[attribute].add(value)
        self.dictionaries = {
            attribute: IncrementalDictionary(attribute, domain)
            for attribute, domain in domains.items()}
        for name, (trie, positions) in list(self.tries.items()):
            dictionaries = [self.dictionaries[a] for a in trie.order]
            rows = [tuple(d.codes[value]
                          for d, value in zip(dictionaries, row))
                    for row in decoded[name]]
            self.tries[name] = (EncodedTrie(trie.name, trie.order, rows),
                                positions)
        self.compactions += 1

    # -- execution -----------------------------------------------------------

    def as_encoded(self) -> EncodedInstance:
        """A kernel-ready view over the maintained dictionaries/tries.

        Cheap (no encode pass): only the participation map and the
        per-level decode tables are derived, per call, so they always
        reflect the current dictionary state.
        """
        return EncodedInstance(
            self.name, self.order,
            self.dictionaries,  # duck-compatible with Dictionary
            [trie for trie, _positions in self.tries.values()])

    def run(self, algorithm: str = "generic_join", *,
            stats: JoinStats | None = None) -> Relation:
        """Run a relational kernel over the maintained instance."""
        return get_algorithm(algorithm).run(self.as_encoded(), stats=stats)

    def __repr__(self) -> str:
        return (f"IncrementalInstance({self.name!r}, v{self.version}, "
                f"{len(self.tries)} tries, {self.compactions} compactions)")
