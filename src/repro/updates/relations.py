"""Version-stamped relations with delta logs and incremental statistics.

A :class:`VersionedRelation` owns the current :class:`Relation` object
for one input and accepts single-tuple inserts/deletes (or batches).
Each applied batch produces a fresh immutable ``Relation`` (built by the
delta constructor, so only changed rows are validated), appends a
:class:`~repro.updates.delta.RelationDelta` to the log, and maintains
exact per-column frequency maps from which
:class:`~repro.relational.statistics.RelationStats` are derived without
rescanning rows. The maintained stats are installed into the planner's
cache (:func:`repro.engine.planner.install_relation_stats`), so planning
after an update never pays a statistics rescan.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.engine.planner import install_relation_stats, \
    invalidate_relation_stats
from repro.errors import UpdateError
from repro.relational.relation import Relation
from repro.relational.schema import Value
from repro.relational.statistics import RelationStats, stats_from_frequencies
from repro.updates.delta import RelationDelta


class VersionedRelation:
    """One relational input under a stream of tuple updates."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.version = 0
        #: Optional :class:`~repro.mvcc.chain.VersionChain` (set by a
        #: :class:`~repro.mvcc.manager.SnapshotManager`): when a snapshot
        #: pins the current version, the write path retains the
        #: superseded Relation object there instead of releasing it.
        self.chain = None
        self.log: list[RelationDelta] = []
        #: attribute -> value -> occurrence count, maintained per delta.
        self._frequencies: dict[str, dict[Value, int]] = {
            attribute: {} for attribute in relation.schema}
        positions = [(attribute, relation.schema.index(attribute))
                     for attribute in relation.schema]
        for row in relation.rows:
            for attribute, position in positions:
                frequency = self._frequencies[attribute]
                value = row[position]
                frequency[value] = frequency.get(value, 0) + 1
        self._stats: RelationStats | None = None

    @property
    def name(self) -> str:
        """The wrapped relation's input name (stable across versions)."""
        return self.relation.name

    # -- updates -----------------------------------------------------------

    def apply(self, inserted: Iterable[Sequence[Value]] = (),
              deleted: Iterable[Sequence[Value]] = ()
              ) -> RelationDelta:
        """Apply one batch (deletes first, then inserts; set semantics).

        No-op rows — deleting an absent tuple, inserting a present one —
        are filtered before the delta is logged, so the returned record
        holds exactly the membership changes. Raises
        :class:`~repro.errors.UpdateError` on an arity mismatch.
        """
        arity = self.relation.schema.arity

        def checked(row: Sequence[Value]) -> tuple[Value, ...]:
            tup = tuple(row)
            if len(tup) != arity:
                raise UpdateError(
                    f"relation {self.name!r}: row {tup!r} has arity "
                    f"{len(tup)}, schema has arity {arity}")
            return tup

        rows = self.relation.rows
        dropped: list[tuple[Value, ...]] = []
        seen_dropped: set[tuple[Value, ...]] = set()
        for row in deleted:
            tup = checked(row)
            if tup in rows and tup not in seen_dropped:
                dropped.append(tup)
                seen_dropped.add(tup)
        added: list[tuple[Value, ...]] = []
        seen_added: set[tuple[Value, ...]] = set()
        for row in inserted:
            tup = checked(row)
            present = tup in rows and tup not in seen_dropped
            if not present and tup not in seen_added:
                added.append(tup)
                seen_added.add(tup)

        previous = self.relation
        self.relation = previous.with_row_changes(added=added,
                                                  removed=dropped)
        self.version += 1
        delta = RelationDelta(self.name, self.version,
                              inserted=tuple(added), deleted=tuple(dropped))
        self.log.append(delta)

        positions = [(a, previous.schema.index(a))
                     for a in previous.schema]
        for tup in dropped:
            for attribute, position in positions:
                frequency = self._frequencies[attribute]
                value = tup[position]
                count = frequency[value] - 1
                if count:
                    frequency[value] = count
                else:
                    del frequency[value]
        for tup in added:
            for attribute, position in positions:
                frequency = self._frequencies[attribute]
                value = tup[position]
                frequency[value] = frequency.get(value, 0) + 1

        self._stats = None
        # The superseded Relation object is either retained — a snapshot
        # pins its version, so it must stay readable (with its installed
        # stats) until the pin is released — or its cached stats are
        # released explicitly (not left to weakref death). Either way the
        # new object's cache entry is seeded from maintained frequencies.
        if self.chain is not None and self.chain.pinned(self.version - 1):
            self.chain.retain(self.version - 1, previous)
        else:
            invalidate_relation_stats(previous)
        install_relation_stats(self.relation, self.stats())
        return delta

    def insert(self, row: Sequence[Value]) -> RelationDelta:
        """Insert one tuple (convenience over :meth:`apply`)."""
        return self.apply(inserted=[row])

    def delete(self, row: Sequence[Value]) -> RelationDelta:
        """Delete one tuple (convenience over :meth:`apply`)."""
        return self.apply(deleted=[row])

    # -- maintained statistics --------------------------------------------

    def stats(self) -> RelationStats:
        """Exact statistics derived from the maintained frequency maps —
        equal to :func:`repro.relational.statistics.relation_stats` on
        the current rows, with no rescan."""
        if self._stats is None:
            self._stats = stats_from_frequencies(
                self.name, len(self.relation), self._frequencies)
        return self._stats

    def __repr__(self) -> str:
        return (f"VersionedRelation({self.name!r}, v{self.version}, "
                f"{len(self.relation)} rows, {len(self.log)} deltas)")
