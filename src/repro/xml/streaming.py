"""SAX-streaming columnar builder: XML text -> FileArena, no node tree.

The whole-string path (:func:`repro.xml.parser.parse_document` then
``ColumnarDocument``) holds every corpus in memory twice — the node
tree and the columns. This module replaces it for larger-than-RAM
corpora: :func:`stream_document` drives an **incremental** tokenizer
(the same hand-written grammar as :mod:`repro.xml.parser`, fed chunk
by chunk) and a :class:`StreamingBuilder` that writes the
``ColumnarDocument`` columns and per-tag/per-path postings directly
into a bump-allocating :class:`~repro.buffers.mmapfile.ArenaWriter` as
the events arrive:

* ``starts`` / ``levels`` / ``parents`` / ``tag_ids`` / ``path_ids``
  append on element *open* (node ids are pre-order, exactly the
  in-memory build's order); ``ends`` appends a placeholder that is
  backpatched on element *close* — the one column region encoding
  cannot emit in order;
* per-tag and per-path node-id postings spill to one bucket column
  each and are merged (back-to-back CSR concatenation + offsets) at
  finish, with ``tag_starts`` / ``tag_ends`` gathered from mmap
  snapshots of the label columns — within a tag, nid order *is* start
  order, so the postings come out sorted for free;
* node values are parsed once on close (the ``XMLNode.value``
  semantics: stripped text through
  :func:`~repro.relational.csvio.parse_value`) into typed value
  columns — a kind/ref pair per node plus per-kind data and a UTF-8
  string heap — decoded lazily by
  :class:`~repro.xml.arenaview.ArenaValues`.

Peak heap is O(depth + tags + bounded spill tails) — independent of
document size. The result is byte-identical to
``ColumnarDocument(parse_document(text))`` row for row (the arena
parity suite asserts it across every registered twig algorithm), and
:meth:`ColumnarDocument.from_arena` serves queries straight off the
file through the page cache.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator
from typing import Any

from repro.buffers.mmapfile import ArenaWriter, FileArena
from repro.errors import XMLParseError
from repro.relational.csvio import parse_value
from repro.xml.arenaview import (
    VALUE_BIGINT,
    VALUE_FLOAT,
    VALUE_INT,
    VALUE_NONE,
    VALUE_STR,
)
from repro.xml.parser import _NAME_CHARS, _NAME_START, decode_entities

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class _StreamCursor:
    """Incremental cursor over chunked XML text.

    Holds only the unconsumed window: consumed text is discarded (with
    line/column accounting for error messages) and more chunks are
    pulled on demand, so the whole document is never resident. The
    token grammar is byte-for-byte the one in :mod:`repro.xml.parser`.
    """

    __slots__ = ("_chunks", "buf", "pos", "_eof", "_offset", "_lines",
                 "_col")

    def __init__(self, chunks: Iterable[str]):
        self._chunks = iter(chunks)
        self.buf = ""
        self.pos = 0
        self._eof = False
        self._offset = 0  # absolute offset of buf[0]
        self._lines = 0   # newlines before buf[0]
        self._col = 0     # column of buf[0] within its line

    # -- buffer management -------------------------------------------------

    def _pull(self) -> bool:
        """Append the next chunk; False once the input is exhausted."""
        if self._eof:
            return False
        for chunk in self._chunks:
            if chunk:
                self.buf += chunk
                return True
        self._eof = True
        return False

    def compact(self) -> None:
        """Discard the consumed prefix (line/column bookkeeping kept)."""
        if not self.pos:
            return
        consumed = self.buf[:self.pos]
        self._offset += self.pos
        newlines = consumed.count("\n")
        if newlines:
            self._lines += newlines
            self._col = len(consumed) - consumed.rfind("\n") - 1
        else:
            self._col += self.pos
        self.buf = self.buf[self.pos:]
        self.pos = 0

    def error(self, message: str) -> XMLParseError:
        """An :class:`XMLParseError` at the current absolute position."""
        consumed = self.buf[:self.pos]
        newlines = consumed.count("\n")
        if newlines:
            column = len(consumed) - consumed.rfind("\n") - 1 + 1
        else:
            column = self._col + self.pos + 1
        return XMLParseError(message,
                             position=self._offset + self.pos,
                             line=self._lines + newlines + 1,
                             column=column)

    # -- the parser.py cursor surface, refill-aware ------------------------

    def at_end(self) -> bool:
        """True once the buffer is consumed and no chunks remain."""
        while self.pos >= len(self.buf):
            if not self._pull():
                return True
        return False

    def peek(self, n: int = 1) -> str:
        while len(self.buf) - self.pos < n and self._pull():
            pass
        return self.buf[self.pos:self.pos + n]

    def startswith(self, prefix: str) -> bool:
        while len(self.buf) - self.pos < len(prefix) and self._pull():
            pass
        return self.buf.startswith(prefix, self.pos)

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_whitespace(self) -> None:
        while True:
            buf = self.buf
            pos = self.pos
            while pos < len(buf) and buf[pos] in " \t\r\n":
                pos += 1
            self.pos = pos
            if pos < len(buf) or not self._pull():
                return

    def take_until(self, terminator: str, what: str) -> str:
        while True:
            index = self.buf.find(terminator, self.pos)
            if index >= 0:
                chunk = self.buf[self.pos:index]
                self.pos = index + len(terminator)
                return chunk
            if not self._pull():
                raise self.error(
                    f"unterminated {what} (expected {terminator!r})")

    def take_name(self) -> str:
        if self.at_end() or self.buf[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        start = self.pos
        while True:
            buf = self.buf
            pos = self.pos + 1 if self.pos == start else self.pos
            while pos < len(buf) and buf[pos] in _NAME_CHARS:
                pos += 1
            self.pos = pos
            if pos < len(buf) or not self._pull():
                return self.buf[start:pos]

    def take_text(self) -> str:
        """Raw text up to the next ``<`` (or EOF), possibly spanning
        chunk boundaries."""
        pieces: list[str] = []
        while True:
            index = self.buf.find("<", self.pos)
            if index >= 0:
                pieces.append(self.buf[self.pos:index])
                self.pos = index
                return "".join(pieces)
            pieces.append(self.buf[self.pos:])
            self.pos = len(self.buf)
            self.compact()
            if not self._pull():
                return "".join(pieces)


def _parse_attributes(cursor: _StreamCursor) -> dict[str, str]:
    """Attribute list of an open tag (same grammar as the parser)."""
    attributes: dict[str, str] = {}
    while True:
        cursor.skip_whitespace()
        nxt = cursor.peek()
        if nxt in (">", "/", "?", ""):
            return attributes
        name = cursor.take_name()
        cursor.skip_whitespace()
        if cursor.peek() != "=":
            raise cursor.error(f"expected '=' after attribute {name!r}")
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error(f"attribute {name!r} value must be quoted")
        cursor.advance()
        raw = cursor.take_until(quote, f"attribute {name!r} value")
        if name in attributes:
            raise cursor.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(raw)
        cursor.compact()


def iter_events(chunks: Iterable[str]
                ) -> "Iterator[tuple[str, Any, Any]]":
    """SAX-style events over chunked XML text.

    Yields ``("start", tag, attributes)``, ``("end", tag, None)`` and
    ``("text", decoded_text, None)`` in document order, enforcing the
    exact well-formedness rules of :func:`repro.xml.parser.
    parse_element_tree` (matching close tags, single root, no text
    outside it; comments, PIs, DOCTYPE skipped; self-closing elements
    emit start + end back to back; CDATA and entity semantics
    identical). Only the unconsumed tail of the input is ever held.
    """
    cursor = _StreamCursor(chunks)
    open_tags: list[str] = []
    saw_root = False

    while not cursor.at_end():
        cursor.compact()
        if cursor.peek() != "<":
            raw = cursor.take_text()
            if raw.strip():
                if not open_tags:
                    raise cursor.error(
                        "text content outside the root element")
                yield ("text", decode_entities(raw), None)
            continue

        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.take_until("-->", "comment")
            continue
        if cursor.startswith("<![CDATA["):
            cursor.advance(9)
            raw = cursor.take_until("]]>", "CDATA section")
            if not open_tags:
                raise cursor.error("CDATA outside the root element")
            yield ("text", raw, None)
            continue
        if cursor.startswith("<?"):
            cursor.advance(2)
            cursor.take_until("?>", "processing instruction")
            continue
        if cursor.startswith("<!DOCTYPE") or cursor.startswith("<!doctype"):
            cursor.advance(2)
            cursor.take_until(">", "DOCTYPE declaration")
            continue
        if cursor.startswith("</"):
            cursor.advance(2)
            name = cursor.take_name()
            cursor.skip_whitespace()
            if cursor.peek() != ">":
                raise cursor.error(f"malformed closing tag </{name}>")
            cursor.advance()
            if not open_tags:
                raise cursor.error(
                    f"closing tag </{name}> with no open element")
            expected = open_tags.pop()
            if expected != name:
                raise cursor.error(
                    f"closing tag </{name}> does not match <{expected}>")
            yield ("end", name, None)
            continue

        # An opening (or self-closing) tag.
        cursor.advance()
        name = cursor.take_name()
        attributes = _parse_attributes(cursor)
        cursor.skip_whitespace()
        if cursor.startswith("/>"):
            cursor.advance(2)
            closed = True
        elif cursor.peek() == ">":
            cursor.advance()
            closed = False
        else:
            raise cursor.error(f"malformed tag <{name}>")

        if not open_tags:
            if saw_root:
                raise cursor.error("multiple root elements")
            saw_root = True
        yield ("start", name, attributes)
        if closed:
            yield ("end", name, None)
        else:
            open_tags.append(name)

    if open_tags:
        raise cursor.error(f"unclosed element <{open_tags[-1]}>")
    if not saw_root:
        raise cursor.error("document has no root element")


class StreamingBuilder:
    """Event consumer writing columnar state into an ArenaWriter.

    Carries only the open-element stack, the (small) tag/path intern
    tables and the writers' bounded spill tails — peak heap is
    independent of document size. Region labels replay
    :func:`~repro.xml.encoding.annotate_regions` exactly (one global
    counter: ``start`` on entry, ``end`` on exit), so node ids, labels
    and postings are byte-identical to the in-memory build.
    """

    def __init__(self, writer: ArenaWriter):
        self.writer = writer
        self._starts = writer.column("starts", "I")
        self._ends = writer.column("ends", "I")
        self._levels = writer.column("levels", "I")
        self._parents = writer.column("parents", "i")
        self._tag_ids = writer.column("tag_ids", "I")
        self._path_ids = writer.column("path_ids", "I")
        self._val_kind = writer.column("val_kind", "B")
        self._val_ref = writer.column("val_ref", "I")
        self._val_int = writer.column("val_int", "q")
        self._val_float = writer.column("val_float", "d")
        self._val_str_off = writer.column("val_str_off", "Q")
        self._val_str_len = writer.column("val_str_len", "I")
        self._heap = writer.column("val_str_heap", "B")
        self._heap_size = 0
        self._counter = 0  # the region-label counter
        self._size = 0
        self._tags: list[str] = []
        self._tag_index: dict[str, int] = {}
        self._paths: "list[tuple[str, ...]]" = []
        self._path_table: "dict[tuple[int, int], int]" = {}
        self._tag_buckets: "list" = []   # per-tid spilled nid columns
        self._path_buckets: "list" = []  # per-pid spilled nid columns
        # Open-element frames: (nid, pid, text parts).
        self._stack: "list[tuple[int, int, list[str]]]" = []

    # -- event handlers ----------------------------------------------------

    def start(self, tag: str) -> int:
        """Open an element; returns its node id (pre-order)."""
        nid = self._size
        self._size += 1
        parent_nid, parent_pid = (self._stack[-1][:2] if self._stack
                                  else (-1, -1))
        tid = self._tag_index.get(tag)
        if tid is None:
            tid = self._tag_index[tag] = len(self._tags)
            self._tags.append(tag)
            self._tag_buckets.append(
                self.writer.column(f"tag_bucket_{tid}", "I",
                                   chunk_items=4096, register=False))
        key = (parent_pid, tid)
        pid = self._path_table.get(key)
        if pid is None:
            pid = self._path_table[key] = len(self._paths)
            prefix = self._paths[parent_pid] if parent_pid >= 0 else ()
            self._paths.append(prefix + (tag,))
            self._path_buckets.append(
                self.writer.column(f"path_bucket_{pid}", "I",
                                   chunk_items=4096, register=False))
        self._starts.append(self._counter)
        self._counter += 1
        self._ends.append(0)  # backpatched on close
        self._levels.append(len(self._stack))
        self._parents.append(parent_nid)
        self._tag_ids.append(tid)
        self._path_ids.append(pid)
        self._val_kind.append(VALUE_NONE)  # backpatched on close
        self._val_ref.append(0)
        self._tag_buckets[tid].append(nid)
        self._path_buckets[pid].append(nid)
        self._stack.append((nid, pid, []))
        return nid

    def text(self, text: str) -> None:
        """Text content of the innermost open element."""
        self._stack[-1][2].append(text)

    def end(self) -> int:
        """Close the innermost element; returns its node id."""
        nid, _pid, parts = self._stack.pop()
        self._ends.set_at(nid, self._counter)
        self._counter += 1
        stripped = "".join(parts).strip()
        if stripped:
            self._set_value(nid, parse_value(stripped))
        return nid

    def _set_value(self, nid: int, value) -> None:
        if isinstance(value, bool):  # parse_value never yields bool
            value = int(value)
        if isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                self._val_kind.set_at(nid, VALUE_INT)
                self._val_ref.set_at(nid, self._val_int.append(value))
            else:
                self._store_str(nid, str(value), VALUE_BIGINT)
        elif isinstance(value, float):
            self._val_kind.set_at(nid, VALUE_FLOAT)
            self._val_ref.set_at(nid, self._val_float.append(value))
        else:
            self._store_str(nid, value, VALUE_STR)

    def _store_str(self, nid: int, value: str, kind: int) -> None:
        data = value.encode("utf-8")
        self._val_kind.set_at(nid, kind)
        self._val_ref.set_at(nid, self._val_str_off.append(self._heap_size))
        self._val_str_len.append(len(data))
        self._heap.extend(data)
        self._heap_size += len(data)

    # -- assembly ----------------------------------------------------------

    def finish(self) -> FileArena:
        """Merge the spilled postings and assemble the owning arena."""
        writer = self.writer
        tag_starts = writer.column("tag_starts", "I")
        tag_ends = writer.column("tag_ends", "I")
        tag_offsets = array("Q", [0])
        with self._starts.snapshot() as starts_v, \
                self._ends.snapshot() as ends_v:
            total = 0
            for bucket in self._tag_buckets:
                with bucket.snapshot() as nids_v:
                    for nid in nids_v:
                        tag_starts.append(starts_v[nid])
                        tag_ends.append(ends_v[nid])
                total += len(bucket)
                tag_offsets.append(total)
            path_offsets = array("Q", [0])
            total = 0
            for bucket in self._path_buckets:
                total += len(bucket)
                path_offsets.append(total)
        writer.concat("tag_nids", "I", self._tag_buckets)
        writer.add_buffer("tag_offsets", tag_offsets)
        writer.concat("path_nids", "I", self._path_buckets)
        writer.add_buffer("path_offsets", path_offsets)
        pids_by_last_tag: "dict[int, list[int]]" = {}
        for (_parent_pid, tid), pid in self._path_table.items():
            pids_by_last_tag.setdefault(tid, []).append(pid)
        meta = {
            "kind": "document",
            "size": self._size,
            "tags": self._tags,
            "tag_index": self._tag_index,
            "paths": self._paths,
            "pids_by_last_tag": pids_by_last_tag,
        }
        return writer.finish(meta)


def stream_document(chunks: Iterable[str], *,
                    path: str | None = None) -> FileArena:
    """Build a queryable :class:`FileArena` from chunked XML text.

    The streaming end-to-end: tokenizer events drive the builder
    straight into an :class:`~repro.buffers.mmapfile.ArenaWriter`; no
    node-object tree and no whole-document string ever exist. Returns
    the **owning** attached arena (close + unlink when done); open a
    view with :meth:`ColumnarDocument.from_arena
    <repro.xml.columnar.ColumnarDocument.from_arena>` or attach from
    another process via :func:`repro.parallel.mmapfile.attach_document`.
    """
    writer = ArenaWriter(path=path)
    try:
        builder = StreamingBuilder(writer)
        for kind, payload, extra in iter_events(chunks):
            if kind == "start":
                builder.start(payload)
            elif kind == "end":
                builder.end()
            else:
                builder.text(payload)
        return builder.finish()
    except BaseException:
        writer.abort()
        raise
