"""A hand-written XML parser (no external dependencies).

Supports the subset needed by the paper's workloads and a bit more:
elements, attributes (single or double quoted), text with the five
predefined entities plus numeric character references, comments, CDATA
sections, processing instructions / the XML declaration, and DOCTYPE
declarations (skipped). Mixed content is flattened: all text directly
inside an element is concatenated into ``node.text``.

The parser is iterative (explicit element stack) so arbitrarily deep
documents do not overflow the Python stack, and it reports line/column in
every error.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xml.model import XMLDocument, XMLNode

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Cursor:
    """Position tracking over the input text."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XMLParseError:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return XMLParseError(message, position=self.pos, line=line,
                             column=column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos: self.pos + n]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_whitespace(self) -> None:
        text = self.text
        pos = self.pos
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        self.pos = pos

    def take_until(self, terminator: str, what: str) -> str:
        index = self.text.find(terminator, self.pos)
        if index < 0:
            raise self.error(f"unterminated {what} (expected {terminator!r})")
        chunk = self.text[self.pos: index]
        self.pos = index + len(terminator)
        return chunk

    def take_name(self) -> str:
        start = self.pos
        text = self.text
        if start >= len(text) or text[start] not in _NAME_START:
            raise self.error("expected a name")
        pos = start + 1
        while pos < len(text) and text[pos] in _NAME_CHARS:
            pos += 1
        self.pos = pos
        return text[start:pos]


def decode_entities(text: str, cursor: _Cursor | None = None) -> str:
    """Replace ``&amp;``-style and numeric references with their characters."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            raise XMLParseError(f"unterminated entity reference in {text!r}")
        name = text[i + 1: end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _parse_attributes(cursor: _Cursor) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        cursor.skip_whitespace()
        nxt = cursor.peek()
        if nxt in (">", "/", "?", ""):
            return attributes
        name = cursor.take_name()
        cursor.skip_whitespace()
        if cursor.peek() != "=":
            raise cursor.error(f"expected '=' after attribute {name!r}")
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error(f"attribute {name!r} value must be quoted")
        cursor.advance()
        raw = cursor.take_until(quote, f"attribute {name!r} value")
        if name in attributes:
            raise cursor.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(raw, cursor)


def parse_document(text: str) -> XMLDocument:
    """Parse *text* into an indexed :class:`XMLDocument`."""
    return XMLDocument(parse_element_tree(text))


def parse_element_tree(text: str) -> XMLNode:
    """Parse *text* and return the root :class:`XMLNode` (no indexing)."""
    cursor = _Cursor(text)
    root: XMLNode | None = None
    stack: list[XMLNode] = []
    text_parts: list[list[str]] = []

    while not cursor.at_end():
        if cursor.peek() != "<":
            chunk_end = cursor.text.find("<", cursor.pos)
            if chunk_end < 0:
                chunk_end = len(cursor.text)
            raw = cursor.text[cursor.pos: chunk_end]
            cursor.pos = chunk_end
            if raw.strip():
                if not stack:
                    raise cursor.error("text content outside the root element")
                text_parts[-1].append(decode_entities(raw, cursor))
            continue

        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.take_until("-->", "comment")
            continue
        if cursor.startswith("<![CDATA["):
            cursor.advance(9)
            raw = cursor.take_until("]]>", "CDATA section")
            if not stack:
                raise cursor.error("CDATA outside the root element")
            text_parts[-1].append(raw)
            continue
        if cursor.startswith("<?"):
            cursor.advance(2)
            cursor.take_until("?>", "processing instruction")
            continue
        if cursor.startswith("<!DOCTYPE") or cursor.startswith("<!doctype"):
            cursor.advance(2)
            cursor.take_until(">", "DOCTYPE declaration")
            continue
        if cursor.startswith("</"):
            cursor.advance(2)
            name = cursor.take_name()
            cursor.skip_whitespace()
            if cursor.peek() != ">":
                raise cursor.error(f"malformed closing tag </{name}>")
            cursor.advance()
            if not stack:
                raise cursor.error(f"closing tag </{name}> with no open element")
            node = stack.pop()
            parts = text_parts.pop()
            if node.tag != name:
                raise cursor.error(
                    f"closing tag </{name}> does not match <{node.tag}>")
            node.text = "".join(parts)
            continue

        # An opening (or self-closing) tag.
        cursor.advance()
        name = cursor.take_name()
        attributes = _parse_attributes(cursor)
        cursor.skip_whitespace()
        if cursor.startswith("/>"):
            cursor.advance(2)
            closed = True
        elif cursor.peek() == ">":
            cursor.advance()
            closed = False
        else:
            raise cursor.error(f"malformed tag <{name}>")

        node = XMLNode(name, attributes)
        if stack:
            stack[-1].append(node)
        elif root is None:
            root = node
        else:
            raise cursor.error("multiple root elements")
        if not closed:
            stack.append(node)
            text_parts.append([])

    if stack:
        raise cursor.error(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise cursor.error("document has no root element")
    return root
