"""PathStack (Bruno, Koudas, Srivastava 2002) for linear path queries.

Matches a *path* pattern p1 → p2 → ... → pk (each edge ``/`` or ``//``)
against a document in one document-order sweep, using one stack per query
node. Elements are pushed linked to the current top of the parent stack,
and complete root-to-leaf solutions are expanded whenever a leaf element
is pushed.

The twig algorithms build on the same stack discipline; this standalone
version exists because the paper's decomposition reduces twigs to
root-leaf *paths*, making PathStack the natural unit to test.
"""

from __future__ import annotations

from repro.errors import TwigError
from repro.instrumentation import JoinStats, ensure_stats
from repro.xml.encoding import is_ancestor, is_parent
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.streams import TagStream
from repro.xml.twig import Axis, TwigNode, TwigQuery


def path_nodes(twig: TwigQuery) -> list[TwigNode]:
    """The query nodes of a path twig, root first; rejects branching."""
    nodes = []
    node: TwigNode | None = twig.root
    while node is not None:
        nodes.append(node)
        if len(node.children) > 1:
            raise TwigError(
                f"PathStack requires a linear path; {node.name!r} branches")
        node = node.children[0] if node.children else None
    return nodes


def expand_chain(path: list[TwigNode],
                 stacks: dict[str, list[tuple[XMLNode, int]]],
                 leaf_node: XMLNode, leaf_pointer: int, *,
                 stats: JoinStats | None = None
                 ) -> list[tuple[XMLNode, ...]]:
    """All root-to-leaf solutions ending at *leaf_node*.

    ``stacks[q.name]`` holds (element, pointer-into-parent-stack) entries.
    Entries below a pointer are ancestors of the pushed element; axis
    constraints (in particular parent-child levels) are re-checked here.
    Returned tuples are aligned with *path* (root first).
    """
    stats = ensure_stats(stats)
    solutions: list[tuple[XMLNode, ...]] = []
    chain: list[XMLNode] = [leaf_node]

    def ascend(index: int, lower: XMLNode, pointer: int) -> None:
        if index < 0:
            solutions.append(tuple(reversed(chain)))
            stats.count_emitted()
            return
        query_node = path[index]
        lower_axis = path[index + 1].axis
        stack = stacks[query_node.name]
        for entry_index in range(min(pointer + 1, len(stack))):
            node, parent_pointer = stack[entry_index]
            stats.count_comparisons()
            if lower_axis is Axis.CHILD and not is_parent(node, lower):
                continue
            if lower_axis is Axis.DESCENDANT and not is_ancestor(node, lower):
                continue
            chain.append(node)
            ascend(index - 1, node, parent_pointer)
            chain.pop()

    ascend(len(path) - 2, leaf_node, leaf_pointer)
    return solutions


def path_stack(document: XMLDocument, twig: TwigQuery, *,
               stats: JoinStats | None = None
               ) -> list[tuple[XMLNode, ...]]:
    """All matches of a path twig, as node tuples aligned root-to-leaf."""
    stats = ensure_stats(stats)
    path = path_nodes(twig)
    streams = {q.name: TagStream.for_query_node(document, q) for q in path}
    stacks: dict[str, list[tuple[XMLNode, int]]] = {q.name: [] for q in path}
    solutions: list[tuple[XMLNode, ...]] = []
    pushes = 0

    def min_stream() -> TwigNode | None:
        best: TwigNode | None = None
        best_start = None
        for query_node in path:
            stream = streams[query_node.name]
            if stream.eof():
                continue
            start = stream.head().start
            if best_start is None or start < best_start:
                best, best_start = query_node, start
        return best

    while True:
        query_node = min_stream()
        if query_node is None:
            break
        element = streams[query_node.name].head()
        streams[query_node.name].advance()
        # Pop every stack entry whose region ended before this element.
        for other in path:
            stack = stacks[other.name]
            while stack and stack[-1][0].end < element.start:
                stack.pop()
        parent = query_node.parent
        if parent is not None and not stacks[parent.name]:
            continue  # cannot participate in any solution
        pointer = len(stacks[parent.name]) - 1 if parent is not None else -1
        if query_node is path[-1]:
            # Leaves never stay on a stack: expand immediately.
            stacks[query_node.name].append((element, pointer))
            solutions.extend(
                expand_chain(path, stacks, element, pointer, stats=stats))
            stacks[query_node.name].pop()
        else:
            stacks[query_node.name].append((element, pointer))
            pushes += 1
    stats.record_stage("pathstack pushes", pushes)
    return solutions


def path_stack_relation(document: XMLDocument, twig: TwigQuery, *,
                        stats: JoinStats | None = None):
    """Value-tuple relation form of :func:`path_stack` (set semantics)."""
    from repro.relational.relation import Relation

    path = path_nodes(twig)
    attrs = tuple(q.name for q in path)
    rows = [tuple(node.value for node in solution)
            for solution in path_stack(document, twig, stats=stats)]
    return Relation(twig.name, attrs, rows)
