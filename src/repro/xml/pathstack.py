"""PathStack (Bruno, Koudas, Srivastava 2002) for linear path queries.

Matches a *path* pattern p1 → p2 → ... → pk (each edge ``/`` or ``//``)
against a document in one document-order sweep, using one stack per query
node. Elements are pushed linked to the current top of the parent stack,
and complete root-to-leaf solutions are expanded whenever a leaf element
is pushed.

Since the columnar refactor the sweep runs on
:class:`~repro.xml.columnar.ColumnarDocument` postings: stacks hold dense
int node ids, the axis checks in :func:`expand_chain` are plain int-array
comparisons, and streams share the per-tag posting arrays instead of
copying node lists. The twig algorithms build on the same stack
discipline; this standalone version exists because the paper's
decomposition reduces twigs to root-leaf *paths*, making PathStack the
natural unit to test.
"""

from __future__ import annotations

from repro.errors import TwigError
from repro.instrumentation import JoinStats, ensure_stats
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery


def path_nodes(twig: TwigQuery) -> list[TwigNode]:
    """The query nodes of a path twig, root first; rejects branching."""
    nodes = []
    node: TwigNode | None = twig.root
    while node is not None:
        nodes.append(node)
        if len(node.children) > 1:
            raise TwigError(
                f"PathStack requires a linear path; {node.name!r} branches")
        node = node.children[0] if node.children else None
    return nodes


def expand_chain(path: list[TwigNode],
                 stacks: dict[str, list[tuple[int, int]]],
                 view: ColumnarDocument,
                 leaf_nid: int, leaf_pointer: int, *,
                 stats: JoinStats | None = None
                 ) -> list[tuple[int, ...]]:
    """All root-to-leaf solutions ending at node id *leaf_nid*.

    ``stacks[q.name]`` holds (node id, pointer-into-parent-stack)
    entries. Entries below a pointer are ancestors of the pushed element;
    axis constraints (in particular parent-child levels) are re-checked
    here against the columnar label arrays. Returned tuples are node ids
    aligned with *path* (root first).
    """
    stats = ensure_stats(stats)
    starts, ends, levels = view.starts, view.ends, view.levels
    solutions: list[tuple[int, ...]] = []
    chain: list[int] = [leaf_nid]

    def ascend(index: int, lower_nid: int, pointer: int) -> None:
        if index < 0:
            solutions.append(tuple(reversed(chain)))
            stats.count_emitted()
            return
        query_node = path[index]
        child_axis = path[index + 1].axis is Axis.CHILD
        lower_start, lower_end = starts[lower_nid], ends[lower_nid]
        lower_level = levels[lower_nid]
        stack = stacks[query_node.name]
        for entry_index in range(min(pointer + 1, len(stack))):
            nid, parent_pointer = stack[entry_index]
            stats.count_comparisons()
            if not (starts[nid] < lower_start and lower_end < ends[nid]):
                continue  # not an ancestor
            if child_axis and lower_level != levels[nid] + 1:
                continue
            chain.append(nid)
            ascend(index - 1, nid, parent_pointer)
            chain.pop()

    ascend(len(path) - 2, leaf_nid, leaf_pointer)
    return solutions


def _path_stack_ids(document: XMLDocument, twig: TwigQuery,
                    stats: JoinStats
                    ) -> tuple[ColumnarDocument, list[tuple[int, ...]]]:
    """The sweep proper, on node ids (root-first tuples)."""
    path = path_nodes(twig)
    view = columnar(document)
    ends = view.ends
    streams = {q.name: view.stream(q) for q in path}
    stacks: dict[str, list[tuple[int, int]]] = {q.name: [] for q in path}
    solutions: list[tuple[int, ...]] = []
    pushes = 0

    def min_stream() -> TwigNode | None:
        best: TwigNode | None = None
        best_start = None
        for query_node in path:
            stream = streams[query_node.name]
            if stream.eof():
                continue
            start = stream.head_start()
            if best_start is None or start < best_start:
                best, best_start = query_node, start
        return best

    while True:
        query_node = min_stream()
        if query_node is None:
            break
        stream = streams[query_node.name]
        nid = stream.head_nid()
        start = stream.head_start()
        stream.advance()
        # Pop every stack entry whose region ended before this element.
        for other in path:
            stack = stacks[other.name]
            while stack and ends[stack[-1][0]] < start:
                stack.pop()
        parent = query_node.parent
        if parent is not None and not stacks[parent.name]:
            continue  # cannot participate in any solution
        pointer = len(stacks[parent.name]) - 1 if parent is not None else -1
        if query_node is path[-1]:
            # Leaves never stay on a stack: expand immediately.
            stacks[query_node.name].append((nid, pointer))
            solutions.extend(
                expand_chain(path, stacks, view, nid, pointer, stats=stats))
            stacks[query_node.name].pop()
        else:
            stacks[query_node.name].append((nid, pointer))
            pushes += 1
    stats.record_stage("pathstack pushes", pushes)
    return view, solutions


def path_stack(document: XMLDocument, twig: TwigQuery, *,
               stats: JoinStats | None = None
               ) -> list[tuple[XMLNode, ...]]:
    """All matches of a path twig, as node tuples aligned root-to-leaf."""
    stats = ensure_stats(stats)
    view, solutions = _path_stack_ids(document, twig, stats)
    nodes = view.nodes
    return [tuple(nodes[nid] for nid in solution) for solution in solutions]


def path_stack_relation(document: XMLDocument, twig: TwigQuery, *,
                        stats: JoinStats | None = None):
    """Value-tuple relation form of :func:`path_stack` (set semantics)."""
    from repro.relational.relation import Relation

    stats = ensure_stats(stats)
    path = path_nodes(twig)
    attrs = tuple(q.name for q in path)
    view, solutions = _path_stack_ids(document, twig, stats)
    values = view.values
    rows = [tuple(values[nid] for nid in solution)
            for solution in solutions]
    return Relation(twig.name, attrs, rows)
