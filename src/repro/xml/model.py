"""The XML document model.

A document is a tree of :class:`XMLNode` elements. Nodes carry a tag, an
attribute dict, text content, and children. Label fields (``start``,
``end``, ``level``, ``dewey``) are filled in by the encoders in
:mod:`repro.xml.encoding` and :mod:`repro.xml.dewey`; they default to
``None`` until a document is frozen via :meth:`XMLDocument.reindex`.

Node *values*: the paper joins XML elements with relational attributes on
the element's typed text content (Figure 1: ``ISBN: 978-3-16-1``,
``price: 30``). :attr:`XMLNode.value` exposes exactly that — the stripped
text revived as int/float when it looks numeric.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.relational.csvio import parse_value
from repro.relational.schema import Value


class XMLNode:
    """One element of an XML tree."""

    __slots__ = ("tag", "attributes", "text", "children", "parent",
                 "start", "end", "level", "dewey")

    def __init__(self, tag: str, attributes: Mapping[str, str] | None = None,
                 text: str = "", children: Sequence["XMLNode"] = ()):
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.text = text
        self.children: list[XMLNode] = []
        self.parent: XMLNode | None = None
        self.start: int | None = None
        self.end: int | None = None
        self.level: int | None = None
        self.dewey: tuple[int, ...] | None = None
        for child in children:
            self.append(child)

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach *child* as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def add(self, tag: str, text: str = "",
            attributes: Mapping[str, str] | None = None) -> "XMLNode":
        """Create, attach and return a new child element."""
        return self.append(XMLNode(tag, attributes, text))

    def copy(self) -> "XMLNode":
        """A detached structural deep copy (labels are not copied).

        Iterative, like the traversals, so pathological depth is safe.
        The copy's labels are ``None`` until a document indexes it —
        exactly the state the update layer expects of an insert.
        """
        out = XMLNode(self.tag, self.attributes, self.text)
        stack = [(self, out)]
        while stack:
            source, target = stack.pop()
            for child in source.children:
                clone = XMLNode(child.tag, child.attributes, child.text)
                target.append(clone)
                stack.append((child, clone))
        return out

    @property
    def value(self) -> Value | None:
        """Typed text content (int/float revived), or None when empty."""
        stripped = self.text.strip()
        if not stripped:
            return None
        return parse_value(stripped)

    # -- traversal -------------------------------------------------------

    def iter(self) -> Iterator["XMLNode"]:
        """Pre-order traversal of this subtree, self first (iterative)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """All proper descendants, in document order."""
        nodes = self.iter()
        next(nodes)  # skip self
        yield from nodes

    def ancestors(self) -> Iterator["XMLNode"]:
        """Ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_all(self, tag: str) -> list["XMLNode"]:
        """All nodes with *tag* in this subtree (including self)."""
        return [node for node in self.iter() if node.tag == tag]

    def path_from_root(self) -> list["XMLNode"]:
        """Nodes from the tree root down to (and including) this node."""
        chain = [self, *self.ancestors()]
        chain.reverse()
        return chain

    # -- comparisons -----------------------------------------------------

    def structure_equal(self, other: "XMLNode") -> bool:
        """Deep equality on tag/attributes/text/children (not labels)."""
        if (self.tag != other.tag or self.attributes != other.attributes
                or self.text.strip() != other.text.strip()
                or len(self.children) != len(other.children)):
            return False
        return all(a.structure_equal(b)
                   for a, b in zip(self.children, other.children))

    def __repr__(self) -> str:
        label = f" start={self.start}" if self.start is not None else ""
        return (f"XMLNode(<{self.tag}>, {len(self.children)} children"
                f"{label})")


class XMLDocument:
    """A rooted XML tree plus per-tag indexes and structural labels.

    Construction freezes the tree: region encodings, Dewey labels and tag
    streams are computed once. Mutate the tree only through
    :meth:`reindex`, which recomputes everything — or through the delta
    layer (:mod:`repro.updates.documents`), which patches the labels and
    indexes in place and calls :meth:`bump_version` so version-keyed
    caches pick up the patched artifacts it installs.
    """

    def __init__(self, root: XMLNode):
        self.root = root
        self.version = 0
        self._by_tag: dict[str, list[XMLNode]] = {}
        self._by_start: list[XMLNode] = []
        self.reindex()

    def reindex(self) -> None:
        """(Re)compute labels and indexes after tree mutation.

        Bumps :attr:`version`, which invalidates the weakref-cached
        columnar views and statistics (:mod:`repro.xml.columnar`).
        """
        self.version += 1
        # Imported here to avoid a cycle: encoding works on raw nodes.
        from repro.xml.dewey import annotate_dewey
        from repro.xml.encoding import annotate_regions

        annotate_regions(self.root)
        annotate_dewey(self.root)
        self._by_tag = {}
        self._by_start = []
        for node in self.root.iter():
            self._by_tag.setdefault(node.tag, []).append(node)
            self._by_start.append(node)
        # Pre-order already yields document order, so streams are sorted
        # by start position by construction.

    def bump_version(self) -> int:
        """Advance :attr:`version` without recomputing anything.

        For the update layer only: it patches labels and the ``_by_*``
        indexes itself, then bumps the version so the (id, version)-keyed
        caches in :mod:`repro.xml.columnar` accept its installed
        artifacts and can never serve a pre-mutation entry.
        """
        self.version += 1
        return self.version

    # -- indexes ---------------------------------------------------------

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(self._by_tag)

    def nodes(self, tag: str | None = None) -> list[XMLNode]:
        """All nodes in document order, optionally restricted to *tag*."""
        if tag is None:
            return list(self._by_start)
        return list(self._by_tag.get(tag, ()))

    def tag_count(self, tag: str) -> int:
        return len(self._by_tag.get(tag, ()))

    def node_by_start(self, start: int) -> XMLNode | None:
        """The node whose region ``start`` label equals *start*, or None.

        Start labels identify nodes uniquely within a version, and the
        delta layer's patches keep the labeling canonical (contiguous
        pre-order), so the same label addresses the corresponding node
        in any rebuild or clone of the same logical version — the query
        service's wire-level node addressing relies on exactly this.
        """
        from bisect import bisect_left

        nodes = self._by_start
        position = bisect_left(nodes, start, key=lambda node: node.start)
        if position < len(nodes) and nodes[position].start == start:
            return nodes[position]
        return None

    def size(self) -> int:
        """Total number of elements."""
        return len(self._by_start)

    def __repr__(self) -> str:
        return (f"XMLDocument(root=<{self.root.tag}>, {self.size()} nodes, "
                f"{len(self._by_tag)} tags)")


def element(tag: str, *children: XMLNode, text: str = "",
            attributes: Mapping[str, str] | None = None) -> XMLNode:
    """Terse constructor for building documents in code and tests.

    >>> tree = element("a", element("b", text="1"), element("c", text="2"))
    >>> [child.tag for child in tree.children]
    ['b', 'c']
    """
    return XMLNode(tag, attributes, text, children)
