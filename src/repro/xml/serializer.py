"""XML serialisation: the inverse of :mod:`repro.xml.parser`.

Text and attribute values are escaped so serialise∘parse is the identity
on the document model (up to insignificant whitespace when pretty-printing
is enabled).
"""

from __future__ import annotations

from repro.xml.model import XMLDocument, XMLNode


def escape_text(text: str) -> str:
    """Escape the characters that are markup in element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape for a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;")


def serialize(node_or_document: XMLNode | XMLDocument, *,
              indent: int | None = None, declaration: bool = False) -> str:
    """Serialise a node or document to XML text.

    ``indent=None`` produces compact output that round-trips exactly;
    an integer produces pretty-printed output (text-free elements only get
    their children indented, elements with text stay on one line).
    """
    root = (node_or_document.root
            if isinstance(node_or_document, XMLDocument) else node_or_document)
    parts: list[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent is None:
            parts.append("")
    _write(root, parts, indent, 0)
    if indent is None:
        return "".join(parts)
    return "\n".join(parts) + "\n"


def _open_tag(node: XMLNode, self_closing: bool) -> str:
    attrs = "".join(f' {name}="{escape_attribute(value)}"'
                    for name, value in node.attributes.items())
    return f"<{node.tag}{attrs}{'/' if self_closing else ''}>"


def _write(node: XMLNode, parts: list[str], indent: int | None,
           depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    text = escape_text(node.text)
    if not node.children and not text:
        parts.append(pad + _open_tag(node, self_closing=True))
        return
    if not node.children:
        parts.append(f"{pad}{_open_tag(node, False)}{text}</{node.tag}>")
        return
    if indent is None:
        parts.append(_open_tag(node, False))
        if text:
            parts.append(text)
        for child in node.children:
            _write(child, parts, indent, depth + 1)
        parts.append(f"</{node.tag}>")
        return
    # Pretty printing with children.
    opening = pad + _open_tag(node, False)
    if text:
        opening += text
    parts.append(opening)
    for child in node.children:
        _write(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>")
