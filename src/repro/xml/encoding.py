"""Region encoding (start, end, level) for XML nodes.

The classic containment labelling used by structural joins (Al-Khalifa et
al. 2002): each node gets a ``start`` on entry and an ``end`` after its
subtree, so

* ``a`` is an **ancestor** of ``d``  iff  ``a.start < d.start`` and
  ``d.end < a.end``;
* ``a`` is the **parent** of ``d``  iff  additionally
  ``d.level == a.level + 1``;
* document order is ``start`` order.

All predicates here are pure functions of the labels, so they also work on
any object exposing ``start``/``end``/``level``.
"""

from __future__ import annotations

from repro.xml.model import XMLNode


def annotate_regions(root: XMLNode) -> XMLNode:
    """Assign ``start``/``end``/``level`` to every node of the subtree.

    Iterative DFS so pathological deep documents do not hit the Python
    recursion limit. Returns *root* for chaining.
    """
    counter = 0
    # Stack of (node, level, child_index); child_index tracks progress.
    stack: list[tuple[XMLNode, int, int]] = [(root, 0, 0)]
    while stack:
        node, level, child_index = stack.pop()
        if child_index == 0:
            node.start = counter
            node.level = level
            counter += 1
        if child_index < len(node.children):
            stack.append((node, level, child_index + 1))
            stack.append((node.children[child_index], level + 1, 0))
        else:
            node.end = counter
            counter += 1
    return root


def is_ancestor(ancestor: XMLNode, descendant: XMLNode) -> bool:
    """True iff *ancestor* properly contains *descendant* (A-D axis)."""
    return (ancestor.start < descendant.start
            and descendant.end < ancestor.end)


def is_parent(parent: XMLNode, child: XMLNode) -> bool:
    """True iff *child* is a direct child of *parent* (P-C axis)."""
    return is_ancestor(parent, child) and child.level == parent.level + 1


def satisfies_axis(upper: XMLNode, lower: XMLNode, axis: "object") -> bool:
    """Dispatch on the twig axis (imported lazily to avoid a cycle)."""
    from repro.xml.twig import Axis

    if axis is Axis.CHILD:
        return is_parent(upper, lower)
    return is_ancestor(upper, lower)


def document_order(node: XMLNode) -> int:
    """Sort key for document order (valid after annotate_regions)."""
    assert node.start is not None, "node has no region label; reindex first"
    return node.start


def region_contains(outer: tuple[int, int], inner: tuple[int, int]) -> bool:
    """Interval form of the ancestor test, for label-only data."""
    return outer[0] < inner[0] and inner[1] < outer[1]
