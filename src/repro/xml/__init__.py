"""XML substrate: document model, parser, labelling schemes, twig matching.

Everything the paper's XML side needs, self-contained: a hand-written
parser/serialiser, region and (extended) Dewey encodings, the twig query
model and pattern language, and the twig-matching algorithms (naive
navigation, structural-join pipeline, PathStack/TwigStack, TJFast) — all
running on the columnar document store (:mod:`repro.xml.columnar`) and
registered with the unified :class:`TwigAlgorithm` interface
(:mod:`repro.xml.interface`).
"""

from repro.xml.algorithms import match_twig
from repro.xml.columnar import (
    ColumnarDocument,
    DocumentStats,
    TagPosting,
    columnar,
    document_stats,
)
from repro.xml.dewey import (
    ExtendedDeweyLabeler,
    annotate_dewey,
    common_prefix,
    dewey_is_ancestor,
    dewey_is_parent,
)
from repro.xml.encoding import annotate_regions, is_ancestor, is_parent
from repro.xml.generator import (
    chain_document,
    layered_document,
    random_document,
    star_document,
)
from repro.xml.interface import (
    TwigAlgorithm,
    available_twig_algorithms,
    get_twig_algorithm,
    register_twig_algorithm,
)
from repro.xml.model import XMLDocument, XMLNode, element
from repro.xml.navigation import (
    has_embedding_with_values,
    match_embeddings,
    match_relation,
    verify_embedding,
)
from repro.xml.parser import parse_document, parse_element_tree
from repro.xml.pathstack import path_stack, path_stack_relation
from repro.xml.serializer import serialize
from repro.xml.streams import TagStream
from repro.xml.structural_join import stack_tree_join, structural_join_pipeline
from repro.xml.tjfast import tjfast, tjfast_embeddings
from repro.xml.twig import Axis, TwigNode, TwigQuery, pattern_string
from repro.xml.twig_parser import parse_twig
from repro.xml.twigstack import twig_stack, twig_stack_embeddings
from repro.xml.xmark import XMarkScale, xmark_document
from repro.xml.xpath import XPathQuery, parse_xpath

__all__ = [
    "Axis",
    "ColumnarDocument",
    "DocumentStats",
    "ExtendedDeweyLabeler",
    "TagPosting",
    "TagStream",
    "TwigAlgorithm",
    "TwigNode",
    "TwigQuery",
    "XMLDocument",
    "XMLNode",
    "XMarkScale",
    "XPathQuery",
    "annotate_dewey",
    "annotate_regions",
    "available_twig_algorithms",
    "chain_document",
    "columnar",
    "common_prefix",
    "document_stats",
    "get_twig_algorithm",
    "dewey_is_ancestor",
    "dewey_is_parent",
    "element",
    "has_embedding_with_values",
    "is_ancestor",
    "is_parent",
    "layered_document",
    "match_embeddings",
    "match_relation",
    "match_twig",
    "parse_document",
    "parse_element_tree",
    "parse_twig",
    "parse_xpath",
    "path_stack",
    "path_stack_relation",
    "pattern_string",
    "random_document",
    "register_twig_algorithm",
    "serialize",
    "stack_tree_join",
    "star_document",
    "structural_join_pipeline",
    "tjfast",
    "tjfast_embeddings",
    "twig_stack",
    "twig_stack_embeddings",
    "verify_embedding",
    "xmark_document",
]
