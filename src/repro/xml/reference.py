"""Node-object twig matchers: the pre-columnar reference implementations.

The engine path (:mod:`repro.xml.twigstack`, :mod:`repro.xml.tjfast`)
runs on :class:`~repro.xml.columnar.ColumnarDocument` arrays. This module
preserves the original implementations that walk :class:`XMLNode`
objects through :class:`~repro.xml.streams.TagStream` cursors and decode
extended Dewey labels per element. They exist for two jobs:

* the **regression baseline** of ``benchmarks/bench_twig_columnar.py``
  (the columnar refactor must beat these on real documents), and
* an extra **oracle** in the cross-algorithm parity suite (two
  independently coded matchers agreeing is stronger evidence than one).

They are deliberately *not* registered with the twig-algorithm registry:
planners should never pick them.
"""

from __future__ import annotations

import math

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.operators import naive_multiway_join
from repro.relational.relation import Relation
from repro.xml.dewey import ExtendedDeweyLabeler
from repro.xml.encoding import is_ancestor, is_parent
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.streams import TagStream
from repro.xml.tjfast import match_path_against_tags
from repro.xml.twig import Axis, TwigNode, TwigQuery

_INFINITY = math.inf


def _head_start(stream: TagStream) -> float:
    return _INFINITY if stream.eof() else stream.head().start  # type: ignore[return-value]


def _head_end(stream: TagStream) -> float:
    return _INFINITY if stream.eof() else stream.head().end  # type: ignore[return-value]


def expand_chain_nodes(path: list[TwigNode],
                       stacks: dict[str, list[tuple[XMLNode, int]]],
                       leaf_node: XMLNode, leaf_pointer: int, *,
                       stats: JoinStats | None = None
                       ) -> list[tuple[XMLNode, ...]]:
    """Node-object form of :func:`repro.xml.pathstack.expand_chain`."""
    stats = ensure_stats(stats)
    solutions: list[tuple[XMLNode, ...]] = []
    chain: list[XMLNode] = [leaf_node]

    def ascend(index: int, lower: XMLNode, pointer: int) -> None:
        if index < 0:
            solutions.append(tuple(reversed(chain)))
            stats.count_emitted()
            return
        query_node = path[index]
        lower_axis = path[index + 1].axis
        stack = stacks[query_node.name]
        for entry_index in range(min(pointer + 1, len(stack))):
            node, parent_pointer = stack[entry_index]
            stats.count_comparisons()
            if lower_axis is Axis.CHILD and not is_parent(node, lower):
                continue
            if lower_axis is Axis.DESCENDANT and not is_ancestor(node, lower):
                continue
            chain.append(node)
            ascend(index - 1, node, parent_pointer)
            chain.pop()

    ascend(len(path) - 2, leaf_node, leaf_pointer)
    return solutions


def reference_twig_stack_path_solutions(
        document: XMLDocument, twig: TwigQuery, *,
        stats: JoinStats | None = None
        ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """TwigStack phase 1 over node-object :class:`TagStream` cursors."""
    stats = ensure_stats(stats)
    query_nodes = twig.nodes()
    streams = {q.name: TagStream.for_query_node(document, q)
               for q in query_nodes}
    stacks: dict[str, list[tuple[XMLNode, int]]] = {
        q.name: [] for q in query_nodes}
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {
        leaf.name: [] for leaf in twig.leaves()}
    paths = {leaf.name: twig.root_to_node_path(leaf.name)
             for leaf in twig.leaves()}

    def drained(query_node: TwigNode) -> bool:
        if query_node.is_leaf:
            return streams[query_node.name].eof()
        return all(drained(child) for child in query_node.children)

    def get_next(query_node: TwigNode) -> TwigNode:
        if query_node.is_leaf:
            return query_node
        active = [child for child in query_node.children
                  if not drained(child)]
        for child in active:
            candidate = get_next(child)
            if candidate is not child:
                return candidate
        max_start = max(_head_start(streams[child.name])
                        for child in query_node.children)
        own = streams[query_node.name]
        while _head_end(own) < max_start:
            own.advance()
            stats.count_seeks()
        if not active:
            return query_node
        n_min = min(active,
                    key=lambda child: _head_start(streams[child.name]))
        if _head_start(own) < _head_start(streams[n_min.name]):
            return query_node
        return n_min

    while not drained(twig.root):
        acting = get_next(twig.root)
        stream = streams[acting.name]
        if stream.eof():
            break
        element = stream.head()
        stream.advance()

        def clean(stack: list[tuple[XMLNode, int]]) -> None:
            while stack and stack[-1][0].end < element.start:
                stack.pop()

        parent = acting.parent
        if parent is not None:
            clean(stacks[parent.name])
        clean(stacks[acting.name])
        if parent is not None and not stacks[parent.name]:
            stats.count_filtered()
            continue
        pointer = len(stacks[parent.name]) - 1 if parent is not None else -1
        stacks[acting.name].append((element, pointer))
        if acting.is_leaf:
            path = paths[acting.name]
            solutions[acting.name].extend(
                expand_chain_nodes(path, stacks, element, pointer,
                                   stats=stats))
            stacks[acting.name].pop()

    for leaf_name, tuples in solutions.items():
        stats.record_stage(f"path solutions {leaf_name}", len(tuples))
    return solutions


def reference_merge_path_solutions(
        twig: TwigQuery,
        solutions: dict[str, list[tuple[XMLNode, ...]]], *,
        stats: JoinStats | None = None) -> list[dict[str, XMLNode]]:
    """Phase 2 via the unencoded naive multiway join (pre-engine merge)."""
    stats = ensure_stats(stats)
    by_start: dict[int, XMLNode] = {}
    relations: list[Relation] = []
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        attrs = tuple(q.name for q in path)
        rows = []
        for solution in solutions.get(leaf.name, ()):
            for node in solution:
                by_start[node.start] = node  # type: ignore[index]
            rows.append(tuple(node.start for node in solution))
        relations.append(Relation(f"path:{leaf.name}", attrs, rows))

    joined = naive_multiway_join(relations, name="twig")
    stats.record_stage("merged embeddings", len(joined))
    attrs = joined.schema.attributes
    return [
        {name: by_start[start] for name, start in zip(attrs, row)}
        for row in joined.rows
    ]


def reference_twig_stack_embeddings(document: XMLDocument, twig: TwigQuery,
                                    *, stats: JoinStats | None = None
                                    ) -> list[dict[str, XMLNode]]:
    solutions = reference_twig_stack_path_solutions(document, twig,
                                                    stats=stats)
    return reference_merge_path_solutions(twig, solutions, stats=stats)


def reference_twig_stack(document: XMLDocument, twig: TwigQuery, *,
                         name: str | None = None,
                         stats: JoinStats | None = None) -> Relation:
    """The node-object TwigStack, end to end."""
    embeddings = reference_twig_stack_embeddings(document, twig, stats=stats)
    attrs = twig.attributes
    rows = [tuple(embedding[a].value for a in attrs)
            for embedding in embeddings]
    return Relation(name or twig.name, attrs, rows)


def reference_tjfast_path_solutions(
        document: XMLDocument, twig: TwigQuery, *,
        labeler: ExtendedDeweyLabeler | None = None,
        stats: JoinStats | None = None
        ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """TJFast path solutions via per-element extended-Dewey decodes."""
    stats = ensure_stats(stats)
    if labeler is None:
        labeler = ExtendedDeweyLabeler(document)
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {}
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        found: list[tuple[XMLNode, ...]] = []
        for element, label in labeler.leaf_labels(leaf.tag):
            stats.count_seeks()
            if not leaf.matches_value(element.value):
                continue
            tags = labeler.decode(label)
            ancestry = element.path_from_root()
            for assignment in match_path_against_tags(path, tags):
                nodes = tuple(ancestry[position] for position in assignment)
                if all(q.matches_value(node.value)
                       for q, node in zip(path, nodes)):
                    found.append(nodes)
                    stats.count_emitted()
        solutions[leaf.name] = found
        stats.record_stage(f"tjfast path solutions {leaf.name}", len(found))
    return solutions


def reference_tjfast_embeddings(document: XMLDocument, twig: TwigQuery, *,
                                stats: JoinStats | None = None
                                ) -> list[dict[str, XMLNode]]:
    solutions = reference_tjfast_path_solutions(document, twig, stats=stats)
    return reference_merge_path_solutions(twig, solutions, stats=stats)


def reference_tjfast(document: XMLDocument, twig: TwigQuery, *,
                     name: str | None = None,
                     stats: JoinStats | None = None) -> Relation:
    """The per-element extended-Dewey TJFast, end to end."""
    embeddings = reference_tjfast_embeddings(document, twig, stats=stats)
    attrs = twig.attributes
    rows = [tuple(embedding[a].value for a in attrs)
            for embedding in embeddings]
    return Relation(name or twig.name, attrs, rows)
