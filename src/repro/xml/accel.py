"""The relational XPath-accelerator twig backend (``accel``).

This module lowers any :class:`~repro.xml.twig.TwigQuery` to ordinary
relations over the columnar region labels and evaluates the result with
the registered relational kernels — the DMR-XPath direction: the XML
side of the library becomes just another client of the dictionary-
encoded engine.

**Node relations.** Every tag of a
:class:`~repro.xml.columnar.ColumnarDocument` induces a relation

    ``N_tag(pre, post, level, value)``

read zero-copy from the per-tag postings (``tag_starts``/``tag_ends``)
and the ``levels``/``values`` columns. ``pre`` (the start label)
identifies a node uniquely, so it doubles as the node's key.

**Axis lowering.** The axes are range predicates over those columns
(region encoding, ancestor iff containment):

* ``a // d``  ⇔  ``a.pre < d.pre  ∧  d.post < a.post``
* ``a / c``   ⇔  the above  ∧  ``c.level = a.level + 1``

**Edge relations.** Rather than handing the kernels inequality
predicates they cannot bind, each twig edge's range predicate is
materialised as a binary relation ``E_parent_child(parent, child)`` of
``(pre, pre)`` pairs, enumerated by one stack-based merge over the two
postings in document order — O(|parent posting| + |child posting| +
output), the classic stack-tree structural join. The twig then *is* a
conjunctive query: one binary atom per edge, joined on the shared
node variables, evaluated by ``generic_join`` (or any registered
kernel) through the normal :class:`~repro.engine.encoded.EncodedInstance`
path. Because every non-root query node appears in exactly one edge
atom as the child and candidate streams carry the tag + value
predicates, the CQ's solutions are exactly the twig's embeddings.

The backend registers as the ``accel`` :class:`~repro.xml.interface.
TwigAlgorithm` (see :mod:`repro.xml.algorithms`), so it flows through
the planner, the ``--twig-algorithm`` override, the parity suites and
the update oracle unchanged. Delta maintenance is inherited: the
postings *are* the node relations, and the update layer
(:mod:`repro.updates.documents`) patches them in place, so ``accel``
sees every edit the moment the refreshed view is installed. Under the
parallel executor an ``accel`` twig rides the *join* partitioner — the
compiled instance is sliced on the root attribute's code range, which
is the root tag's pre-range — instead of the bespoke root-posting
slicing of the navigational matchers; see
:meth:`repro.parallel.executor.ParallelExecutor.run_twig`.

``docs/accelerator.md`` documents the schema, the lowering rules and
the planner's selection rule.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.xml.columnar import ColumnarDocument, TagPosting, columnar
from repro.xml.twig import Axis, TwigNode, TwigQuery

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedInstance
    from repro.xml.model import XMLDocument, XMLNode

#: The relational kernel the accelerator hands its conjunctive plan to.
#: Any registered :class:`~repro.engine.interface.JoinAlgorithm` that
#: evaluates purely relational instances works (``leapfrog`` included);
#: hashed generic join is the library's default for relational inputs.
ACCEL_KERNEL = "generic_join"

#: Attribute names of one per-tag node relation (see :func:`node_relation`).
NODE_SCHEMA = ("pre", "post", "level", "value")


def node_relation(view: ColumnarDocument, tag: str, *,
                  name: str | None = None) -> Relation:
    """The accelerator's node relation ``N_tag(pre, post, level, value)``.

    Rows are read straight from the tag's posting and the shared
    ``levels``/``values`` columns — no node objects are touched. The
    edge relations of :func:`lower_twig` are selections/joins over
    these; this explicit form exists for the property tests, the docs
    and any external (e.g. SQL) backend that wants the raw schema.
    """
    nids, starts, ends = view.postings(tag)
    levels, values = view.levels, view.values
    rows = [(starts[i], ends[i], levels[nid], values[nid])
            for i, nid in enumerate(nids)]
    return Relation(name or f"N_{tag}", NODE_SCHEMA, rows)


def axis_pairs(upper: TagPosting, lower: TagPosting,
               levels, lower_axis: Axis,
               stats: JoinStats | None = None) -> list[tuple[int, int]]:
    """All ``(pre_upper, pre_lower)`` pairs satisfying the axis predicate.

    One merge over both postings in document order: upper candidates
    push onto a stack of currently-open regions (strictly increasing
    levels — the open-ancestor chain restricted to the upper tag);
    regions that closed before the lower candidate pop off. Every
    surviving stack entry contains the lower candidate (proper nesting:
    ``pre_u < pre_l ≤ post_u`` forces full containment), which is
    exactly the DESCENDANT range predicate; CHILD additionally selects
    the unique entry at ``level_l - 1`` by binary search on the stack's
    sorted levels. The strict ``pre_u < pre_l`` push bound keeps a node
    from pairing with itself when both query nodes share a tag.
    """
    stats = ensure_stats(stats)
    a_nids, a_starts, a_ends = upper.nids, upper.starts, upper.ends
    b_nids, b_starts = lower.nids, lower.starts
    pairs: list[tuple[int, int]] = []
    stack_starts: list[int] = []
    stack_ends: list[int] = []
    stack_levels: list[int] = []
    child = lower_axis is Axis.CHILD
    i, n = 0, len(a_starts)
    comparisons = 0
    for j in range(len(b_starts)):
        sb = b_starts[j]
        while i < n and a_starts[i] < sb:
            sa = a_starts[i]
            while stack_ends and stack_ends[-1] < sa:
                stack_starts.pop()
                stack_ends.pop()
                stack_levels.pop()
                comparisons += 1
            stack_starts.append(sa)
            stack_ends.append(a_ends[i])
            stack_levels.append(levels[a_nids[i]])
            comparisons += 1
            i += 1
        while stack_ends and stack_ends[-1] < sb:
            stack_starts.pop()
            stack_ends.pop()
            stack_levels.pop()
            comparisons += 1
        comparisons += 1
        if not stack_starts:
            continue
        if child:
            want = levels[b_nids[j]] - 1
            k = bisect_left(stack_levels, want)
            if k < len(stack_levels) and stack_levels[k] == want:
                pairs.append((stack_starts[k], sb))
        else:
            pairs.extend((sa, sb) for sa in stack_starts)
    stats.count_comparisons(comparisons)
    return pairs


def edge_relation(view: ColumnarDocument, parent: TwigNode,
                  child: TwigNode, *,
                  stats: JoinStats | None = None) -> Relation:
    """One twig edge as a binary relation of ``(pre, pre)`` pairs.

    The materialised form of the axis range predicate between the two
    node relations, restricted to the candidate streams (tag + value
    predicate already applied by :meth:`ColumnarDocument.stream`).
    """
    pairs = axis_pairs(view.stream(parent), view.stream(child),
                       view.levels, child.axis, stats)
    return Relation(f"E_{parent.name}_{child.name}",
                    (parent.name, child.name), pairs)


def lower_twig(view: ColumnarDocument, twig: TwigQuery, *,
               stats: JoinStats | None = None) -> list[Relation]:
    """Lower *twig* to its conjunctive-query atoms (one per edge).

    A single-node twig has no edges and lowers to one unary relation of
    the root's candidate pre labels. Each edge relation's size is
    recorded as a stage — the accelerator's per-edge pair lists are its
    intermediate results, the quantity the paper's evaluation tracks.
    """
    from repro.core.decomposition import edge_atoms

    stats = ensure_stats(stats)
    atoms = edge_atoms(twig)
    if not atoms:
        root = twig.root
        posting = view.stream(root)
        relation = Relation(f"E_{root.name}", (root.name,),
                            [(start,) for start in posting.starts])
        stats.record_stage(f"nodes {root.name}", len(relation))
        return [relation]
    relations = []
    for atom in atoms:
        pairs = axis_pairs(view.stream(atom.parent), view.stream(atom.child),
                           view.levels, atom.axis, stats)
        relation = Relation(atom.name, atom.attributes, pairs)
        stats.record_stage(
            f"edge {atom.parent.name}{atom.axis}{atom.child.name}",
            len(relation))
        relations.append(relation)
    return relations


def compile_twig(view: ColumnarDocument, twig: TwigQuery, *,
                 name: str | None = None,
                 stats: JoinStats | None = None) -> "EncodedInstance":
    """Compile *twig* into an encoded relational instance.

    The instance's attribute order is the twig's pre-order attribute
    tuple, so its first (top-level) attribute is the twig root — which
    is what lets the parallel executor partition an accel run on the
    root tag's pre-range through the ordinary join slicer. The returned
    instance carries no query object or documents, so every join
    transport (fork, pickle, shm, mmap) can ship it.
    """
    from repro.engine.encoded import EncodedInstance

    stats = ensure_stats(stats)
    with stats.phase("lower"):
        relations = lower_twig(view, twig, stats=stats)
    with stats.phase("encode"):
        return EncodedInstance.from_relations(relations, twig.attributes,
                                              name=name or twig.name)


def accel_starts(view: ColumnarDocument, twig: TwigQuery, *,
                 name: str | None = None,
                 stats: JoinStats | None = None):
    """All embeddings of *twig* as rows of pre labels over its attributes."""
    stats = ensure_stats(stats)
    instance = compile_twig(view, twig, name=name, stats=stats)
    if instance.has_empty_input():
        return frozenset()
    from repro.engine.interface import get_algorithm

    return get_algorithm(ACCEL_KERNEL).run(instance, stats=stats).rows


def project_starts(view: ColumnarDocument, twig: TwigQuery,
                   start_rows, *, name: str | None = None) -> Relation:
    """Decode pre-label rows into the twig's value-tuple answer."""
    values, index = view.values, view.nid_index
    rows = {tuple(values[index[start]] for start in row)
            for row in start_rows}
    return Relation(name or twig.name, Schema(twig.attributes), rows)


class AccelTwigAlgorithm:
    """Twig matching compiled to relations over the region labels."""

    name = "accel"
    optimal_for = ("selective value predicates (WCOJ over per-edge "
                   "candidate pairs); anything a relational kernel runs")
    #: The kernel the conjunctive plan executes on.
    kernel = ACCEL_KERNEL

    def supports(self, twig: TwigQuery) -> bool:
        return True

    def embeddings(self, document: "XMLDocument", twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> "list[dict[str, XMLNode]]":
        view = columnar(document)
        names = twig.attributes
        nodes, index = view.nodes, view.nid_index
        return [{attr: nodes[index[start]]
                 for attr, start in zip(names, row)}
                for row in accel_starts(view, twig, stats=stats)]

    def run(self, document: "XMLDocument", twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        view = columnar(document)
        rows = accel_starts(view, twig, name=name, stats=stats)
        return project_starts(view, twig, rows, name=name)
