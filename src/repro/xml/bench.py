"""Accelerator benchmark scenarios (shared CLI / pytest harness).

Races the relational XPath-accelerator backend (``accel``,
:mod:`repro.xml.accel`) against the holistic twig matchers it
complements — TJFast and TwigStack — on two corpora:

* an in-memory XMark document at scale factor 4
  (:func:`repro.xml.xmark.xmark_document`), and
* the streamed ``xmark-stream`` corpus: the same shape built through
  the SAX-streaming builder into a file-backed mmap arena and queried
  *attached* (:func:`repro.xml.arenaview.attach_arena_document`) — the
  accelerator lowers twigs from the arena view's zero-copy columns
  exactly as from an in-memory view.

Row parity between every matcher is **fatal** (the differential
harness in ``tests/xml/test_accel_oracle.py`` is the fine-grained
oracle; the bench re-checks it at benchmark scale). Speedups are
*reported*, not gated: which side wins depends on the twig — the
accelerator's edge relations pay off when value predicates shrink the
candidate streams, and the bench includes both predicate-heavy and
predicate-free twigs so the trade-off is visible in the numbers.

With ``workers >= 2`` each scenario also times the accelerator under
the partition-parallel executor (the compiled instance sliced on the
root tag's pre-range), asserting parity with the serial rows.

Consumed by ``benchmarks/bench_accel.py`` and
``python -m repro bench --suite accel``.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.xml.twig import TwigNode, TwigQuery

#: The rival matchers the accelerator races (both support every twig).
RIVALS = ("tjfast", "twigstack")

#: Best-of repeats per timed run (min swallows scheduler noise).
REPEATS = 3


def _best_of(fn: Callable[[], Relation],
             repeats: int = REPEATS) -> tuple[Relation, float]:
    """(result, best milliseconds) over *repeats* runs of *fn*."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    assert result is not None
    return result, best


@dataclass(frozen=True)
class AccelTiming:
    """One accel-vs-rival (or serial-vs-parallel) measurement."""

    label: str
    rival: str
    rival_ms: float
    accel_ms: float

    @property
    def speedup(self) -> float:
        """How much faster accel ran than the rival (>1 = accel wins)."""
        return self.rival_ms / max(self.accel_ms, 1e-9)


@dataclass(frozen=True)
class AccelScenarioResult:
    """One corpus raced across all bench twigs."""

    title: str
    timings: tuple[AccelTiming, ...]
    #: Every matcher (and the parallel run) produced identical rows.
    consistent: bool


def bench_twigs() -> list[tuple[str, TwigQuery]]:
    """The bench twig set: branching, both axes, with and without
    value predicates (predicates are where the planner picks accel)."""
    from repro.xml.twig_parser import parse_twig

    twigs = [
        ("auction bidders",
         parse_twig("oa=open_auction(/ir=itemref, //pr=personref)")),
        ("person interests",
         parse_twig("p=person(/nm=name, //i=interest)")),
        ("bid chain",
         parse_twig("oa=open_auction(//bd=bidder(/pr=personref))")),
    ]
    # High bids by low-numbered bidders: two value predicates on one
    # branching twig — the choose_twig_algorithm shape that routes to
    # the accelerator (selective streams -> small edge relations).
    root = TwigNode("oa", tag="open_auction")
    bidder = root.descendant("bd", tag="bidder")
    bidder.child("inc", tag="increase",
                 predicate=lambda v: isinstance(v, int) and v > 25)
    bidder.child("pr", tag="personref",
                 predicate=lambda v: isinstance(v, int) and v < 10)
    twigs.append(("high bids, low ids", TwigQuery(root)))
    return twigs


def _race(document, title: str, *, workers: int = 0,
          repeats: int = REPEATS) -> AccelScenarioResult:
    """Race accel against :data:`RIVALS` (and itself in parallel)."""
    from repro.xml.interface import get_twig_algorithm

    accel = get_twig_algorithm("accel")
    timings: list[AccelTiming] = []
    consistent = True
    for label, twig in bench_twigs():
        reference, accel_ms = _best_of(
            lambda: accel.run(document, twig), repeats)
        for rival_name in RIVALS:
            rival = get_twig_algorithm(rival_name)
            answer, rival_ms = _best_of(
                lambda: rival.run(document, twig), repeats)
            if answer != reference:
                consistent = False
            timings.append(AccelTiming(label, rival_name,
                                       rival_ms, accel_ms))
        if workers >= 2:
            from repro.parallel.executor import ParallelExecutor

            executor = ParallelExecutor(workers)
            answer, parallel_ms = _best_of(
                lambda: executor.run_twig(document, twig, "accel"),
                repeats)
            if answer != reference:
                consistent = False
            timings.append(AccelTiming(label, f"accel x{workers}",
                                       accel_ms, parallel_ms))
    return AccelScenarioResult(title=title, timings=tuple(timings),
                               consistent=consistent)


def xmark_scenario(factor: float = 4.0, *, seed: int = 7,
                   workers: int = 0,
                   repeats: int = REPEATS) -> AccelScenarioResult:
    """The in-memory corpus: XMark at *factor* (default 4)."""
    from repro.xml.xmark import xmark_document

    document = xmark_document(factor, seed=seed)
    return _race(document,
                 f"XMark factor {factor:g} ({document.size()} nodes)",
                 workers=workers, repeats=repeats)


def stream_scenario(factor: float = 4.0, *, seed: int = 0,
                    workers: int = 0,
                    repeats: int = REPEATS) -> AccelScenarioResult:
    """The streamed corpus: ``xmark-stream`` built into a file arena
    and queried attached (accel lowers from the mmap-backed columns)."""
    from repro.xml.arenaview import attach_arena_document
    from repro.xml.streaming import stream_document
    from repro.xml.xmark import xmark_stream_chunks

    arena = stream_document(xmark_stream_chunks(factor, seed=seed))
    try:
        handle, view = attach_arena_document(arena)
        return _race(handle,
                     f"xmark-stream factor {factor:g} "
                     f"({view.size} nodes, mmap arena)",
                     workers=workers, repeats=repeats)
    finally:
        arena.close()
        arena.unlink()
