"""An XMark-flavoured auction-site document generator.

XMark is the standard XML benchmark schema (an auction site with regions,
items, people and auctions). The real generator is a C program with
Shakespearean text; this is a compact, deterministic reimplementation of
its *structure* — the part twig joins care about — sized by a scale
parameter, used to give the twig-matching and multi-model benchmarks a
realistic document shape (deep paths, repeated tags, skewed fan-out).

Structure::

    site
    ├── regions ── <region>* ── item* ── (name, incategory*, payment)
    ├── people ── person* ── (name, emailaddress, profile(interest*))
    └── open_auctions ── open_auction* ── (itemref, bidder*(personref,
                                           increase), current)

``itemref``/``personref``/``incategory``/``interest`` carry integer ids in
their text, so multi-model queries can join auctions to a relational
table of, say, category labels or user accounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xml.model import XMLDocument, XMLNode

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


@dataclass(frozen=True)
class XMarkScale:
    """Entity counts derived from a scale factor."""

    items: int
    people: int
    auctions: int
    categories: int

    @classmethod
    def from_factor(cls, factor: float) -> "XMarkScale":
        base = max(int(factor * 100), 1)
        return cls(items=base, people=max(base // 2, 1),
                   auctions=max(base // 2, 1),
                   categories=max(base // 10, 1))


def xmark_document(factor: float = 0.1, *, seed: int = 0,
                   rng: random.Random | None = None) -> XMLDocument:
    """Generate an XMark-shaped document at the given scale factor.

    Deterministic: either pass an explicit *rng* (it is consumed in a
    fixed draw order) or a *seed* from which a private
    :class:`random.Random` is derived. Scenario runs are therefore
    reproducible across twig algorithms and benchmark harnesses — no
    draw ever touches the global :mod:`random` state.
    """
    if rng is None:
        rng = random.Random(seed)
    scale = XMarkScale.from_factor(factor)
    site = XMLNode("site")

    regions = site.add("regions")
    region_nodes = [regions.add(region) for region in REGIONS]
    for item_id in range(scale.items):
        region = region_nodes[rng.randrange(len(region_nodes))]
        item = region.add("item", attributes={"id": f"item{item_id}"})
        item.add("name", text=f"item-{item_id}")
        for _ in range(rng.randint(1, 3)):
            item.add("incategory",
                     text=str(rng.randrange(scale.categories)))
        payment = item.add("payment")
        payment.add("method", text=rng.choice(
            ("cash", "creditcard", "transfer")))

    people = site.add("people")
    for person_id in range(scale.people):
        person = people.add("person",
                            attributes={"id": f"person{person_id}"})
        person.add("name", text=f"person-{person_id}")
        person.add("emailaddress", text=f"p{person_id}@example.org")
        profile = person.add("profile")
        for _ in range(rng.randint(0, 3)):
            profile.add("interest",
                        text=str(rng.randrange(scale.categories)))

    open_auctions = site.add("open_auctions")
    for auction_id in range(scale.auctions):
        auction = open_auctions.add(
            "open_auction", attributes={"id": f"auction{auction_id}"})
        auction.add("itemref", text=str(rng.randrange(scale.items)))
        for _ in range(rng.randint(0, 4)):
            bidder = auction.add("bidder")
            bidder.add("personref", text=str(rng.randrange(scale.people)))
            bidder.add("increase", text=str(rng.randint(1, 50)))
        auction.add("current", text=str(rng.randint(10, 500)))

    return XMLDocument(site)


def xmark_stream_chunks(factor: float = 0.1, *, seed: int = 0):
    """The same XMark shape as serialized text chunks, O(1) memory.

    A generator of XML fragments (one entity per chunk) feeding the
    SAX-streaming builder (:func:`repro.xml.streaming.stream_document`)
    so arbitrarily large factors never materialize a node tree — the
    corpus behind the ``xmark-stream:<factor>`` spec. Deterministic in
    *seed*; items land in per-region blocks (a purely streaming
    emission order), so the stream is its own reference — parity checks
    parse the identical text in memory rather than comparing against
    :func:`xmark_document`'s interleaved construction order.
    """
    rng = random.Random(seed)
    scale = XMarkScale.from_factor(factor)
    yield "<site>"

    yield "<regions>"
    for index, region in enumerate(REGIONS):
        yield f"<{region}>"
        # Per-region block: every item whose id hashes to this region.
        for item_id in range(index, scale.items, len(REGIONS)):
            parts = [f'<item id="item{item_id}">',
                     f"<name>item-{item_id}</name>"]
            for _ in range(rng.randint(1, 3)):
                parts.append(f"<incategory>"
                             f"{rng.randrange(scale.categories)}"
                             f"</incategory>")
            method = rng.choice(("cash", "creditcard", "transfer"))
            parts.append(f"<payment><method>{method}</method></payment>")
            parts.append("</item>")
            yield "".join(parts)
        yield f"</{region}>"
    yield "</regions>"

    yield "<people>"
    for person_id in range(scale.people):
        parts = [f'<person id="person{person_id}">',
                 f"<name>person-{person_id}</name>",
                 f"<emailaddress>p{person_id}@example.org</emailaddress>",
                 "<profile>"]
        for _ in range(rng.randint(0, 3)):
            parts.append(f"<interest>{rng.randrange(scale.categories)}"
                         f"</interest>")
        parts.append("</profile></person>")
        yield "".join(parts)
    yield "</people>"

    yield "<open_auctions>"
    for auction_id in range(scale.auctions):
        parts = [f'<open_auction id="auction{auction_id}">',
                 f"<itemref>{rng.randrange(scale.items)}</itemref>"]
        for _ in range(rng.randint(0, 4)):
            parts.append(f"<bidder>"
                         f"<personref>{rng.randrange(scale.people)}"
                         f"</personref>"
                         f"<increase>{rng.randint(1, 50)}</increase>"
                         f"</bidder>")
        parts.append(f"<current>{rng.randint(10, 500)}</current>")
        parts.append("</open_auction>")
        yield "".join(parts)
    yield "</open_auctions>"
    yield "</site>"
