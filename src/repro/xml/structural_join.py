"""Stack-tree structural joins (Al-Khalifa et al., ICDE 2002).

The binary primitive of early XML query processors: given the nodes that
match an ancestor (or parent) pattern and the nodes that match a
descendant (or child) pattern, both in document order, emit all pairs
related by the axis in one merge pass using a stack of nested ancestors.

:func:`stack_tree_join` is the Stack-Tree-Desc variant (output sorted by
descendant) over node objects — the public binary primitive.
:func:`structural_join_pipeline` chains binary joins along a twig's
edges — the pre-holistic way to evaluate twigs, kept here as a baseline
for the twig-algorithm benchmark — and since the columnar refactor runs
on :class:`~repro.xml.columnar.ColumnarDocument` postings: the merge
compares plain ints from the parallel start/end arrays and, when the
ancestor stack runs empty, *binary-searches* the descendant posting
forward to the next ancestor's start instead of advancing linearly.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.encoding import is_ancestor, is_parent
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigQuery


def stack_tree_join(ancestors: Sequence[XMLNode],
                    descendants: Sequence[XMLNode], *,
                    axis: Axis = Axis.DESCENDANT,
                    stats: JoinStats | None = None
                    ) -> list[tuple[XMLNode, XMLNode]]:
    """All (ancestor, descendant) pairs satisfying *axis*.

    Inputs must be in document order (as produced by
    :meth:`XMLDocument.nodes`). Runs in O(|A| + |D| + |output|): the
    Stack-Tree-Desc algorithm.
    """
    stats = ensure_stats(stats)
    output: list[tuple[XMLNode, XMLNode]] = []
    stack: list[XMLNode] = []
    a_index = 0
    for descendant in descendants:
        # Pop finished ancestors (those that end before this descendant).
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        # Push all ancestors that start before this descendant.
        while a_index < len(ancestors) and \
                ancestors[a_index].start < descendant.start:
            candidate = ancestors[a_index]
            a_index += 1
            stats.count_comparisons()
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            if candidate.end > descendant.start:
                stack.append(candidate)
        if not stack:
            continue
        if axis is Axis.DESCENDANT:
            for ancestor in stack:
                if is_ancestor(ancestor, descendant):
                    output.append((ancestor, descendant))
                    stats.count_emitted()
        else:
            # Parent-child: only the innermost stack entry can be the
            # parent; check the level constraint.
            ancestor = stack[-1]
            if is_parent(ancestor, descendant):
                output.append((ancestor, descendant))
                stats.count_emitted()
    return output


def stack_tree_join_postings(view: ColumnarDocument,
                             a_nids: Sequence[int], a_starts: Sequence[int],
                             a_ends: Sequence[int],
                             d_nids: Sequence[int], d_starts: Sequence[int],
                             d_ends: Sequence[int], *,
                             axis: Axis = Axis.DESCENDANT,
                             stats: JoinStats | None = None
                             ) -> list[tuple[int, int]]:
    """Stack-Tree-Desc over columnar postings, emitting node-id pairs.

    Same output as :func:`stack_tree_join` but over parallel int arrays;
    whenever the ancestor stack runs empty the descendant cursor jumps
    by binary search to the next ancestor's start.
    """
    stats = ensure_stats(stats)
    levels = view.levels
    output: list[tuple[int, int]] = []
    stack_nids: list[int] = []
    stack_ends: list[int] = []
    n_a, n_d = len(a_nids), len(d_nids)
    a_i = d_i = 0
    while d_i < n_d:
        d_start = d_starts[d_i]
        # Pop finished ancestors (those that end before this descendant).
        while stack_ends and stack_ends[-1] < d_start:
            stack_ends.pop()
            stack_nids.pop()
        # Push all ancestors that start before this descendant.
        while a_i < n_a and a_starts[a_i] < d_start:
            candidate_start = a_starts[a_i]
            candidate_end = a_ends[a_i]
            stats.count_comparisons()
            while stack_ends and stack_ends[-1] < candidate_start:
                stack_ends.pop()
                stack_nids.pop()
            if candidate_end > d_start:
                stack_nids.append(a_nids[a_i])
                stack_ends.append(candidate_end)
            a_i += 1
        if not stack_nids:
            if a_i >= n_a:
                break  # no ancestor can ever open again
            # Binary-search seek: no open ancestor, so no descendant
            # before the next ancestor's start can produce a pair.
            skip_to = bisect_left(d_starts, a_starts[a_i], d_i + 1)
            stats.count_seeks()
            d_i = skip_to
            continue
        d_nid = d_nids[d_i]
        d_end = d_ends[d_i]
        if axis is Axis.DESCENDANT:
            for position, a_nid in enumerate(stack_nids):
                if d_end < stack_ends[position]:
                    output.append((a_nid, d_nid))
                    stats.count_emitted()
        else:
            # Parent-child: only the innermost stack entry can be the
            # parent; check the level constraint.
            a_nid = stack_nids[-1]
            if d_end < stack_ends[-1] and \
                    levels[d_nid] == levels[a_nid] + 1:
                output.append((a_nid, d_nid))
                stats.count_emitted()
        d_i += 1
    return output


def _edge_joined(view: ColumnarDocument, twig: TwigQuery,
                 stats: JoinStats) -> Relation:
    """Join all per-edge pair relations on the shared twig attributes.

    Rows carry node identities (``start`` labels); the caller decodes
    them to values or nodes.
    """
    starts = view.starts
    streams = {q.name: view.stream(q) for q in twig.nodes()}

    relations: list[Relation] = []
    for upper, lower in twig.edges():
        a, d = streams[upper.name], streams[lower.name]
        pairs = stack_tree_join_postings(
            view, a.nids, a.starts, a.ends, d.nids, d.starts, d.ends,
            axis=lower.axis, stats=stats)
        edge_relation = Relation(
            f"{upper.name}->{lower.name}", (upper.name, lower.name),
            [(starts[a_nid], starts[d_nid]) for a_nid, d_nid in pairs])
        stats.record_stage(edge_relation.name, len(edge_relation))
        relations.append(edge_relation)

    joined = relations[0]
    for relation in relations[1:]:
        joined = joined.natural_join(relation)
        stats.record_stage(joined.name, len(joined))
    return joined


def structural_join_pipeline(document: XMLDocument, twig: TwigQuery, *,
                             stats: JoinStats | None = None) -> Relation:
    """Evaluate a twig as a tree of binary structural joins.

    Produces the same value-tuple relation as
    :func:`repro.xml.navigation.match_relation`, but computes it the
    pre-2002 way: one binary structural join per twig edge, stitched
    together with relational joins on node identities. Each edge's pair
    list is materialised, so intermediate results can far exceed the final
    output — this is exactly the weakness holistic twig joins (and the
    paper's XJoin) address.
    """
    stats = ensure_stats(stats)
    view = columnar(document)
    values = view.values
    if not twig.edges():  # single-node twig
        only = twig.root
        stream = view.stream(only)
        rows = [(values[nid],) for nid in stream.nids]
        return Relation(twig.name, (only.name,), rows)

    joined = _edge_joined(view, twig, stats)
    attrs = twig.attributes
    nid_by_start = view.nid_by_start
    value_rows = []
    for row in joined.project(attrs).rows:
        value_rows.append(tuple(values[nid_by_start(start)]  # type: ignore[index]
                                for start in row))
    return Relation(twig.name, attrs, value_rows)


def structural_join_embeddings(document: XMLDocument, twig: TwigQuery, *,
                               stats: JoinStats | None = None
                               ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* recovered from the edge-join pipeline."""
    stats = ensure_stats(stats)
    view = columnar(document)
    nodes_of = view.nodes
    if not twig.edges():  # single-node twig
        only = twig.root
        stream = view.stream(only)
        return [{only.name: nodes_of[nid]} for nid in stream.nids]

    joined = _edge_joined(view, twig, stats)
    attrs = joined.schema.attributes
    nid_by_start = view.nid_by_start
    return [
        {name: nodes_of[nid_by_start(start)]  # type: ignore[index]
         for name, start in zip(attrs, row)}
        for row in joined.rows
    ]
