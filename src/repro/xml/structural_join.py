"""Stack-tree structural joins (Al-Khalifa et al., ICDE 2002).

The binary primitive of early XML query processors: given the nodes that
match an ancestor (or parent) pattern and the nodes that match a
descendant (or child) pattern, both in document order, emit all pairs
related by the axis in one merge pass using a stack of nested ancestors.

:func:`stack_tree_join` is the Stack-Tree-Desc variant (output sorted by
descendant). :func:`structural_join_pipeline` chains binary joins along a
twig's edges — the pre-holistic way to evaluate twigs, kept here as a
baseline for the twig-algorithm benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.encoding import is_ancestor, is_parent
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.streams import TagStream
from repro.xml.twig import Axis, TwigQuery


def stack_tree_join(ancestors: Sequence[XMLNode],
                    descendants: Sequence[XMLNode], *,
                    axis: Axis = Axis.DESCENDANT,
                    stats: JoinStats | None = None
                    ) -> list[tuple[XMLNode, XMLNode]]:
    """All (ancestor, descendant) pairs satisfying *axis*.

    Inputs must be in document order (as produced by
    :meth:`XMLDocument.nodes`). Runs in O(|A| + |D| + |output|): the
    Stack-Tree-Desc algorithm.
    """
    stats = ensure_stats(stats)
    output: list[tuple[XMLNode, XMLNode]] = []
    stack: list[XMLNode] = []
    a_index = 0
    for descendant in descendants:
        # Pop finished ancestors (those that end before this descendant).
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        # Push all ancestors that start before this descendant.
        while a_index < len(ancestors) and \
                ancestors[a_index].start < descendant.start:
            candidate = ancestors[a_index]
            a_index += 1
            stats.count_comparisons()
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            if candidate.end > descendant.start:
                stack.append(candidate)
        if not stack:
            continue
        if axis is Axis.DESCENDANT:
            for ancestor in stack:
                if is_ancestor(ancestor, descendant):
                    output.append((ancestor, descendant))
                    stats.count_emitted()
        else:
            # Parent-child: only the innermost stack entry can be the
            # parent; check the level constraint.
            ancestor = stack[-1]
            if is_parent(ancestor, descendant):
                output.append((ancestor, descendant))
                stats.count_emitted()
    return output


def structural_join_pipeline(document: XMLDocument, twig: TwigQuery, *,
                             stats: JoinStats | None = None) -> Relation:
    """Evaluate a twig as a tree of binary structural joins.

    Produces the same value-tuple relation as
    :func:`repro.xml.navigation.match_relation`, but computes it the
    pre-2002 way: one binary structural join per twig edge, stitched
    together with relational joins on node identities. Each edge's pair
    list is materialised, so intermediate results can far exceed the final
    output — this is exactly the weakness holistic twig joins (and the
    paper's XJoin) address.
    """
    stats = ensure_stats(stats)
    streams = {qnode.name: TagStream.for_query_node(document, qnode).nodes
               for qnode in twig.nodes()}
    by_start: dict[int, XMLNode] = {
        node.start: node  # type: ignore[dict-item]
        for nodes in streams.values() for node in nodes}

    # One relation of (parent_start, child_start) per twig edge; then join
    # them all on the shared twig-node attributes. Node identity = start.
    relations: list[Relation] = []
    for upper, lower in twig.edges():
        pairs = stack_tree_join(streams[upper.name], streams[lower.name],
                                axis=lower.axis, stats=stats)
        edge_relation = Relation(
            f"{upper.name}->{lower.name}", (upper.name, lower.name),
            [(a.start, d.start) for a, d in pairs])
        stats.record_stage(edge_relation.name, len(edge_relation))
        relations.append(edge_relation)

    if not relations:  # single-node twig
        only = twig.root
        rows = [(node.value,) for node in streams[only.name]]
        return Relation(twig.name, (only.name,), rows)

    joined = relations[0]
    for relation in relations[1:]:
        joined = joined.natural_join(relation)
        stats.record_stage(joined.name, len(joined))

    attrs = twig.attributes
    value_rows = []
    for row in joined.project(attrs).rows:
        value_rows.append(tuple(by_start[start].value for start in row))
    return Relation(twig.name, attrs, value_rows)
