"""The built-in :class:`TwigAlgorithm` implementations.

All matcher families run on the shared columnar document layer
(:mod:`repro.xml.columnar`) and register with
:mod:`repro.xml.interface` under stable names:

* ``twigstack`` — holistic two-phase matching; optimal for twigs whose
  edges are all ancestor-descendant;
* ``tjfast`` — leaf-streams-only matching over interned root tag paths;
  internal query nodes consume no input;
* ``pathstack`` — the one-sweep stack join for *linear* paths (rejects
  branching twigs via :meth:`supports`);
* ``structural`` — the pre-holistic pipeline of binary structural joins,
  kept as the foil with materialised per-edge pair lists;
* ``accel`` — the relational XPath accelerator: the twig lowered to
  edge relations over the region labels and evaluated by the encoded
  engine's join kernels (:mod:`repro.xml.accel`);
* ``naive`` — brute-force navigation, the correctness oracle.

``match_twig`` is the planned entry point: it asks the engine planner
(:func:`repro.engine.planner.choose_twig_algorithm`) to pick a matcher
from the document's cached :class:`~repro.xml.columnar.DocumentStats`
unless the caller names one explicitly.
"""

from __future__ import annotations

from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.xml.accel import AccelTwigAlgorithm
from repro.xml.interface import (
    get_twig_algorithm,
    register_twig_algorithm,
)
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.navigation import match_embeddings, match_relation
from repro.xml.pathstack import path_stack, path_stack_relation
from repro.xml.structural_join import (
    structural_join_embeddings,
    structural_join_pipeline,
)
from repro.xml.tjfast import tjfast, tjfast_embeddings
from repro.xml.twig import TwigQuery
from repro.xml.twigstack import twig_stack, twig_stack_embeddings


class TwigStackAlgorithm:
    """Holistic TwigStack (optimal for A-D-only twigs)."""

    name = "twigstack"
    optimal_for = "ancestor-descendant edges"

    def supports(self, twig: TwigQuery) -> bool:
        return True

    def embeddings(self, document: XMLDocument, twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> list[dict[str, XMLNode]]:
        return twig_stack_embeddings(document, twig, stats=stats)

    def run(self, document: XMLDocument, twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        return twig_stack(document, twig, name=name, stats=stats)


class TJFastAlgorithm:
    """TJFast over interned root tag paths (leaf streams only)."""

    name = "tjfast"
    optimal_for = "ancestor-descendant edges; reads only leaf streams"

    def supports(self, twig: TwigQuery) -> bool:
        return True

    def embeddings(self, document: XMLDocument, twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> list[dict[str, XMLNode]]:
        return tjfast_embeddings(document, twig, stats=stats)

    def run(self, document: XMLDocument, twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        return tjfast(document, twig, name=name, stats=stats)


class PathStackAlgorithm:
    """PathStack — linear paths only, one document-order sweep."""

    name = "pathstack"
    optimal_for = "linear paths (both axes)"

    def supports(self, twig: TwigQuery) -> bool:
        return all(len(q.children) <= 1 for q in twig.nodes())

    def embeddings(self, document: XMLDocument, twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> list[dict[str, XMLNode]]:
        names = [q.name for q in twig.nodes()]
        return [dict(zip(names, solution))
                for solution in path_stack(document, twig, stats=stats)]

    def run(self, document: XMLDocument, twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        result = path_stack_relation(document, twig, stats=stats)
        return result.with_name(name) if name else result


class StructuralJoinAlgorithm:
    """Binary structural-join pipeline (the pre-holistic foil)."""

    name = "structural"
    optimal_for = "nothing (per-edge pair lists can dwarf the answer)"

    def supports(self, twig: TwigQuery) -> bool:
        return True

    def embeddings(self, document: XMLDocument, twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> list[dict[str, XMLNode]]:
        return structural_join_embeddings(document, twig, stats=stats)

    def run(self, document: XMLDocument, twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        result = structural_join_pipeline(document, twig, stats=stats)
        return result.with_name(name) if name else result


class NaiveNavigationAlgorithm:
    """Brute-force navigation — the correctness oracle."""

    name = "naive"
    optimal_for = "nothing (oracle only)"

    def supports(self, twig: TwigQuery) -> bool:
        return True

    def embeddings(self, document: XMLDocument, twig: TwigQuery, *,
                   stats: JoinStats | None = None
                   ) -> list[dict[str, XMLNode]]:
        return match_embeddings(document, twig, stats=stats)

    def run(self, document: XMLDocument, twig: TwigQuery, *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        return match_relation(document, twig, name=name, stats=stats)


TWIGSTACK = register_twig_algorithm(TwigStackAlgorithm())
TJFAST = register_twig_algorithm(TJFastAlgorithm())
PATHSTACK = register_twig_algorithm(PathStackAlgorithm())
STRUCTURAL = register_twig_algorithm(StructuralJoinAlgorithm())
NAIVE = register_twig_algorithm(NaiveNavigationAlgorithm())
ACCEL = register_twig_algorithm(AccelTwigAlgorithm())


def match_twig(document: XMLDocument, twig: TwigQuery, *,
               algorithm: str | None = None,
               name: str | None = None,
               stats: JoinStats | None = None) -> Relation:
    """Evaluate one twig with the named (or planner-chosen) algorithm."""
    if algorithm is None:
        # Imported lazily: the planner imports this module's registry.
        from repro.engine.planner import choose_twig_algorithm

        algorithm = choose_twig_algorithm(document, twig)
    return get_twig_algorithm(algorithm).run(document, twig, name=name,
                                             stats=stats)
