"""Tag streams: document-ordered node cursors over :class:`XMLNode`s.

A :class:`TagStream` is a forward cursor over the nodes of one tag (in
document order, i.e. by ``start``). Streams are built per *query node*:
the twig node's tag selects the nodes and its value predicate pre-filters
them, mirroring how structural-join systems push selections into the input
streams.

The engine-path algorithms now run on the columnar posting cursors of
:class:`repro.xml.columnar.TagPosting` (shared int arrays, binary-search
seeks); ``TagStream`` remains the node-object cursor used by the
reference implementations (:mod:`repro.xml.reference`) that serve as the
benchmark baseline.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import TwigNode


class TagStream:
    """A forward cursor over document-ordered nodes."""

    __slots__ = ("nodes", "position", "label")

    def __init__(self, nodes: Sequence[XMLNode], label: str = ""):
        self.nodes = list(nodes)
        self.position = 0
        self.label = label

    @classmethod
    def for_query_node(cls, document: XMLDocument,
                       query_node: TwigNode) -> "TagStream":
        """The stream of candidate nodes for one twig query node."""
        nodes = [node for node in document.nodes(query_node.tag)
                 if query_node.matches_value(node.value)]
        return cls(nodes, label=query_node.name)

    def eof(self) -> bool:
        return self.position >= len(self.nodes)

    def head(self) -> XMLNode:
        """The current node; undefined at EOF."""
        return self.nodes[self.position]

    def advance(self) -> None:
        self.position += 1

    def reset(self) -> None:
        self.position = 0

    def remaining(self) -> int:
        return len(self.nodes) - self.position

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (f"TagStream({self.label!r}, {self.position}/"
                f"{len(self.nodes)})")
