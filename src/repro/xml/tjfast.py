"""TJFast-style twig matching on root tag paths (Lu et al. 2005).

TJFast reads only the streams of the twig's *leaf* query nodes. The
extended Dewey label of a leaf element encodes its entire root tag path,
so the root-to-leaf query path can be matched against the label alone;
the matched ancestor elements are then recovered from the Dewey prefixes.
Finally the per-leaf path solutions are merged exactly like TwigStack's
phase 2 (through the encoded engine).

Since the columnar refactor the label machinery is the document's
interned *path ids* (:class:`~repro.xml.columnar.ColumnarDocument`):
two leaves share a path id iff their root tag paths are equal, so the
query path is matched **once per distinct document path** instead of
once per leaf element, and ancestors are recovered by walking the
columnar ``parents`` array. This keeps the defining property of TJFast —
internal query nodes consume no input streams — while replacing the
per-element label decode with a per-path one. The original
extended-Dewey formulation survives in :mod:`repro.xml.dewey` (the label
scheme) and :mod:`repro.xml.reference` (the node-object matcher kept as
the benchmark baseline).
"""

from __future__ import annotations

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.columnar import columnar
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery
from repro.xml.twigstack import merge_path_solutions, solution_relation


def match_path_against_tags(path: list[TwigNode],
                            tags: "list[str] | tuple[str, ...]"
                            ) -> list[tuple[int, ...]]:
    """All assignments of query-path nodes to positions in a tag path.

    ``tags`` is the root-to-leaf tag path of a document node (decoded
    from its extended Dewey label, or interned as a columnar path id).
    The query leaf must map to the last position; the query root may map
    anywhere (twig matching is existential over the document). P-C edges
    force consecutive positions, A-D edges any forward gap. Returns
    position tuples aligned with *path*.
    """
    solutions: list[tuple[int, ...]] = []
    positions: list[int] = []
    last = len(tags) - 1

    def extend(query_index: int, from_position: int) -> None:
        query_node = path[query_index]
        is_last = query_index == len(path) - 1
        if query_index == 0:
            candidates = range(from_position, last + 1)
        elif query_node.axis is Axis.CHILD:
            candidates = range(from_position, from_position + 1)
        else:
            candidates = range(from_position, last + 1)
        for position in candidates:
            if position > last or tags[position] != query_node.tag:
                continue
            if is_last and position != last:
                continue
            positions.append(position)
            if is_last:
                solutions.append(tuple(positions))
            else:
                extend(query_index + 1, position + 1)
            positions.pop()

    extend(0, 0)
    return solutions


def tjfast_path_solutions(document: XMLDocument, twig: TwigQuery, *,
                          stats: JoinStats | None = None
                          ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """Per-leaf path solutions computed from leaf streams only."""
    stats = ensure_stats(stats)
    view = columnar(document)
    values = view.values
    nodes_of = view.nodes
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {}
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        internal = path[:-1]
        found: list[tuple[XMLNode, ...]] = []
        leaf_tid = view.tag_index.get(leaf.tag)
        for pid in view.pids_by_last_tag.get(leaf_tid, ()):  # type: ignore[arg-type]
            # One query-path match per *distinct* document tag path; all
            # nodes sharing the path id reuse the assignments.
            assignments = match_path_against_tags(path, view.paths[pid])
            if not assignments:
                continue
            for nid in view.nids_by_path[pid]:
                stats.count_seeks()
                if not leaf.matches_value(values[nid]):
                    continue
                ancestry = view.ancestry(nid)
                for assignment in assignments:
                    chain = [ancestry[position] for position in assignment]
                    if all(q.matches_value(values[i])
                           for q, i in zip(internal, chain)):
                        found.append(tuple(nodes_of[i] for i in chain))
                        stats.count_emitted()
        solutions[leaf.name] = found
        stats.record_stage(f"tjfast path solutions {leaf.name}", len(found))
    return solutions


def tjfast_embeddings(document: XMLDocument, twig: TwigQuery, *,
                      stats: JoinStats | None = None
                      ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* via TJFast."""
    solutions = tjfast_path_solutions(document, twig, stats=stats)
    return merge_path_solutions(twig, solutions, stats=stats)


def tjfast(document: XMLDocument, twig: TwigQuery, *,
           name: str | None = None,
           stats: JoinStats | None = None) -> Relation:
    """The twig's value-tuple answer computed by TJFast."""
    solutions = tjfast_path_solutions(document, twig, stats=stats)
    return solution_relation(document, twig, solutions, name=name,
                             stats=stats)
