"""TJFast-style twig matching on extended Dewey labels (Lu et al. 2005).

TJFast reads only the streams of the twig's *leaf* query nodes. The
extended Dewey label of a leaf element encodes its entire root tag path
(:class:`~repro.xml.dewey.ExtendedDeweyLabeler`), so the root-to-leaf
query path can be matched against the label alone; the matched ancestor
elements are then recovered from the Dewey prefixes. Finally the per-leaf
path solutions are merged exactly like TwigStack's phase 2.

This keeps the defining property of TJFast — internal query nodes consume
no input streams — while deriving the label alphabet from the document
instead of a DTD (see the module docstring of :mod:`repro.xml.dewey`).
"""

from __future__ import annotations

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.dewey import ExtendedDeweyLabeler
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery
from repro.xml.twigstack import merge_path_solutions


def match_path_against_tags(path: list[TwigNode],
                            tags: list[str]) -> list[tuple[int, ...]]:
    """All assignments of query-path nodes to positions in a tag path.

    ``tags`` is the root-to-leaf tag path of a document node (decoded from
    its extended Dewey label). The query leaf must map to the last
    position; the query root may map anywhere (twig matching is
    existential over the document). P-C edges force consecutive
    positions, A-D edges any forward gap. Returns position tuples aligned
    with *path*.
    """
    solutions: list[tuple[int, ...]] = []
    positions: list[int] = []
    last = len(tags) - 1

    def extend(query_index: int, from_position: int) -> None:
        query_node = path[query_index]
        is_last = query_index == len(path) - 1
        if query_index == 0:
            candidates = range(from_position, last + 1)
        elif query_node.axis is Axis.CHILD:
            candidates = range(from_position, from_position + 1)
        else:
            candidates = range(from_position, last + 1)
        for position in candidates:
            if position > last or tags[position] != query_node.tag:
                continue
            if is_last and position != last:
                continue
            positions.append(position)
            if is_last:
                solutions.append(tuple(positions))
            else:
                extend(query_index + 1, position + 1)
            positions.pop()

    extend(0, 0)
    return solutions


def tjfast_path_solutions(document: XMLDocument, twig: TwigQuery, *,
                          labeler: ExtendedDeweyLabeler | None = None,
                          stats: JoinStats | None = None
                          ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """Per-leaf path solutions computed from leaf streams only."""
    stats = ensure_stats(stats)
    if labeler is None:
        labeler = ExtendedDeweyLabeler(document)
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {}
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        found: list[tuple[XMLNode, ...]] = []
        for element, label in labeler.leaf_labels(leaf.tag):
            stats.count_seeks()
            if not leaf.matches_value(element.value):
                continue
            tags = labeler.decode(label)
            ancestry = element.path_from_root()
            for assignment in match_path_against_tags(path, tags):
                nodes = tuple(ancestry[position] for position in assignment)
                if all(q.matches_value(node.value)
                       for q, node in zip(path, nodes)):
                    found.append(nodes)
                    stats.count_emitted()
        solutions[leaf.name] = found
        stats.record_stage(f"tjfast path solutions {leaf.name}", len(found))
    return solutions


def tjfast_embeddings(document: XMLDocument, twig: TwigQuery, *,
                      stats: JoinStats | None = None
                      ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* via TJFast."""
    solutions = tjfast_path_solutions(document, twig, stats=stats)
    return merge_path_solutions(twig, solutions, stats=stats)


def tjfast(document: XMLDocument, twig: TwigQuery, *,
           name: str | None = None,
           stats: JoinStats | None = None) -> Relation:
    """The twig's value-tuple answer computed by TJFast."""
    embeddings = tjfast_embeddings(document, twig, stats=stats)
    attrs = twig.attributes
    rows = [tuple(embedding[a].value for a in attrs)
            for embedding in embeddings]
    return Relation(name or twig.name, attrs, rows)
