"""TwigStack (Bruno, Koudas, Srivastava 2002): holistic twig matching.

Phase 1 sweeps all query-node streams in document order, driven by
``getNext``, pushing only elements that (provably, for A-D edges) extend
to a full solution; complete root-to-leaf *path solutions* are expanded
whenever a leaf is pushed. Phase 2 merge-joins the per-leaf path-solution
lists on the shared branching query nodes.

TwigStack is worst-case optimal for ancestor-descendant-only twigs; with
parent-child edges it may produce useless path solutions — the classic
limitation the paper cites ("optimal match in twig ancestor-descendant
relationship but not in twig child-parent relationship").

The merge phase deliberately reuses the relational engine: path solutions
become relations over node identities (``start`` labels) and the merge is
a natural join. This mirrors the paper's theme of treating tree data
relationally.
"""

from __future__ import annotations

import math

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.operators import naive_multiway_join
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.pathstack import expand_chain
from repro.xml.streams import TagStream
from repro.xml.twig import TwigNode, TwigQuery

_INFINITY = math.inf


def _head_start(stream: TagStream) -> float:
    return _INFINITY if stream.eof() else stream.head().start  # type: ignore[return-value]


def _head_end(stream: TagStream) -> float:
    return _INFINITY if stream.eof() else stream.head().end  # type: ignore[return-value]


def twig_stack_path_solutions(document: XMLDocument, twig: TwigQuery, *,
                              stats: JoinStats | None = None
                              ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """Phase 1: per-leaf path solutions (node tuples, root first)."""
    stats = ensure_stats(stats)
    query_nodes = twig.nodes()
    streams = {q.name: TagStream.for_query_node(document, q)
               for q in query_nodes}
    stacks: dict[str, list[tuple[XMLNode, int]]] = {
        q.name: [] for q in query_nodes}
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {
        leaf.name: [] for leaf in twig.leaves()}
    paths = {leaf.name: twig.root_to_node_path(leaf.name)
             for leaf in twig.leaves()}

    def drained(query_node: TwigNode) -> bool:
        """All leaf streams in this query subtree are exhausted."""
        if query_node.is_leaf:
            return streams[query_node.name].eof()
        return all(drained(child) for child in query_node.children)

    def get_next(query_node: TwigNode) -> TwigNode:
        """The query node whose stream head should be processed next.

        Fully drained child subtrees are skipped for routing (they can
        produce no further path solutions) but still count for the
        extension check: once any child subtree is drained, new elements
        of *query_node* are useless and its own stream is skipped ahead.
        """
        if query_node.is_leaf:
            return query_node
        active = [child for child in query_node.children
                  if not drained(child)]
        for child in active:
            candidate = get_next(child)
            if candidate is not child:
                return candidate
        # Extension check over ALL children: a drained child contributes
        # +inf, draining this node's own stream (no new pushes possible).
        max_start = max(_head_start(streams[child.name])
                        for child in query_node.children)
        own = streams[query_node.name]
        while _head_end(own) < max_start:
            own.advance()
            stats.count_seeks()
        if not active:
            return query_node
        n_min = min(active,
                    key=lambda child: _head_start(streams[child.name]))
        if _head_start(own) < _head_start(streams[n_min.name]):
            return query_node
        return n_min

    while not drained(twig.root):
        acting = get_next(twig.root)
        stream = streams[acting.name]
        if stream.eof():
            break  # defensive: routing found no processable stream
        element = stream.head()
        stream.advance()

        def clean(stack: list[tuple[XMLNode, int]]) -> None:
            # Pop entries whose region ended before this element. Only the
            # acting node's and its parent's stacks are cleaned (branches
            # progress at different document positions, so cleaning *all*
            # stacks here would evict entries a lagging branch still
            # needs); expand_chain re-checks axes, so entries left stale
            # in other stacks can never produce wrong solutions.
            while stack and stack[-1][0].end < element.start:
                stack.pop()

        parent = acting.parent
        if parent is not None:
            clean(stacks[parent.name])
        clean(stacks[acting.name])
        if parent is not None and not stacks[parent.name]:
            stats.count_filtered()
            continue
        pointer = len(stacks[parent.name]) - 1 if parent is not None else -1
        stacks[acting.name].append((element, pointer))
        if acting.is_leaf:
            path = paths[acting.name]
            solutions[acting.name].extend(
                expand_chain(path, stacks, element, pointer, stats=stats))
            stacks[acting.name].pop()

    for leaf_name, tuples in solutions.items():
        stats.record_stage(f"path solutions {leaf_name}", len(tuples))
    return solutions


def merge_path_solutions(twig: TwigQuery,
                         solutions: dict[str, list[tuple[XMLNode, ...]]], *,
                         stats: JoinStats | None = None
                         ) -> list[dict[str, XMLNode]]:
    """Phase 2: join per-leaf path solutions into full twig embeddings."""
    stats = ensure_stats(stats)
    by_start: dict[int, XMLNode] = {}
    relations: list[Relation] = []
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        attrs = tuple(q.name for q in path)
        rows = []
        for solution in solutions.get(leaf.name, ()):
            for node in solution:
                by_start[node.start] = node  # type: ignore[index]
            rows.append(tuple(node.start for node in solution))
        relations.append(Relation(f"path:{leaf.name}", attrs, rows))

    joined = naive_multiway_join(relations, name="twig")
    stats.record_stage("merged embeddings", len(joined))
    attrs = joined.schema.attributes
    return [
        {name: by_start[start] for name, start in zip(attrs, row)}
        for row in joined.rows
    ]


def twig_stack_embeddings(document: XMLDocument, twig: TwigQuery, *,
                          stats: JoinStats | None = None
                          ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* via TwigStack (phases 1 + 2)."""
    solutions = twig_stack_path_solutions(document, twig, stats=stats)
    return merge_path_solutions(twig, solutions, stats=stats)


def twig_stack(document: XMLDocument, twig: TwigQuery, *,
               name: str | None = None,
               stats: JoinStats | None = None) -> Relation:
    """The twig's value-tuple answer computed by TwigStack."""
    embeddings = twig_stack_embeddings(document, twig, stats=stats)
    attrs = twig.attributes
    rows = [tuple(embedding[a].value for a in attrs)
            for embedding in embeddings]
    return Relation(name or twig.name, attrs, rows)
