"""TwigStack (Bruno, Koudas, Srivastava 2002): holistic twig matching.

Phase 1 sweeps all query-node streams in document order, driven by
``getNext``, pushing only elements that (provably, for A-D edges) extend
to a full solution; complete root-to-leaf *path solutions* are expanded
whenever a leaf is pushed. Phase 2 merge-joins the per-leaf path-solution
lists on the shared branching query nodes.

TwigStack is worst-case optimal for ancestor-descendant-only twigs; with
parent-child edges it may produce useless path solutions — the classic
limitation the paper cites ("optimal match in twig ancestor-descendant
relationship but not in twig child-parent relationship").

Since the columnar refactor phase 1 runs on
:class:`~repro.xml.columnar.ColumnarDocument` postings (stacks of dense
int node ids, int-array region checks), and phase 2 runs through the
dictionary-encoded engine: path solutions become relations over node
identities (``start`` labels) and the merge is the registered
``generic_join`` operator, so merge stats land in the same
:class:`~repro.instrumentation.JoinStats` contract as relational joins.
This mirrors the paper's theme of treating tree data relationally. The
pre-columnar node-object implementation survives in
:mod:`repro.xml.reference` as the benchmark baseline.
"""

from __future__ import annotations

import math

from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.columnar import columnar
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.pathstack import expand_chain
from repro.xml.twig import TwigQuery

_INFINITY = math.inf


def twig_stack_path_solutions(document: XMLDocument, twig: TwigQuery, *,
                              stats: JoinStats | None = None
                              ) -> dict[str, list[tuple[XMLNode, ...]]]:
    """Phase 1: per-leaf path solutions (node tuples, root first).

    Query nodes are flattened to pre-order indexes and the stream heads
    are cached in flat ``head_start``/``head_end`` arrays, so the
    ``getNext`` routing — the sweep's hot path — compares plain list
    entries instead of calling cursor methods.
    """
    stats = ensure_stats(stats)
    view = columnar(document)
    nodes_of = view.nodes
    ends = view.ends
    query_nodes = twig.nodes()  # pre-order: index 0 is the root
    n = len(query_nodes)
    index_of = {q.name: i for i, q in enumerate(query_nodes)}
    children = [[index_of[c.name] for c in q.children] for q in query_nodes]
    parent = [index_of[q.parent.name] if q.parent is not None else -1
              for q in query_nodes]
    #: leaves_of[i] = leaf indexes in i's query subtree (drained checks).
    leaves_of: list[list[int]] = [[] for _ in range(n)]
    for i, q in enumerate(query_nodes):
        if not q.children:
            j = i
            while j >= 0:
                leaves_of[j].append(i)
                j = parent[j]

    postings = [view.stream(q) for q in query_nodes]
    s_nids = [p.nids for p in postings]
    s_starts = [p.starts for p in postings]
    s_ends = [p.ends for p in postings]
    size = [len(p) for p in postings]
    pos = [0] * n
    head_start: list[float] = [
        s_starts[i][0] if size[i] else _INFINITY for i in range(n)]
    head_end: list[float] = [
        s_ends[i][0] if size[i] else _INFINITY for i in range(n)]
    eof = [size[i] == 0 for i in range(n)]

    stacks: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    # expand_chain addresses stacks by query-node name; the dict shares
    # the same mutable list objects as the indexed view above.
    stacks_by_name = {q.name: stacks[i] for i, q in enumerate(query_nodes)}
    solutions: dict[str, list[tuple[XMLNode, ...]]] = {
        leaf.name: [] for leaf in twig.leaves()}
    paths = {index_of[leaf.name]: twig.root_to_node_path(leaf.name)
             for leaf in twig.leaves()}
    seeks = 0  # flushed in one bulk count; a call per probe is hot
    filtered = 0

    def advance(i: int) -> None:
        p = pos[i] + 1
        pos[i] = p
        if p >= size[i]:
            eof[i] = True
            head_start[i] = head_end[i] = _INFINITY
        else:
            head_start[i] = s_starts[i][p]
            head_end[i] = s_ends[i][p]

    def drained(i: int) -> bool:
        """All leaf streams in this query subtree are exhausted."""
        for leaf in leaves_of[i]:
            if not eof[leaf]:
                return False
        return True

    def get_next(i: int) -> int:
        """The query node whose stream head should be processed next.

        Fully drained child subtrees are skipped for routing (they can
        produce no further path solutions) but still count for the
        extension check: once any child subtree is drained, new elements
        of *i* are useless and its own stream is skipped ahead.
        """
        nonlocal seeks
        kids = children[i]
        if not kids:
            return i
        if len(kids) == 1:
            # Chain segment: no list building, no min/max over one entry.
            c = kids[0]
            if not drained(c):
                candidate = get_next(c)
                if candidate != c:
                    return candidate
            child_start = head_start[c]  # +inf once drained
            while head_end[i] < child_start:
                advance(i)
                seeks += 1
            if drained(c) or head_start[i] < child_start:
                return i
            return c
        active = [c for c in kids if not drained(c)]
        for c in active:
            candidate = get_next(c)
            if candidate != c:
                return candidate
        # Extension check over ALL children: a drained child contributes
        # +inf, draining this node's own stream (no new pushes possible).
        max_start = max(head_start[c] for c in kids)
        while head_end[i] < max_start:
            advance(i)
            seeks += 1
        if not active:
            return i
        n_min = min(active, key=head_start.__getitem__)
        if head_start[i] < head_start[n_min]:
            return i
        return n_min

    while not drained(0):
        acting = get_next(0)
        if eof[acting]:
            break  # defensive: routing found no processable stream
        p = pos[acting]
        nid = s_nids[acting][p]
        start = s_starts[acting][p]
        advance(acting)

        # Pop entries whose region ended before this element. Only the
        # acting node's and its parent's stacks are cleaned (branches
        # progress at different document positions, so cleaning *all*
        # stacks here would evict entries a lagging branch still
        # needs); expand_chain re-checks axes, so entries left stale
        # in other stacks can never produce wrong solutions.
        par = parent[acting]
        if par >= 0:
            stack = stacks[par]
            while stack and ends[stack[-1][0]] < start:
                stack.pop()
        stack = stacks[acting]
        while stack and ends[stack[-1][0]] < start:
            stack.pop()
        if par >= 0 and not stacks[par]:
            filtered += 1
            continue
        pointer = len(stacks[par]) - 1 if par >= 0 else -1
        stack.append((nid, pointer))
        if acting in paths:  # leaves never stay on a stack
            found = solutions[query_nodes[acting].name]
            for chain in expand_chain(paths[acting], stacks_by_name, view,
                                      nid, pointer, stats=stats):
                found.append(tuple(nodes_of[i] for i in chain))
            stack.pop()

    stats.count_seeks(seeks)
    stats.count_filtered(filtered)
    for leaf_name, tuples in solutions.items():
        stats.record_stage(f"path solutions {leaf_name}", len(tuples))
    return solutions


def merged_solution_relation(twig: TwigQuery,
                             solutions: dict[str,
                                             list[tuple[XMLNode, ...]]], *,
                             stats: JoinStats | None = None) -> Relation:
    """Phase 2 core: join the per-leaf path solutions on node identities.

    The merge runs through the encoded engine: one relation of node
    identities (``start`` labels) per leaf path, dictionary-encoded
    once, joined by the registered ``generic_join`` operator. Per-level
    stage sizes, seeks and emit counts therefore land in *stats* under
    the same contract as every relational join in the library. The
    result's rows are start labels over all twig attributes.
    """
    stats = ensure_stats(stats)
    relations: list[Relation] = []
    for leaf in twig.leaves():
        path = twig.root_to_node_path(leaf.name)
        attrs = tuple(q.name for q in path)
        rows = [tuple(node.start for node in solution)
                for solution in solutions.get(leaf.name, ())]
        relations.append(Relation(f"path:{leaf.name}", attrs, rows))

    if len(relations) == 1:
        # A linear twig has a single root-leaf path: there is nothing to
        # merge, and the path relation (already distinct) is the answer.
        joined = relations[0]
    else:
        instance = EncodedInstance.from_relations(relations,
                                                  name=f"twig:{twig.name}")
        joined = get_algorithm("generic_join").run(instance, stats=stats)
    stats.record_stage("merged embeddings", len(joined))
    return joined


def merge_path_solutions(twig: TwigQuery,
                         solutions: dict[str, list[tuple[XMLNode, ...]]], *,
                         stats: JoinStats | None = None
                         ) -> list[dict[str, XMLNode]]:
    """Phase 2: join per-leaf path solutions into full twig embeddings."""
    by_start: dict[int, XMLNode] = {
        node.start: node  # type: ignore[dict-item]
        for tuples in solutions.values()
        for solution in tuples for node in solution}
    joined = merged_solution_relation(twig, solutions, stats=stats)
    attrs = joined.schema.attributes
    return [
        {name: by_start[start] for name, start in zip(attrs, row)}
        for row in joined.rows
    ]


def twig_stack_embeddings(document: XMLDocument, twig: TwigQuery, *,
                          stats: JoinStats | None = None
                          ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* via TwigStack (phases 1 + 2)."""
    solutions = twig_stack_path_solutions(document, twig, stats=stats)
    return merge_path_solutions(twig, solutions, stats=stats)


def solution_relation(document: XMLDocument, twig: TwigQuery,
                      solutions: dict[str, list[tuple[XMLNode, ...]]], *,
                      name: str | None = None,
                      stats: JoinStats | None = None) -> Relation:
    """Merge *solutions* and decode value rows from the columnar arrays.

    Shared by TwigStack and TJFast: the start-label rows of the merged
    relation decode through the document's pre-parsed value column —
    no ``XMLNode.value`` re-parse per result cell.
    """
    view = columnar(document)
    values = view.values
    nid_index = view.nid_index
    joined = merged_solution_relation(twig, solutions, stats=stats)
    attrs = twig.attributes
    positions = [joined.schema.attributes.index(a) for a in attrs]
    rows = [tuple(values[nid_index[row[p]]] for p in positions)
            for row in joined.rows]
    return Relation(name or twig.name, attrs, rows)


def twig_stack(document: XMLDocument, twig: TwigQuery, *,
               name: str | None = None,
               stats: JoinStats | None = None) -> Relation:
    """The twig's value-tuple answer computed by TwigStack."""
    solutions = twig_stack_path_solutions(document, twig, stats=stats)
    return solution_relation(document, twig, solutions, name=name,
                             stats=stats)
