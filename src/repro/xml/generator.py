"""Synthetic XML document generators.

Random trees for property tests plus shaped generators (deep chains, wide
stars) used by the twig-algorithm benchmarks. The adversarial documents
of the paper's evaluation live in :mod:`repro.data.synthetic`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.xml.model import XMLDocument, XMLNode


def random_document(rng: random.Random, *,
                    tags: Sequence[str] = ("a", "b", "c", "d"),
                    max_nodes: int = 40,
                    max_children: int = 4,
                    max_depth: int = 6,
                    value_range: int = 5,
                    root_tag: str | None = None) -> XMLDocument:
    """A random tree: random tags, random small integer values.

    Sized by *max_nodes*; shape controlled by *max_children*/*max_depth*.
    Deterministic given the :class:`random.Random` instance.
    """
    budget = rng.randint(1, max_nodes)
    root = XMLNode(root_tag or rng.choice(tags),
                   text=str(rng.randint(0, value_range)))
    budget -= 1
    frontier = [(root, 1)]
    while budget > 0 and frontier:
        index = rng.randrange(len(frontier))
        node, depth = frontier[index]
        if depth >= max_depth or len(node.children) >= max_children:
            frontier.pop(index)
            continue
        child = node.add(rng.choice(tags),
                         text=str(rng.randint(0, value_range)))
        budget -= 1
        frontier.append((child, depth + 1))
    return XMLDocument(root)


def chain_document(depth: int, *, tags: Sequence[str] = ("a", "b"),
                   root_tag: str = "root") -> XMLDocument:
    """A single path of *depth* nodes cycling through *tags*.

    Worst case for stack-based algorithms: every node nests in every
    previous one, so stacks grow to the full depth.
    """
    root = XMLNode(root_tag, text="0")
    node = root
    for index in range(depth):
        node = node.add(tags[index % len(tags)], text=str(index))
    return XMLDocument(root)


def star_document(fanout: int, *, child_tag: str = "item",
                  root_tag: str = "root") -> XMLDocument:
    """A root with *fanout* children — the flat/wide extreme."""
    root = XMLNode(root_tag, text="")
    for index in range(fanout):
        root.add(child_tag, text=str(index))
    return XMLDocument(root)


def layered_document(layers: Sequence[tuple[str, int]], *,
                     root_tag: str = "root",
                     value_of: "callable | None" = None) -> XMLDocument:
    """A balanced tree: layer i has the given tag, each node of layer i-1
    getting ``count`` children of layer i. Values default to a per-layer
    running counter.

    >>> doc = layered_document([("a", 2), ("b", 3)])
    >>> doc.tag_count("a"), doc.tag_count("b")
    (2, 6)
    """
    root = XMLNode(root_tag, text="")
    current = [root]
    counters = {tag: 0 for tag, _ in layers}
    for tag, count in layers:
        next_layer = []
        for parent in current:
            for _ in range(count):
                value = counters[tag]
                counters[tag] += 1
                text = str(value if value_of is None else value_of(tag, value))
                next_layer.append(parent.add(tag, text=text))
        current = next_layer
    return XMLDocument(root)
