"""Columnar document store: the XML side of the encoded engine.

A :class:`ColumnarDocument` is built **once** per document (and cached
weakref-style, like the engine's relation statistics) and holds the whole
tree as parallel typed buffers over dense int node ids — ``starts``,
``ends``, ``levels``, ``parents``, ``tag_ids``, pre-parsed typed
``values``, Dewey labels, and per-tag postings sorted by document order.
The int columns are packed through :func:`repro.buffers.layout.pack`
into the narrowest ``array`` typecode their label range needs (signed
for ``parents``, whose root entry is -1), so a document's index is
contiguous memory the batch kernels gallop over and the shared-memory
transport publishes verbatim. Every twig algorithm (TwigStack, TJFast,
PathStack, the structural-join pipeline) and XJoin's path-relation
gathering run on these buffers: the hot loops compare plain ints instead
of chasing :class:`~repro.xml.model.XMLNode` attributes, streams share
the per-tag posting buffers instead of copying node lists per query, and
seeks are galloping probes.

Views are **never pickled** (``__reduce__`` raises): the parallel
transports either fork the address space or publish the buffers once
through :mod:`repro.parallel.shm` and let workers attach zero-copy.

The root-to-node *tag paths* are interned as dense path ids (the columnar
analogue of TJFast's extended Dewey labels): two nodes share a path id
iff their root tag paths are equal, so path-pattern matching runs once
per distinct document path instead of once per node.

:class:`DocumentStats` summarises a document for the planner — tag
counts, distinct-path cardinalities, depth and fan-out — from the same
arrays, through the same weakref cache discipline as
:func:`repro.engine.planner.cached_relation_stats`.
"""

from __future__ import annotations

import weakref
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.buffers.kernels import gallop
from repro.buffers.layout import pack
from repro.relational.schema import Value
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import TwigNode


class TagPosting:
    """A forward cursor over one sorted posting (document order).

    The columnar replacement for :class:`~repro.xml.streams.TagStream`:
    parallel ``nids``/``starts``/``ends`` arrays, shared with the
    document when the query node has no value predicate (no per-query
    copy), with binary-search :meth:`seek_start` instead of linear
    advances where the algorithm allows skipping.
    """

    __slots__ = ("nids", "starts", "ends", "position", "label")

    def __init__(self, nids: Sequence[int], starts: Sequence[int],
                 ends: Sequence[int], label: str = ""):
        self.nids = nids
        self.starts = starts
        self.ends = ends
        self.position = 0
        self.label = label

    def eof(self) -> bool:
        return self.position >= len(self.nids)

    def head_nid(self) -> int:
        """The current node id; undefined at EOF."""
        return self.nids[self.position]

    def head_start(self) -> int:
        return self.starts[self.position]

    def head_end(self) -> int:
        return self.ends[self.position]

    def advance(self) -> None:
        self.position += 1

    def seek_start(self, start: int) -> int:
        """Jump to the first entry with ``start >= start`` (galloping
        from the cursor); returns the number of entries skipped."""
        position = gallop(self.starts, start, self.position)
        skipped = position - self.position
        self.position = position
        return skipped

    def reset(self) -> None:
        self.position = 0

    def remaining(self) -> int:
        return len(self.nids) - self.position

    def __len__(self) -> int:
        return len(self.nids)

    def __repr__(self) -> str:
        return (f"TagPosting({self.label!r}, {self.position}/"
                f"{len(self.nids)})")


class ColumnarDocument:
    """One document as parallel arrays over dense int node ids.

    Node ids are pre-order (= document-order) indexes ``0..size-1``.
    ``parents[nid]`` is the parent's node id (-1 for the root);
    ``path_ids[nid]`` interns the root-to-node tag path. Per-tag postings
    (``tag_nids``/``tag_starts``/``tag_ends``) are parallel lists sorted
    by ``start`` — pre-order construction yields them sorted for free.
    """

    # No back-reference to the XMLDocument: the weakref-evicting cache
    # below relies on the view not pinning the document it was built
    # from (the node list keeps the *tree* alive, which dies with the
    # evicted view).
    __slots__ = ("size", "nodes", "starts", "ends", "levels",
                 "parents", "tag_ids", "values", "deweys", "path_ids",
                 "tags", "tag_index", "paths", "path_table", "tag_nids",
                 "tag_starts", "tag_ends", "nids_by_path",
                 "pids_by_last_tag", "nid_index")

    def __init__(self, document: XMLDocument):
        root = document.root
        assert root.start is not None, "document must be indexed"
        nodes: list[XMLNode] = []
        starts: list[int] = []
        ends: list[int] = []
        levels: list[int] = []
        parents: list[int] = []
        tag_ids: list[int] = []
        values: list[Value | None] = []
        deweys: list[tuple[int, ...]] = []
        path_ids: list[int] = []
        tags: list[str] = []
        tag_index: dict[str, int] = {}
        paths: list[tuple[str, ...]] = []
        # (parent path id, tag id) -> path id: interning makes path-level
        # work (TJFast, DocumentStats) linear in *distinct* paths.
        path_table: dict[tuple[int, int], int] = {}

        stack: list[tuple[XMLNode, int]] = [(root, -1)]
        while stack:
            node, parent_nid = stack.pop()
            nid = len(nodes)
            nodes.append(node)
            starts.append(node.start)  # type: ignore[arg-type]
            ends.append(node.end)  # type: ignore[arg-type]
            levels.append(node.level)  # type: ignore[arg-type]
            parents.append(parent_nid)
            tid = tag_index.get(node.tag)
            if tid is None:
                tid = tag_index[node.tag] = len(tags)
                tags.append(node.tag)
            tag_ids.append(tid)
            values.append(node.value)  # typed text, parsed exactly once
            deweys.append(node.dewey or ())
            parent_pid = path_ids[parent_nid] if parent_nid >= 0 else -1
            key = (parent_pid, tid)
            pid = path_table.get(key)
            if pid is None:
                pid = path_table[key] = len(paths)
                prefix = paths[parent_pid] if parent_pid >= 0 else ()
                paths.append(prefix + (node.tag,))
            path_ids.append(pid)
            for child in reversed(node.children):
                stack.append((child, nid))

        self.size = len(nodes)
        self.nodes = nodes
        # ends[0] (the root's end) bounds every region label, so the
        # packers skip their scan; parents packs signed (root is -1).
        label_hi = ends[0] if ends else 0
        self.starts = pack(starts, hi=label_hi)
        self.ends = pack(ends, hi=label_hi)
        self.levels = pack(levels)
        self.parents = pack(parents)
        self.tag_ids = pack(tag_ids, hi=max(len(tags) - 1, 0))
        self.values = values
        self.deweys = deweys
        self.path_ids = pack(path_ids, hi=max(len(paths) - 1, 0))
        self.tags = tags
        self.tag_index = tag_index
        self.paths = paths
        # Kept for the update layer: interning new paths during a delta
        # patch (repro.updates.documents) without re-deriving the table.
        self.path_table = path_table

        tag_nids: list[list[int]] = [[] for _ in tags]
        tag_starts: list[list[int]] = [[] for _ in tags]
        tag_ends: list[list[int]] = [[] for _ in tags]
        nids_by_path: list[list[int]] = [[] for _ in paths]
        for nid, tid in enumerate(tag_ids):
            tag_nids[tid].append(nid)
            tag_starts[tid].append(starts[nid])
            tag_ends[tid].append(ends[nid])
            nids_by_path[path_ids[nid]].append(nid)
        nid_hi = max(self.size - 1, 0)
        self.tag_nids = [pack(n, hi=nid_hi) for n in tag_nids]
        self.tag_starts = [pack(s, hi=label_hi) for s in tag_starts]
        self.tag_ends = [pack(e, hi=label_hi) for e in tag_ends]
        self.nids_by_path = [pack(n, hi=nid_hi) for n in nids_by_path]
        pids_by_last_tag: dict[int, list[int]] = {}
        for (_parent_pid, tid), pid in path_table.items():
            pids_by_last_tag.setdefault(tid, []).append(pid)
        self.pids_by_last_tag = pids_by_last_tag
        #: start label -> node id (starts identify nodes uniquely).
        self.nid_index: dict[int, int] = {
            start: nid for nid, start in enumerate(starts)}

    @classmethod
    def from_arena(cls, arena) -> "ColumnarDocument":
        """A read-only view over a published arena (shm or mmap file).

        *arena* is anything exposing ``buffer(name)`` + ``meta`` with
        the document buffer layout — a
        :class:`~repro.buffers.shm.SharedArena` segment or a
        file-backed :class:`~repro.buffers.mmapfile.FileArena` written
        by the streaming builder (:mod:`repro.xml.streaming`). Columns
        are zero-copy casts; nodes, the nid index and (for streamed
        arenas) values are lazy adapters, so attachment is O(1) in
        document size. See :mod:`repro.xml.arenaview`.
        """
        from repro.xml.arenaview import view_from_arena

        return view_from_arena(arena)

    # -- lookups -----------------------------------------------------------

    def nid_of(self, node: XMLNode) -> int:
        """The dense id of a node of this document."""
        assert node.start is not None, "node has no region label"
        return self.nid_index[node.start]

    def nid_by_start(self, start: int) -> int | None:
        return self.nid_index.get(start)

    def postings(self, tag: str) -> tuple[Sequence[int], Sequence[int],
                                          Sequence[int]]:
        """(nids, starts, ends) of *tag*, document order; empty if absent."""
        tid = self.tag_index.get(tag)
        if tid is None:
            return (), (), ()
        return self.tag_nids[tid], self.tag_starts[tid], self.tag_ends[tid]

    def stream(self, query_node: TwigNode) -> TagPosting:
        """The posting cursor for one twig query node.

        Without a value predicate the cursor shares the document's
        posting arrays (zero copying); with one, filtered parallel
        arrays are built for this query.
        """
        nids, starts, ends = self.postings(query_node.tag)
        if query_node.predicate is not None and len(nids):
            values = self.values
            keep = [i for i, nid in enumerate(nids)
                    if query_node.matches_value(values[nid])]
            nids = pack([nids[i] for i in keep])
            starts = pack([starts[i] for i in keep])
            ends = pack([ends[i] for i in keep])
        return TagPosting(nids, starts, ends, label=query_node.name)

    def ancestry(self, nid: int) -> list[int]:
        """Node ids from the root down to (and including) *nid*."""
        parents = self.parents
        chain = [nid]
        while (nid := parents[nid]) >= 0:
            chain.append(nid)
        chain.reverse()
        return chain

    def distinct_value_count(self, query_node: TwigNode) -> int:
        """Distinct typed values among the query node's candidates."""
        tid = self.tag_index.get(query_node.tag)
        if tid is None:
            return 0
        values = self.values
        if query_node.predicate is None:
            seen = {values[nid] for nid in self.tag_nids[tid]}
        else:
            seen = {values[nid] for nid in self.tag_nids[tid]
                    if query_node.matches_value(values[nid])}
        return len(seen)

    def __reduce__(self):
        """Columnar views are structurally unpicklable (zero-copy rule).

        Parallel transports must either fork the address space or
        publish the buffers once via :mod:`repro.parallel.shm` and
        attach in the worker; serializing a whole view per worker is
        exactly the cost the buffer layer exists to eliminate, so it
        fails loudly instead of silently regressing.
        """
        raise TypeError(
            f"{type(self).__name__} is never pickled: publish it through "
            f"repro.parallel.shm (workers attach zero-copy) or use the "
            f"'fork' transport")

    def __repr__(self) -> str:
        return (f"ColumnarDocument({self.size} nodes, {len(self.tags)} "
                f"tags, {len(self.paths)} paths)")


# ---------------------------------------------------------------------------
# weakref-cached accessors (one build per live document version)
# ---------------------------------------------------------------------------

#: (id(document), document.version) -> (weakref, cached value). Keying on
#: the reindex version (not just the id) guarantees a stale view can never
#: be returned for a document object that was mutated and reindexed: the
#: lookup key itself changes with every version bump. ``_LATEST`` tracks
#: the version cached per id so superseded entries are dropped eagerly
#: (one live entry per document per cache) and the eviction callback can
#: clear both maps when the document is collected.
_COLUMNAR_CACHE: "dict[tuple[int, int], tuple[weakref.ref, ColumnarDocument]]" = {}
_COLUMNAR_LATEST: "dict[int, int]" = {}
_STATS_CACHE: "dict[tuple[int, int], tuple[weakref.ref, DocumentStats]]" = {}
_STATS_LATEST: "dict[int, int]" = {}

#: (id(document), version) -> pin count. A pinned entry survives both
#: the eager supersede-eviction in :func:`_install` and an explicit
#: :func:`invalidate_document_caches`; it is purged when the last pin is
#: released (the MVCC watermark advancing past it). Only *frozen*
#: documents — the snapshot layer's clones, which no editor will ever
#: patch — may be pinned: a live document's superseded entry aliases the
#: in-place-mutated view and MUST stay eagerly evicted.
_PINNED_VERSIONS: "dict[tuple[int, int], int]" = {}


def pin_document_version(document: XMLDocument,
                         version: int | None = None) -> None:
    """Keep *document*'s cache entries at *version* (default: current)
    resident across supersession and explicit invalidation.

    Pin only frozen documents (see :data:`_PINNED_VERSIONS`); the MVCC
    layer (:mod:`repro.mvcc`) pins each retained clone exactly once.
    """
    key = (id(document), document.version if version is None else version)
    _PINNED_VERSIONS[key] = _PINNED_VERSIONS.get(key, 0) + 1


def release_document_version(document: XMLDocument,
                             version: int | None = None) -> None:
    """Drop one pin; at zero pins a *superseded* entry is purged.

    An entry still at the document's cached latest version stays under
    the normal weakref discipline — only entries that outlived their
    version solely because of the pin are reclaimed here. Unbalanced
    releases are ignored (idempotent teardown).
    """
    key = (id(document), document.version if version is None else version)
    count = _PINNED_VERSIONS.get(key)
    if count is None:
        return
    if count > 1:
        _PINNED_VERSIONS[key] = count - 1
        return
    del _PINNED_VERSIONS[key]
    for cache, latest in ((_COLUMNAR_CACHE, _COLUMNAR_LATEST),
                          (_STATS_CACHE, _STATS_LATEST)):
        if latest.get(key[0]) != key[1]:
            cache.pop(key, None)


def _install(document: XMLDocument, cache: dict, latest: dict, value):
    ident = id(document)
    version = getattr(document, "version", 0)
    previous = latest.get(ident)
    if previous is not None and previous != version \
            and (ident, previous) not in _PINNED_VERSIONS:
        cache.pop((ident, previous), None)
    key = (ident, version)

    # The maps are bound as defaults so eviction still works during
    # interpreter shutdown, when module globals may already be None.
    def evict(_ref: weakref.ref, key: "tuple[int, int]" = key,
              cache: dict = cache, latest: dict = latest) -> None:
        cache.pop(key, None)
        if latest.get(key[0]) == key[1]:
            latest.pop(key[0], None)

    cache[key] = (weakref.ref(document, evict), value)
    latest[ident] = version
    return value


def _cached_per_document(document: XMLDocument, cache: dict, latest: dict,
                         build):
    key = (id(document), getattr(document, "version", 0))
    entry = cache.get(key)
    if entry is not None and entry[0]() is document:
        return entry[1]
    return _install(document, cache, latest, build(document))


def columnar(document: XMLDocument) -> ColumnarDocument:
    """The (memoised) columnar view of *document*."""
    return _cached_per_document(document, _COLUMNAR_CACHE, _COLUMNAR_LATEST,
                                ColumnarDocument)


def install_columnar(document: XMLDocument,
                     view: ColumnarDocument) -> ColumnarDocument:
    """Install a delta-maintained view for *document*'s current version.

    The update layer (:mod:`repro.updates.documents`) patches the view in
    place, bumps the document version, and installs the result here so
    every twig algorithm and XJoin's path gathering read the refreshed
    arrays without a rebuild.
    """
    return _install(document, _COLUMNAR_CACHE, _COLUMNAR_LATEST, view)


@dataclass(frozen=True)
class DocumentStats:
    """Planner-facing summary of one document.

    ``path_counts`` maps each distinct root tag path to its node count —
    the cardinality source for path-relation estimates: the number of
    document chains matching a P-C tag chain is the sum over paths
    ending in that chain (an upper bound on the distinct value tuples
    the decomposed path relation holds).
    """

    size: int
    depth: int
    tag_counts: Mapping[str, int]
    path_counts: Mapping[tuple[str, ...], int]
    max_fanout: int

    @property
    def distinct_paths(self) -> int:
        return len(self.path_counts)

    def tag_count(self, tag: str) -> int:
        return self.tag_counts.get(tag, 0)

    def chain_count(self, tags: Sequence[str]) -> int:
        """Number of node chains matching the consecutive P-C tag chain."""
        suffix = tuple(tags)
        k = len(suffix)
        if k == 0:
            return 0
        return sum(count for path, count in self.path_counts.items()
                   if len(path) >= k and path[-k:] == suffix)


def stats_from_view(view: ColumnarDocument) -> DocumentStats:
    """:class:`DocumentStats` derived from a (possibly delta-maintained)
    columnar view. Tags and paths whose postings emptied out under
    deletions are filtered, so the summary always equals one computed
    from scratch on the current tree."""
    tag_counts = {tag: len(view.tag_nids[tid])
                  for tag, tid in view.tag_index.items()
                  if view.tag_nids[tid]}
    path_counts = {view.paths[pid]: len(nids)
                   for pid, nids in enumerate(view.nids_by_path) if nids}
    children = [0] * view.size
    for parent in view.parents:
        if parent >= 0:
            children[parent] += 1
    return DocumentStats(
        size=view.size,
        depth=max(view.levels) if view.levels else 0,
        tag_counts=tag_counts,
        path_counts=path_counts,
        max_fanout=max(children) if children else 0,
    )


def document_stats(document: XMLDocument) -> DocumentStats:
    """The (memoised) :class:`DocumentStats` of *document*."""
    return _cached_per_document(
        document, _STATS_CACHE, _STATS_LATEST,
        lambda doc: stats_from_view(columnar(doc)))


def install_document_stats(document: XMLDocument,
                           stats: DocumentStats) -> DocumentStats:
    """Install delta-maintained stats for *document*'s current version."""
    return _install(document, _STATS_CACHE, _STATS_LATEST, stats)


def invalidate_document_caches(document: XMLDocument) -> None:
    """Explicitly drop *document*'s cached view and statistics.

    The update layer calls this on its rebuild fallback instead of
    relying solely on weakref death (or on the version-keyed lookup
    missing) to release superseded entries. Pinned entries (see
    :func:`pin_document_version`) survive: they are reclaimed when the
    last pin is released, not before — closing the read-after-evict
    window where a snapshot still pinning the version would otherwise
    pay a rebuild against a reclaimed (or, worse, reassigned) entry.
    """
    ident = id(document)
    for cache, latest in ((_COLUMNAR_CACHE, _COLUMNAR_LATEST),
                          (_STATS_CACHE, _STATS_LATEST)):
        version = latest.get(ident)
        if version is None:
            continue
        if (ident, version) in _PINNED_VERSIONS:
            continue
        del latest[ident]
        cache.pop((ident, version), None)
