"""Twig pattern queries over XML documents.

A twig is a small tree of :class:`TwigNode` query nodes. Each edge carries
an :class:`Axis`: ``CHILD`` (parent-child, ``/``) or ``DESCENDANT``
(ancestor-descendant, ``//``). Following the paper, every twig node has a
*name* — the join attribute it binds — and a *tag* it matches in the
document (they coincide by default). An optional value predicate restricts
the matched element's typed text.

The decomposition of Section 3 (cut A-D edges, take root-leaf paths) is
implemented over this representation in :mod:`repro.core.decomposition`.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator, Sequence

from repro.errors import TwigError
from repro.relational.schema import Value


class Axis(enum.Enum):
    """The relationship between a twig node and its parent."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value


class TwigNode:
    """One query node of a twig pattern."""

    __slots__ = ("name", "tag", "axis", "children", "parent", "predicate")

    def __init__(self, name: str, *, tag: str | None = None,
                 axis: Axis = Axis.CHILD,
                 predicate: Callable[[Value | None], bool] | None = None):
        self.name = name
        self.tag = tag if tag is not None else name
        self.axis = axis
        self.children: list[TwigNode] = []
        self.parent: TwigNode | None = None
        self.predicate = predicate

    def add(self, name: str, *, tag: str | None = None,
            axis: Axis = Axis.CHILD,
            predicate: Callable[[Value | None], bool] | None = None) -> "TwigNode":
        """Create, attach and return a child query node."""
        child = TwigNode(name, tag=tag, axis=axis, predicate=predicate)
        child.parent = self
        self.children.append(child)
        return child

    def child(self, name: str, **kwargs) -> "TwigNode":
        """Attach a P-C child (sugar for ``add(axis=Axis.CHILD)``)."""
        kwargs["axis"] = Axis.CHILD
        return self.add(name, **kwargs)

    def descendant(self, name: str, **kwargs) -> "TwigNode":
        """Attach an A-D child (sugar for ``add(axis=Axis.DESCENDANT)``)."""
        kwargs["axis"] = Axis.DESCENDANT
        return self.add(name, **kwargs)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter(self) -> Iterator["TwigNode"]:
        """Pre-order traversal of this query subtree."""
        yield self
        for child in self.children:
            yield from child.iter()

    def matches_value(self, value: Value | None) -> bool:
        """Apply the value predicate (vacuously true when absent)."""
        return self.predicate is None or bool(self.predicate(value))

    def __repr__(self) -> str:
        axis = "" if self.parent is None else str(self.axis)
        return f"TwigNode({axis}{self.name})"


class TwigQuery:
    """A rooted twig pattern with distinct node names.

    >>> q = TwigQuery.build("A", lambda a: (a.child("B"), a.descendant("C")))
    >>> [n.name for n in q.nodes()]
    ['A', 'B', 'C']
    """

    def __init__(self, root: TwigNode, *, name: str = "X"):
        self.root = root
        self.name = name
        names = [node.name for node in root.iter()]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise TwigError(
                f"twig node names must be distinct (attribute identity); "
                f"duplicated: {duplicates!r}"
            )
        self._by_name = {node.name: node for node in root.iter()}

    @classmethod
    def build(cls, root_name: str,
              builder: Callable[[TwigNode], object] | None = None, *,
              tag: str | None = None, name: str = "X") -> "TwigQuery":
        """Construct a twig by mutating a fresh root inside *builder*."""
        root = TwigNode(root_name, tag=tag)
        if builder is not None:
            builder(root)
        return cls(root, name=name)

    # -- structure accessors ----------------------------------------------

    def nodes(self) -> list[TwigNode]:
        """All query nodes, pre-order."""
        return list(self.root.iter())

    def node(self, name: str) -> TwigNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise TwigError(f"twig has no node named {name!r}") from None

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names bound by this twig (pre-order)."""
        return tuple(node.name for node in self.root.iter())

    def leaves(self) -> list[TwigNode]:
        return [node for node in self.root.iter() if node.is_leaf]

    def edges(self) -> list[tuple[TwigNode, TwigNode]]:
        """(parent, child) pairs over the whole twig."""
        return [(node, child) for node in self.root.iter()
                for child in node.children]

    def pc_edges(self) -> list[tuple[TwigNode, TwigNode]]:
        return [(p, c) for p, c in self.edges() if c.axis is Axis.CHILD]

    def ad_edges(self) -> list[tuple[TwigNode, TwigNode]]:
        return [(p, c) for p, c in self.edges() if c.axis is Axis.DESCENDANT]

    def root_to_node_path(self, name: str) -> list[TwigNode]:
        """Query nodes from the root down to the named node."""
        target = self.node(name)
        chain = [target]
        while chain[-1].parent is not None:
            chain.append(chain[-1].parent)
        chain.reverse()
        return chain

    def __repr__(self) -> str:
        return f"TwigQuery({pattern_string(self.root)!r})"


def pattern_string(node: TwigNode) -> str:
    """Render a twig (sub)tree in the pattern syntax of
    :mod:`repro.xml.twig_parser` (e.g. ``A(/B, //C(/E))``)."""
    prefix = "" if node.parent is None else str(node.axis)
    label = node.name if node.tag == node.name else f"{node.name}={node.tag}"
    if node.is_leaf:
        return f"{prefix}{label}"
    inner = ", ".join(pattern_string(child) for child in node.children)
    return f"{prefix}{label}({inner})"
