"""Dewey and extended Dewey labelling (Lu et al. 2005, "TJFast").

Plain Dewey: the root is labelled ``()``; the i-th child of a node with
label L is labelled ``L + (i,)``. The label of a node spells out its whole
root path, which is what TJFast exploits to match path patterns from leaf
streams alone.

Extended Dewey encodes the child's *tag* into the component as well, using
a per-parent-tag alphabet of child tags (the paper derives it from a DTD;
we derive it from the document itself, which preserves the decoding
property). Component ``k`` of a child under a parent whose child-tag
alphabet has size ``m`` satisfies ``k mod m == index of the child's tag``,
so the tag path of any node can be decoded from its label alone.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TwigError
from repro.xml.model import XMLDocument, XMLNode


def annotate_dewey(root: XMLNode) -> XMLNode:
    """Assign plain Dewey labels (tuples of child indexes) to the subtree."""
    root.dewey = ()
    stack = [root]
    while stack:
        node = stack.pop()
        assert node.dewey is not None
        for index, child in enumerate(node.children):
            child.dewey = node.dewey + (index,)
            stack.append(child)
    return root


def dewey_is_ancestor(ancestor: tuple[int, ...],
                      descendant: tuple[int, ...]) -> bool:
    """Proper prefix test on Dewey labels."""
    return (len(ancestor) < len(descendant)
            and descendant[: len(ancestor)] == ancestor)


def dewey_is_parent(parent: tuple[int, ...],
                    child: tuple[int, ...]) -> bool:
    return len(child) == len(parent) + 1 and child[: len(parent)] == parent


def common_prefix(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Longest common prefix of two Dewey labels (the LCA's label)."""
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


class ExtendedDeweyLabeler:
    """Extended Dewey labels for one document.

    The per-parent-tag child alphabets are derived from the document (a
    stand-in for the DTD the original paper assumes). Labels are tuples of
    non-negative ints; :meth:`decode` recovers the full tag path of a node
    from its label alone, and :meth:`label` maps a node to its label.
    """

    def __init__(self, document: XMLDocument):
        self.document = document
        self.root_tag = document.root.tag
        # alphabet[parent_tag] = ordered distinct child tags.
        self.alphabet: dict[str, list[str]] = {}
        for node in document.root.iter():
            slots = self.alphabet.setdefault(node.tag, [])
            for child in node.children:
                if child.tag not in slots:
                    slots.append(child.tag)
        self._labels: dict[int, tuple[int, ...]] = {}
        self._assign()

    def _assign(self) -> None:
        root = self.document.root
        assert root.start is not None, "document must be indexed"
        self._labels[root.start] = ()
        stack = [root]
        while stack:
            node = stack.pop()
            label = self._labels[node.start]  # type: ignore[index]
            slots = self.alphabet.get(node.tag, [])
            width = max(len(slots), 1)
            # Per-tag running counters so k mod width == tag index.
            seen: dict[str, int] = {}
            for child in node.children:
                tag_index = slots.index(child.tag)
                repetition = seen.get(child.tag, 0)
                seen[child.tag] = repetition + 1
                component = repetition * width + tag_index
                self._labels[child.start] = label + (component,)
                stack.append(child)

    def label(self, node: XMLNode) -> tuple[int, ...]:
        """The extended Dewey label of *node*."""
        assert node.start is not None
        try:
            return self._labels[node.start]
        except KeyError:
            raise TwigError(
                f"node <{node.tag}> is not part of the labelled document"
            ) from None

    def decode(self, label: tuple[int, ...]) -> list[str]:
        """Recover the root-to-node tag path from a label alone."""
        path = [self.root_tag]
        current = self.root_tag
        for component in label:
            slots = self.alphabet.get(current, [])
            if not slots:
                raise TwigError(
                    f"cannot decode {label!r}: tag {current!r} has no "
                    f"children in the derived alphabet"
                )
            tag = slots[component % len(slots)]
            path.append(tag)
            current = tag
        return path

    def leaf_labels(self, tag: str) -> Iterator[tuple[XMLNode, tuple[int, ...]]]:
        """(node, label) pairs for all nodes with *tag*, document order."""
        for node in self.document.nodes(tag):
            yield node, self.label(node)
