"""A tiny pattern language for twig queries.

Grammar::

    twig   := node
    node   := label ( '(' edge (',' edge)* ')' )?
    edge   := ('/' | '//') node
    label  := NAME ('=' NAME)?          # attribute name, optional tag

Examples::

    parse_twig("A(/B, /D, //C(/E), //F(/H), //G)")   # Figure 2's twig
    parse_twig("order(/ISBN, /price)")
    parse_twig("x=item(/y=price)")                    # name x binds tag item

:func:`parse_twig` is inverse to :func:`repro.xml.twig.pattern_string`.
"""

from __future__ import annotations

from repro.errors import TwigError
from repro.xml.twig import Axis, TwigNode, TwigQuery

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:")


class _Scanner:
    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TwigError:
        return TwigError(f"{message} at offset {self.pos} in {self.text!r}")

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos: self.pos + 1]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def expect(self, token: str) -> None:
        self.skip_space()
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def name(self) -> str:
        self.skip_space()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start: self.pos]

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos >= len(self.text)


def parse_twig(pattern: str, *, name: str = "X") -> TwigQuery:
    """Parse *pattern* into a :class:`TwigQuery`."""
    scanner = _Scanner(pattern)
    root = _parse_node(scanner, parent=None, axis=Axis.CHILD)
    if not scanner.at_end():
        raise scanner.error("trailing input after twig pattern")
    return TwigQuery(root, name=name)


def _parse_label(scanner: _Scanner) -> tuple[str, str | None]:
    attr = scanner.name()
    if scanner.peek() == "=":
        scanner.pos += 1
        return attr, scanner.name()
    return attr, None


def _parse_node(scanner: _Scanner, parent: TwigNode | None,
                axis: Axis) -> TwigNode:
    attr, tag = _parse_label(scanner)
    if parent is None:
        node = TwigNode(attr, tag=tag, axis=axis)
    else:
        node = parent.add(attr, tag=tag, axis=axis)
    scanner.skip_space()
    if scanner.peek() == "(":
        scanner.pos += 1
        while True:
            scanner.skip_space()
            if scanner.startswith("//"):
                scanner.pos += 2
                _parse_node(scanner, node, Axis.DESCENDANT)
            elif scanner.peek() == "/":
                scanner.pos += 1
                _parse_node(scanner, node, Axis.CHILD)
            else:
                raise scanner.error("expected '/' or '//' before a child")
            scanner.skip_space()
            if scanner.peek() == ",":
                scanner.pos += 1
                continue
            scanner.expect(")")
            break
    return node
