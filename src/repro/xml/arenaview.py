"""Read-only document views over published arenas (shm or mmap file).

:func:`view_from_arena` rebuilds a
:class:`~repro.xml.columnar.ColumnarDocument` whose columns are
zero-copy typed ``memoryview`` windows over an arena — either a
:class:`~repro.buffers.shm.SharedArena` segment or a file-backed
:class:`~repro.buffers.mmapfile.FileArena` (the two share one layout;
this module only needs ``arena.buffer(name)`` + ``arena.meta``). Every
registered twig matcher, the planner's ``DocumentStats`` and XJoin's
path gathering run unchanged over the rebuilt view.

Three lazy adapters keep attachment O(1) in document size:

* :class:`ArenaNodes` — **memoised** node stubs (one object per node
  id, created on first access), so identity checks like the structure
  validator's ``node.parent is not upper`` hold, and navigation
  (``children`` / ``descendants``) derives from the region labels with
  bisect sibling jumps instead of shipped node objects;
* :class:`LazyNidIndex` — the ``start label -> nid`` mapping as a
  binary search over the (pre-order, strictly increasing) ``starts``
  column instead of an O(n) dict built per attachment;
* :class:`ArenaValues` — typed node values decoded on demand from the
  streamed value columns (``val_kind`` / ``val_ref`` / per-kind data +
  a UTF-8 string heap) written by :mod:`repro.xml.streaming`; arenas
  that ship values in the pickled meta (the shm document transport)
  keep using the plain list.

:class:`ArenaDocument` is the document stand-in handed to matchers: a
weakref-able cache key (like the shm transport's ``DocumentHandle``)
that additionally answers ``nodes(tag)`` / ``size()`` / ``root`` so
even the navigational ``naive`` oracle can walk an attached corpus.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import TransportError

if TYPE_CHECKING:
    from repro.xml.columnar import ColumnarDocument

#: Value-column kind codes written by the streaming builder.
VALUE_NONE = 0
VALUE_INT = 1
VALUE_FLOAT = 2
VALUE_STR = 3
#: Ints outside the signed 64-bit range ride the string heap.
VALUE_BIGINT = 4

#: The streamed value-column buffer names (all present or none).
VALUE_COLUMNS = ("val_kind", "val_ref", "val_int", "val_float",
                 "val_str_off", "val_str_len", "val_str_heap")


class ArenaNode:
    """One memoised node stub over an attached view.

    Presents the ``XMLNode`` navigation surface — ``start``, ``end``,
    ``level``, ``tag``, ``value``, ``parent``, ``children``,
    ``descendants()`` — by reading the view's columns on demand.
    Children are derived from the region labels: the first child is
    ``nid + 1`` (pre-order), each next sibling is the bisect of the
    previous child's ``end`` label into ``starts``.
    """

    __slots__ = ("_nodes", "_nid")

    def __init__(self, nodes: "ArenaNodes", nid: int):
        self._nodes = nodes
        self._nid = nid

    @property
    def nid(self) -> int:
        """The node's dense pre-order id."""
        return self._nid

    @property
    def start(self) -> int:
        """The node's region start label."""
        return self._nodes.view.starts[self._nid]

    @property
    def end(self) -> int:
        """The node's region end label."""
        return self._nodes.view.ends[self._nid]

    @property
    def level(self) -> int:
        """The node's depth in the document tree."""
        return self._nodes.view.levels[self._nid]

    @property
    def tag(self) -> str:
        """The node's tag name, resolved through the shared tag table."""
        view = self._nodes.view
        return view.tags[view.tag_ids[self._nid]]

    @property
    def value(self):
        """The node's pre-parsed typed text value."""
        return self._nodes.view.values[self._nid]

    @property
    def parent(self) -> "ArenaNode | None":
        """The parent stub (memoised; None for the root)."""
        parent_nid = self._nodes.view.parents[self._nid]
        return self._nodes[parent_nid] if parent_nid >= 0 else None

    @property
    def children(self) -> "list[ArenaNode]":
        """The direct children, document order (bisect sibling jumps)."""
        view = self._nodes.view
        out: list[ArenaNode] = []
        child = self._nid + 1
        while child < view.size and view.parents[child] == self._nid:
            out.append(self._nodes[child])
            # The next sibling is the first node whose start exceeds
            # this child's end label (starts are strictly increasing).
            child = bisect_left(view.starts, view.ends[child])
        return out

    def descendants(self) -> "Iterator[ArenaNode]":
        """Pre-order strict descendants: the contiguous nid range."""
        view = self._nodes.view
        stop = bisect_left(view.starts, view.ends[self._nid])
        for nid in range(self._nid + 1, stop):
            yield self._nodes[nid]

    def __repr__(self) -> str:
        return f"ArenaNode(<{self.tag}> nid={self._nid})"


class ArenaNodes:
    """The attached view's ``nodes`` column: memoised stubs on access.

    One :class:`ArenaNode` is created per accessed node id and cached,
    so repeated lookups return the *same* object — required by the
    identity comparisons in the structure validator and cheap for the
    result-projection path (only solution nodes are ever touched).
    """

    __slots__ = ("view", "_memo")

    def __init__(self, view: "ColumnarDocument"):
        self.view = view
        self._memo: dict[int, ArenaNode] = {}

    def __getitem__(self, nid: int) -> ArenaNode:
        node = self._memo.get(nid)
        if node is None:
            node = self._memo[nid] = ArenaNode(self, nid)
        return node

    def __len__(self) -> int:
        return self.view.size


class LazyNidIndex:
    """``start label -> nid`` via binary search over ``starts``.

    Pre-order construction makes ``starts`` strictly increasing, so the
    dict the in-memory build materialises is redundant for a frozen
    view: a bisect probe answers the same lookups with zero attach-time
    cost and zero heap.
    """

    __slots__ = ("_starts",)

    def __init__(self, starts: Sequence[int]):
        self._starts = starts

    def _find(self, start: int) -> int | None:
        index = bisect_left(self._starts, start)
        if index < len(self._starts) and self._starts[index] == start:
            return index
        return None

    def __getitem__(self, start: int) -> int:
        nid = self._find(start)
        if nid is None:
            raise KeyError(start)
        return nid

    def get(self, start: int, default=None):
        """The nid whose start label is *start*, or *default*."""
        nid = self._find(start)
        return default if nid is None else nid

    def __contains__(self, start: int) -> bool:
        return self._find(start) is not None

    def __len__(self) -> int:
        return len(self._starts)


class ArenaValues(Sequence):
    """Typed node values decoded lazily from the streamed value columns.

    ``val_kind[nid]`` selects the type, ``val_ref[nid]`` indexes the
    per-kind data (``val_int`` / ``val_float`` / the string heap via
    ``val_str_off`` + ``val_str_len``). Ints that overflow signed
    64-bit are stored on the heap with kind :data:`VALUE_BIGINT` so the
    decoded value still compares equal to the in-memory build's.
    """

    __slots__ = ("_kind", "_ref", "_int", "_float", "_str_off",
                 "_str_len", "_heap")

    def __init__(self, arena):
        self._kind = arena.buffer("val_kind")
        self._ref = arena.buffer("val_ref")
        self._int = arena.buffer("val_int")
        self._float = arena.buffer("val_float")
        self._str_off = arena.buffer("val_str_off")
        self._str_len = arena.buffer("val_str_len")
        self._heap = arena.buffer("val_str_heap")

    def __len__(self) -> int:
        return len(self._kind)

    def _decode_str(self, ref: int) -> str:
        off = self._str_off[ref]
        return bytes(self._heap[off:off + self._str_len[ref]]
                     ).decode("utf-8")

    def __getitem__(self, nid):
        if isinstance(nid, slice):
            return [self[i] for i in range(*nid.indices(len(self)))]
        kind = self._kind[nid]
        if kind == VALUE_NONE:
            return None
        ref = self._ref[nid]
        if kind == VALUE_INT:
            return self._int[ref]
        if kind == VALUE_FLOAT:
            return self._float[ref]
        if kind == VALUE_STR:
            return self._decode_str(ref)
        return int(self._decode_str(ref))  # VALUE_BIGINT


class ArenaDocument:
    """The document stand-in for an attached arena view.

    A weakref-able identity with a ``version`` (the columnar-cache
    key contract) that also answers the navigational document surface —
    ``nodes(tag)``, ``size()``, ``root`` — so every registered matcher,
    including the ``naive`` oracle, runs against an attached corpus.
    ``arena`` (set by :func:`attach_arena_document`) is the backing
    arena when there is one: the parallel executor re-publishes a
    file-backed corpus to its workers **by path**, with zero copying.
    """

    __slots__ = ("version", "view", "arena", "__weakref__")

    def __init__(self, view: "ColumnarDocument", arena: Any = None):
        self.version = 0
        self.view = view
        self.arena = arena

    def nodes(self, tag: str) -> "list[ArenaNode]":
        """All nodes with *tag*, document order (memoised stubs)."""
        nids, _starts, _ends = self.view.postings(tag)
        nodes = self.view.nodes
        return [nodes[nid] for nid in nids]

    def size(self) -> int:
        """The number of nodes in the document."""
        return self.view.size

    @property
    def root(self) -> ArenaNode:
        """The root node stub (nid 0)."""
        return self.view.nodes[0]

    def __repr__(self) -> str:
        return f"ArenaDocument({self.view.size} nodes, frozen arena view)"


def view_from_arena(arena: Any) -> "ColumnarDocument":
    """Rebuild a read-only :class:`ColumnarDocument` over *arena*.

    Works for any arena exposing ``buffer(name)`` + ``meta`` with the
    document buffer layout (the shm and mmap transports publish the
    same names). Node values come from ``meta["values"]`` when shipped
    in the header (the shm path) or from the typed value columns (the
    streamed-build path); all other columns are zero-copy casts.
    """
    from repro.xml.columnar import ColumnarDocument

    meta = arena.meta
    if not isinstance(meta, dict) or meta.get("kind") != "document":
        raise TransportError(
            f"arena does not hold a published document "
            f"(meta kind {meta.get('kind') if isinstance(meta, dict) else meta!r})")
    view = ColumnarDocument.__new__(ColumnarDocument)
    view.size = meta["size"]
    view.starts = arena.buffer("starts")
    view.ends = arena.buffer("ends")
    view.levels = arena.buffer("levels")
    view.parents = arena.buffer("parents")
    view.tag_ids = arena.buffer("tag_ids")
    view.path_ids = arena.buffer("path_ids")
    if "values" in meta:
        view.values = meta["values"]
    else:
        view.values = ArenaValues(arena)
    view.deweys = None  # not shipped; only the update layer reads them
    view.tags = meta["tags"]
    view.tag_index = meta["tag_index"]
    view.paths = [tuple(path) for path in meta["paths"]]
    view.path_table = {}  # update-layer interning state; views are frozen
    offs = arena.buffer("tag_offsets")
    nids_cat = arena.buffer("tag_nids")
    starts_cat = arena.buffer("tag_starts")
    ends_cat = arena.buffer("tag_ends")
    view.tag_nids = [nids_cat[offs[t]:offs[t + 1]]
                     for t in range(len(view.tags))]
    view.tag_starts = [starts_cat[offs[t]:offs[t + 1]]
                       for t in range(len(view.tags))]
    view.tag_ends = [ends_cat[offs[t]:offs[t + 1]]
                     for t in range(len(view.tags))]
    poffs = arena.buffer("path_offsets")
    pcat = arena.buffer("path_nids")
    view.nids_by_path = [pcat[poffs[p]:poffs[p + 1]]
                         for p in range(len(view.paths))]
    view.pids_by_last_tag = meta["pids_by_last_tag"]
    view.nodes = ArenaNodes(view)
    view.nid_index = LazyNidIndex(view.starts)
    return view


def attach_arena_document(arena: Any
                          ) -> "tuple[ArenaDocument, ColumnarDocument]":
    """Attach *arena* as a queryable document: (handle, view).

    The view is installed in the columnar cache under the returned
    handle, so matchers called with the handle resolve it like any
    document (and the planner's ``DocumentStats`` derive from the same
    arrays). The caller owns closing the arena when done.
    """
    from repro.xml.columnar import install_columnar

    view = view_from_arena(arena)
    handle = ArenaDocument(view, arena)
    install_columnar(handle, view)
    return handle, view
