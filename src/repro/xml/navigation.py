"""Naive navigational twig matching — the correctness oracle.

Enumerates *all* embeddings of a twig into a document by brute-force
recursive search. Quadratic-ish and proud of it: every optimised matcher
(structural join pipeline, PathStack, TwigStack, TJFast) is tested against
this implementation.

An embedding maps each twig node name to an XML node such that tags and
value predicates match and every edge's axis holds. Results come in two
flavours: node embeddings (:func:`match_embeddings`) and the value tuples
the paper joins on (:func:`match_relation`).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.xml.encoding import is_ancestor, is_parent
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery


def axis_candidates(document: XMLDocument, anchor: XMLNode | None,
                    query_node: TwigNode) -> Iterator[XMLNode]:
    """Document nodes that could match *query_node* under *anchor*.

    With no anchor (the twig root) every node of the right tag qualifies.
    """
    if anchor is None:
        yield from document.nodes(query_node.tag)
    elif query_node.axis is Axis.CHILD:
        for child in anchor.children:
            if child.tag == query_node.tag:
                yield child
    else:
        for node in anchor.descendants():
            if node.tag == query_node.tag:
                yield node


def match_embeddings(document: XMLDocument, twig: TwigQuery, *,
                     stats: JoinStats | None = None,
                     root: XMLNode | None = None
                     ) -> list[dict[str, XMLNode]]:
    """All embeddings of *twig* into *document* as name->node dicts.

    With *root* given, the twig root is pinned to that document node
    (the update layer's edit-local re-enumeration); the node must still
    satisfy the root's tag and value predicate, else no embedding exists.
    """
    stats = ensure_stats(stats)
    out: list[dict[str, XMLNode]] = []
    order = twig.nodes()  # pre-order: parents before children
    binding: dict[str, XMLNode] = {}
    start = 0
    if root is not None:
        query_root = order[0]
        if (root.tag != query_root.tag
                or not query_root.matches_value(root.value)):
            return out
        binding[query_root.name] = root
        start = 1

    def extend(index: int) -> None:
        if index == len(order):
            out.append(dict(binding))
            stats.count_emitted()
            return
        query_node = order[index]
        anchor = (binding[query_node.parent.name]
                  if query_node.parent is not None else None)
        for candidate in axis_candidates(document, anchor, query_node):
            stats.count_comparisons()
            if not query_node.matches_value(candidate.value):
                continue
            binding[query_node.name] = candidate
            extend(index + 1)
            del binding[query_node.name]

    extend(start)
    return out


def match_relation(document: XMLDocument, twig: TwigQuery, *,
                   name: str | None = None,
                   stats: JoinStats | None = None) -> Relation:
    """The twig's value-tuple answer: one row per embedding, projected to
    values, with duplicate value tuples collapsed (set semantics)."""
    embeddings = match_embeddings(document, twig, stats=stats)
    attrs = twig.attributes
    rows = [tuple(embedding[a].value for a in attrs)
            for embedding in embeddings]
    return Relation(name or twig.name, attrs, rows)


def has_embedding_with_values(document: XMLDocument, twig: TwigQuery,
                              values: dict[str, object]) -> bool:
    """Does an embedding exist whose node values equal *values*?

    Used by XJoin's final structure-validation filter. Performs the same
    recursive search as :func:`match_embeddings` but prunes on values and
    stops at the first witness.
    """
    order = twig.nodes()

    def extend(index: int, binding: dict[str, XMLNode]) -> bool:
        if index == len(order):
            return True
        query_node = order[index]
        anchor = (binding[query_node.parent.name]
                  if query_node.parent is not None else None)
        required = values.get(query_node.name)
        for candidate in axis_candidates(document, anchor, query_node):
            if candidate.value != required:
                continue
            if not query_node.matches_value(candidate.value):
                continue
            binding[query_node.name] = candidate
            if extend(index + 1, binding):
                return True
            del binding[query_node.name]
        return False

    return extend(0, {})


def verify_embedding(embedding: dict[str, XMLNode], twig: TwigQuery) -> bool:
    """Check one name->node mapping against the twig's constraints."""
    for query_node in twig.nodes():
        node = embedding.get(query_node.name)
        if node is None or node.tag != query_node.tag:
            return False
        if not query_node.matches_value(node.value):
            return False
        if query_node.parent is not None:
            upper = embedding[query_node.parent.name]
            ok = (is_parent(upper, node) if query_node.axis is Axis.CHILD
                  else is_ancestor(upper, node))
            if not ok:
                return False
    return True
