"""The unified twig-matching operator interface.

Mirrors :mod:`repro.engine.interface` on the tree side: a
:class:`TwigAlgorithm` consumes a document + twig query and produces
either node-level embeddings or the twig's value-tuple
:class:`~repro.relational.relation.Relation`. All matcher families of
the library — TwigStack, TJFast, PathStack, the binary structural-join
pipeline, and naive navigation — register here under stable names, so
the planner, the CLI's ``--twig-algorithm`` override, and the parity
suite can pick a matcher by name and race implementations over the same
:class:`~repro.xml.columnar.ColumnarDocument`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import TwigError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation

if TYPE_CHECKING:
    from repro.xml.model import XMLDocument, XMLNode
    from repro.xml.twig import TwigQuery


@runtime_checkable
class TwigAlgorithm(Protocol):
    """One twig-matching operator over a document."""

    #: Stable registry name (e.g. ``"twigstack"``).
    name: str

    def supports(self, twig: "TwigQuery") -> bool:
        """Can this operator evaluate *twig* (e.g. PathStack: paths only)?"""
        ...

    def embeddings(self, document: "XMLDocument", twig: "TwigQuery", *,
                   stats: JoinStats | None = None
                   ) -> "list[dict[str, XMLNode]]":
        """All embeddings of *twig* as name -> node mappings."""
        ...

    def run(self, document: "XMLDocument", twig: "TwigQuery", *,
            name: str | None = None,
            stats: JoinStats | None = None) -> Relation:
        """The twig's value-tuple answer (set semantics)."""
        ...


_REGISTRY: dict[str, TwigAlgorithm] = {}


def register_twig_algorithm(algorithm: TwigAlgorithm) -> TwigAlgorithm:
    """Register *algorithm* under its ``name`` (last registration wins)."""
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def get_twig_algorithm(name: str) -> TwigAlgorithm:
    """Look up a registered twig algorithm by name."""
    # Importing the implementations lazily avoids an import cycle while
    # still guaranteeing the built-ins are registered on first use.
    from repro.xml import algorithms  # noqa: F401
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TwigError(
            f"unknown twig algorithm {name!r}; "
            f"choose from {available_twig_algorithms()!r}") from None


def available_twig_algorithms() -> list[str]:
    """Names of all registered twig algorithms, sorted."""
    from repro.xml import algorithms  # noqa: F401
    return sorted(_REGISTRY)
