"""A small XPath subset compiled to twig queries.

Supported grammar (the navigational fragment twig joins understand)::

    path      := ('/' | '//') step ( ('/' | '//') step )*
    step      := NAME predicate*
    predicate := '[' rel-path ']'
    rel-path  := ('.')? ('/' | '//') step ... | step ...

Examples::

    parse_xpath("//A[B][.//C/E]//G")
    parse_xpath("/invoices/orderLine[ISBN]/price")

The leading axis of the outermost path describes how the twig root relates
to the *document*: twig matching is existential over the whole document,
so ``//A`` and ``/A`` differ only in that ``/A`` requires the match to be
the document root; :func:`parse_xpath` records this in
:attr:`XPathQuery.absolute`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TwigError
from repro.xml.twig import Axis, TwigNode, TwigQuery

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:")


@dataclass(frozen=True)
class XPathQuery:
    """A compiled XPath: the equivalent twig plus the root-axis flag."""

    twig: TwigQuery
    absolute: bool


def parse_xpath(path: str, *, name: str = "X") -> XPathQuery:
    """Compile an XPath expression (see module docstring) to a twig."""
    text = path.strip()
    if not text:
        raise TwigError("empty XPath expression")
    pos = 0
    counter = [0]

    def take_name() -> str:
        nonlocal pos
        start = pos
        while pos < len(text) and text[pos] in _NAME_CHARS:
            pos += 1
        if pos == start:
            raise TwigError(f"expected a name at offset {pos} in {path!r}")
        return text[start:pos]

    def take_axis(default: Axis | None = None) -> Axis:
        nonlocal pos
        if text.startswith("//", pos):
            pos += 2
            return Axis.DESCENDANT
        if text.startswith("/", pos):
            pos += 1
            return Axis.CHILD
        if default is not None:
            return default
        raise TwigError(f"expected '/' or '//' at offset {pos} in {path!r}")

    def parse_steps(parent: TwigNode | None, first_axis: Axis) -> TwigNode:
        """Parse step ('/' step)* attaching under *parent*; returns the
        first node created (the subtree hook)."""
        nonlocal pos
        axis = first_axis
        head: TwigNode | None = None
        current = parent
        while True:
            tag = take_name()
            node_name = f"{tag}@{counter[0]}"
            counter[0] += 1
            if current is None:
                node = TwigNode(node_name, tag=tag, axis=axis)
            else:
                node = current.add(node_name, tag=tag, axis=axis)
            if head is None:
                head = node
            # predicates
            while pos < len(text) and text[pos] == "[":
                pos += 1
                if text.startswith(".", pos):
                    pos += 1
                pred_axis = take_axis(default=Axis.CHILD)
                parse_steps(node, pred_axis)
                if pos >= len(text) or text[pos] != "]":
                    raise TwigError(
                        f"unterminated predicate at offset {pos} in {path!r}")
                pos += 1
            current = node
            if pos < len(text) and text[pos] == "/":
                axis = take_axis()
                continue
            return head

    absolute = not text.startswith("//")
    first_axis = take_axis(default=Axis.DESCENDANT)
    root = parse_steps(None, first_axis)
    if pos != len(text):
        raise TwigError(f"trailing input at offset {pos} in {path!r}")
    # Rebase: the twig root's own axis is only meaningful vs. the document.
    query = TwigQuery(root, name=name)
    return XPathQuery(twig=query, absolute=absolute)
