"""Reader-facing snapshot handles over a pinned version vector.

A :class:`Snapshot` is produced by
:meth:`~repro.mvcc.manager.SnapshotManager.pin` (or the convenience
``QuerySession.pin()``). It records the session version, the per-input
version vector, and the maintained answer at pin time; every read then
resolves each input to either the live object (if the writer has not
moved past the pinned version) or the frozen artifact the write path
preserved in the input's :class:`~repro.mvcc.chain.VersionChain`.

Reads never block writes and writes never corrupt reads: relations are
immutable objects retained per version, and a pinned document is cloned
before the first in-place patch supersedes it. ``release()`` (or leaving
the ``with`` block) drops the pins and lets the chains reclaim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SnapshotError
from repro.relational.relation import Relation

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.mvcc.manager import SnapshotManager
    from repro.xml.model import XMLDocument


class Snapshot:
    """One consistent read view of a query session's inputs."""

    __slots__ = ("manager", "version", "relation_versions",
                 "document_versions", "_answer", "released", "metadata")

    def __init__(self, manager: "SnapshotManager", version: int,
                 relation_versions: dict[str, int],
                 document_versions: dict[int, int],
                 answer: Relation):
        self.manager = manager
        #: The session version at pin time.
        self.version = version
        #: relation name -> pinned :class:`VersionedRelation` version.
        self.relation_versions = dict(relation_versions)
        #: id(document) -> pinned document (reindex) version.
        self.document_versions = dict(document_versions)
        self._answer = answer
        self.released = False
        #: Free-form annotations (the service stores its batch sequence
        #: number here so clients can correlate reads with the oracle).
        self.metadata: dict[str, object] = {}

    # -- guarded access ----------------------------------------------------

    def _check_live(self) -> None:
        if self.released:
            raise SnapshotError(
                f"snapshot at session version {self.version} was released; "
                "pin a fresh one")

    def answer(self) -> Relation:
        """The maintained query answer at the pinned version (O(1))."""
        self._check_live()
        return self._answer

    def relation(self, name: str) -> Relation:
        """One pinned relational input (live or retained object)."""
        self._check_live()
        return self.manager.relation_at(name, self.relation_versions[name])

    def document(self, ident: int) -> "XMLDocument":
        """One pinned document by ``id(document)`` (live or frozen clone)."""
        self._check_live()
        return self.manager.document_at(ident,
                                        self.document_versions[ident])

    # -- evaluation --------------------------------------------------------

    def query(self) -> "MultiModelQuery":
        """The session's query re-bound to the pinned inputs.

        Built fresh per call (cheap — no data is copied) so a document
        that was frozen *after* a previous call resolves to its clone,
        never to the patched live tree.
        """
        self._check_live()
        return self.manager.query_at(self)

    def run(self, *, algorithm: str | None = None,
            order: "str | tuple[str, ...] | None" = None,
            workers: int = 0) -> Relation:
        """Fully evaluate the query at the pinned version vector.

        Plans and runs through :func:`repro.engine.planner.run_query`
        over the pinned inputs — byte-identical to a rebuild-from-scratch
        evaluation at this snapshot's versions, regardless of how many
        updates have landed since the pin.
        """
        from repro.engine.planner import run_query

        return run_query(self.query(), algorithm=algorithm, order=order,
                         workers=workers)

    # -- lifecycle ---------------------------------------------------------

    @property
    def detached(self) -> bool:
        """True when no read of this snapshot touches a live document.

        A detached snapshot is safe to evaluate off the writer's thread
        (the service offloads heavy queries this way): every document
        resolves to a frozen clone and every relation to an immutable
        retained object.
        """
        if self.released:
            return True
        return self.manager.is_detached(self)

    def detach(self) -> None:
        """Force-freeze every still-live pinned document into its clone."""
        self._check_live()
        self.manager.detach(self)

    def release(self) -> None:
        """Drop the pins; idempotent. Retained artifacts whose last pin
        this was are reclaimed (watermark advance)."""
        if self.released:
            return
        self.released = True
        self.manager.unpin(self)

    def __enter__(self) -> "Snapshot":
        self._check_live()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self.released else "pinned"
        return (f"Snapshot(v{self.version}, {state}, "
                f"{len(self.relation_versions)} relations, "
                f"{len(self.document_versions)} documents)")
