"""Per-resource version chains: pin counts + retained artifacts.

A :class:`VersionChain` tracks one versioned resource (one relational
input, or one document). Snapshots pin the resource at its current
version; the writer, before superseding a pinned version, *retains* the
frozen artifact for that version in the chain. Retained artifacts stay
resident while any pin at their version is live and are reclaimed —
through an optional ``reclaim`` hook, so caches release deterministically
— as soon as the last pin goes (the chain's watermark advancing past
them).

Pins only ever land on the resource's *current* version, so a retained
version whose pin count hits zero can never be pinned again: reclaiming
every unpinned retained entry is exactly "reclaim below the watermark".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SnapshotError


class VersionChain:
    """Pin counts and retained artifacts for one versioned resource."""

    __slots__ = ("label", "_reclaim", "_pins", "_retained")

    def __init__(self, label: str, *,
                 reclaim: Callable[[Any], None] | None = None):
        self.label = label
        self._reclaim = reclaim
        #: version -> live pin count.
        self._pins: dict[int, int] = {}
        #: version -> frozen artifact (present only once superseded
        #: while pinned; the live object serves unsuperseded pins).
        self._retained: dict[int, Any] = {}

    # -- pinning -----------------------------------------------------------

    def pin(self, version: int) -> int:
        """Add one pin at *version*; returns the new pin count there."""
        count = self._pins.get(version, 0) + 1
        self._pins[version] = count
        return count

    def release(self, version: int) -> None:
        """Drop one pin at *version* and reclaim newly-unpinned artifacts."""
        count = self._pins.get(version)
        if count is None:
            raise SnapshotError(
                f"version chain {self.label!r}: release of version "
                f"{version} which holds no pin")
        if count == 1:
            del self._pins[version]
        else:
            self._pins[version] = count - 1
        self.reclaim_unpinned()

    def pinned(self, version: int) -> bool:
        """True while at least one snapshot pins *version*."""
        return version in self._pins

    def pin_count(self) -> int:
        """Total live pins across all versions of this resource."""
        return sum(self._pins.values())

    def watermark(self) -> int | None:
        """The oldest pinned version (None when nothing is pinned).

        Everything below the watermark is reclaimable; the chain
        reclaims eagerly on :meth:`release`, so retained versions are
        always >= the watermark.
        """
        return min(self._pins) if self._pins else None

    # -- retention ---------------------------------------------------------

    def retain(self, version: int, artifact: Any) -> Any:
        """Preserve *artifact* as the frozen state at *version*.

        Called by the write path immediately before it supersedes a
        pinned version. The first retention wins — a second writer-side
        preservation of the same version is a no-op, so double hooks
        never clone twice.
        """
        return self._retained.setdefault(version, artifact)

    def artifact(self, version: int) -> Any | None:
        """The retained artifact at *version* (None if never preserved —
        either the version is still live or it was never pinned)."""
        return self._retained.get(version)

    def retained_versions(self) -> tuple[int, ...]:
        """The versions currently holding retained artifacts (sorted)."""
        return tuple(sorted(self._retained))

    def reclaim_unpinned(self) -> None:
        """Drop every retained artifact whose version holds no pin.

        Runs the ``reclaim`` hook per dropped artifact (deterministic
        cache release, mirroring the update layer's explicit
        invalidation style rather than waiting for weakref death).
        """
        for version in sorted(self._retained):
            if version not in self._pins:
                artifact = self._retained.pop(version)
                if self._reclaim is not None:
                    self._reclaim(artifact)

    def __repr__(self) -> str:
        return (f"VersionChain({self.label!r}, {self.pin_count()} pins, "
                f"{len(self._retained)} retained)")
