"""The snapshot manager: one session's version chains, coordinated.

A :class:`SnapshotManager` is owned by a
:class:`~repro.updates.session.QuerySession`. At construction it wires
one :class:`~repro.mvcc.chain.VersionChain` per relational input (hooked
into the input's :class:`~repro.updates.relations.VersionedRelation`, so
the write path retains superseded pinned relations) and one per distinct
document (hooked into the input's
:class:`~repro.updates.documents.DocumentEditor` ``on_before_change``,
so a pinned document is frozen into a clone *before* the first in-place
patch supersedes it).

Pinning captures the maintained answer plus the current version vector
in O(1); the copy cost is paid lazily, by the writer, only for versions
that are both pinned and superseded. Reclamation is deterministic:
releasing the last pin on a version drops its retained artifacts and
explicitly invalidates their cache entries (planner relation stats,
columnar views, document stats).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.engine.planner import invalidate_relation_stats
from repro.errors import SnapshotError
from repro.mvcc.chain import VersionChain
from repro.mvcc.snapshot import Snapshot
from repro.relational.relation import Relation
from repro.xml.columnar import (
    invalidate_document_caches,
    pin_document_version,
    release_document_version,
)
from repro.xml.model import XMLDocument

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.updates.session import QuerySession


def _reclaim_relation(artifact: Relation) -> None:
    """Chain hook: release a retained relation's installed statistics."""
    invalidate_relation_stats(artifact)


def _reclaim_clone(clone: XMLDocument) -> None:
    """Chain hook: unpin and drop a frozen clone's cache entries."""
    release_document_version(clone, clone.version)
    invalidate_document_caches(clone)


class SnapshotManager:
    """Pins, preserves and reclaims versions for one query session."""

    def __init__(self, session: "QuerySession"):
        # Weak, in the planner-cache style: the manager must never keep
        # a dropped session (and its documents) alive through itself.
        self._session_ref = weakref.ref(session)
        self._name = session.query.name
        self._relation_names = [r.name for r in session.query.relations]
        self._versioned = dict(session.relations)
        self.relation_chains: dict[str, VersionChain] = {}
        for name, versioned in self._versioned.items():
            chain = VersionChain(f"relation:{name}",
                                 reclaim=_reclaim_relation)
            versioned.chain = chain
            self.relation_chains[name] = chain
        self._bindings = list(session.query.twigs)
        self._documents: dict[int, XMLDocument] = {}
        self.document_chains: dict[int, VersionChain] = {}
        for editor in session.editors.values():
            ident = id(editor.document)
            self._documents[ident] = editor.document
            self.document_chains[ident] = VersionChain(
                f"document:{editor.document.root.tag}",
                reclaim=_reclaim_clone)
            editor.on_before_change = self.before_document_write
        self._active: dict[int, Snapshot] = {}

    @property
    def session(self) -> "QuerySession":
        """The live session behind this manager (SnapshotError if dropped)."""
        session = self._session_ref()
        if session is None:
            raise SnapshotError(
                "the session behind this snapshot manager has been released")
        return session

    # -- pinning -----------------------------------------------------------

    def pin(self) -> Snapshot:
        """Pin the session's current version vector; O(1), no copies."""
        session = self.session
        answer = session.answer()
        relation_versions = {name: versioned.version
                             for name, versioned in self._versioned.items()}
        document_versions = {ident: document.version
                             for ident, document in self._documents.items()}
        snapshot = Snapshot(self, session.version, relation_versions,
                            document_versions, answer)
        for name, version in relation_versions.items():
            self.relation_chains[name].pin(version)
        for ident, version in document_versions.items():
            self.document_chains[ident].pin(version)
        self._active[id(snapshot)] = snapshot
        return snapshot

    def unpin(self, snapshot: Snapshot) -> None:
        """Release a snapshot's pins (called by ``Snapshot.release``)."""
        if self._active.pop(id(snapshot), None) is None:
            return
        for name, version in snapshot.relation_versions.items():
            self.relation_chains[name].release(version)
        for ident, version in snapshot.document_versions.items():
            self.document_chains[ident].release(version)

    def active_count(self) -> int:
        """The number of live (unreleased) snapshots."""
        return len(self._active)

    def watermark(self) -> int | None:
        """The oldest pinned session version (None with no snapshots)."""
        if not self._active:
            return None
        return min(snapshot.version for snapshot in self._active.values())

    # -- write-path hooks --------------------------------------------------

    def before_document_write(self, document: XMLDocument) -> None:
        """Preserve *document*'s current version if a snapshot pins it.

        Wired into the editors' ``on_before_change``: runs before any
        label patch, array splice, or rebuild fallback mutates the tree,
        so the frozen clone is taken from fully consistent state. At
        most one clone per (document, version) — later writes at the
        same (already superseded) version find the artifact retained.
        """
        ident = id(document)
        chain = self.document_chains.get(ident)
        if chain is None:
            return
        version = document.version
        if chain.pinned(version) and chain.artifact(version) is None:
            self._freeze_document(ident)

    def _freeze_document(self, ident: int) -> XMLDocument:
        """Clone the live document and retain it at its current version."""
        live = self._documents[ident]
        clone = XMLDocument(live.root.copy())
        pin_document_version(clone)
        return self.document_chains[ident].retain(live.version, clone)

    # -- snapshot resolution -----------------------------------------------

    def relation_at(self, name: str, version: int) -> Relation:
        """The relation object serving reads of *name* at *version*."""
        versioned = self._versioned[name]
        if versioned.version == version:
            return versioned.relation
        artifact = self.relation_chains[name].artifact(version)
        if artifact is None:
            raise SnapshotError(
                f"relation {name!r} at version {version} was never "
                f"preserved (current version {versioned.version}); "
                "writes must go through the owning session")
        return artifact

    def document_at(self, ident: int, version: int) -> XMLDocument:
        """The document object serving reads of *ident* at *version*."""
        artifact = self.document_chains[ident].artifact(version)
        if artifact is not None:
            return artifact
        live = self._documents[ident]
        if live.version == version:
            return live
        raise SnapshotError(
            f"document {self.document_chains[ident].label!r} at version "
            f"{version} was never preserved (current version "
            f"{live.version}); writes must go through the owning session")

    def query_at(self, snapshot: Snapshot) -> "MultiModelQuery":
        """The session's query re-bound to *snapshot*'s pinned inputs."""
        from repro.core.multimodel import MultiModelQuery, TwigBinding

        relations = [
            self.relation_at(name, snapshot.relation_versions[name])
            for name in self._relation_names]
        twigs = [
            TwigBinding(binding.twig,
                        self.document_at(id(binding.document),
                                         snapshot.document_versions[
                                             id(binding.document)]))
            for binding in self._bindings]
        return MultiModelQuery(relations, twigs, name=self._name)

    # -- detachment (off-thread evaluation) --------------------------------

    def is_detached(self, snapshot: Snapshot) -> bool:
        """True when every pinned document resolves to a frozen clone."""
        return all(
            self.document_chains[ident].artifact(version) is not None
            for ident, version in snapshot.document_versions.items())

    def detach(self, snapshot: Snapshot) -> None:
        """Freeze every still-live pinned document of *snapshot* now.

        After this, no read of the snapshot touches an object the writer
        will ever mutate, so evaluation may run off the writer's thread
        (the service's heavy-query offload requires it).
        """
        for ident, version in snapshot.document_versions.items():
            chain = self.document_chains[ident]
            if chain.artifact(version) is not None:
                continue
            live = self._documents[ident]
            if live.version != version:
                raise SnapshotError(
                    f"document {chain.label!r} moved to version "
                    f"{live.version} without preserving pinned version "
                    f"{version}")
            self._freeze_document(ident)

    def __repr__(self) -> str:
        return (f"SnapshotManager({self._name!r}, "
                f"{len(self._active)} snapshots, "
                f"{len(self.relation_chains)} relations, "
                f"{len(self.document_chains)} documents)")
