"""MVCC snapshot layer: consistent reads under concurrent updates.

The update subsystem (PR 3) already maintains implicit versions
everywhere — :class:`~repro.updates.relations.VersionedRelation` delta
logs, ``(document id, reindex version)``-keyed columnar caches,
``QuerySession``'s session version. This package makes that versioning
explicit and readable: a :class:`Snapshot` pins one consistent
``(relation versions, document versions)`` vector and keeps answering
reads at that vector while writers keep appending deltas.

The machinery is copy-on-write at the version granularity:

* pinning is O(1) — a snapshot records versions and borrows the live
  objects; nothing is copied while the writer stays away;
* the first write over a *pinned* version preserves it — the superseded
  immutable :class:`~repro.relational.relation.Relation` object is
  retained (with its installed statistics), and a pinned document is
  frozen into a clone *before* the in-place columnar patch lands;
* reclamation is watermark-driven — when the last pin on a version is
  released, its retained artifacts are dropped and their cache entries
  (planner statistics, columnar views, document stats) are explicitly
  invalidated.

:class:`VersionChain` holds the per-resource pin counts and retained
artifacts, :class:`SnapshotManager` coordinates the chains of one
:class:`~repro.updates.session.QuerySession`, and :class:`Snapshot` is
the reader-facing handle. The multi-tenant query service
(:mod:`repro.service`) stands on this layer: every client read is a
snapshot read, so answers are never torn by the update stream.
"""

from repro.mvcc.chain import VersionChain
from repro.mvcc.manager import SnapshotManager
from repro.mvcc.snapshot import Snapshot

__all__ = ["Snapshot", "SnapshotManager", "VersionChain"]
