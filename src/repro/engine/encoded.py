"""Encoded physical representation of a query: the engine's second layer.

An :class:`EncodedInstance` is built **once** per query and then handed to
any :class:`~repro.engine.interface.JoinAlgorithm`. It bundles

* one shared :class:`~repro.engine.dictionary.Dictionary` per attribute,
* one :class:`EncodedTrie` per input — relations directly, twig
  path-relations from the document's P-C chains. Path rows are never
  materialised as :class:`Relation`s (the paper's "we do not physically
  transform them into relational tables"); a transient distinct-row set
  is gathered once per path to feed both the shared dictionaries and
  the trie build,
* the participation map (which tries bind which level of the global
  attribute order), and
* for multi-model queries, the twig-side filters (structure validators
  and A-D prefilter indexes) that XJoin's modes consume.

Tries store dense int codes: every level's key list is a sorted typed
buffer (:mod:`repro.buffers.layout` picks the narrowest ``array``
typecode from the level's code bound and widens on demand; code order ==
value order, see the dictionary layer), so seeks are galloping probes
over contiguous ints and hashed descent probes int-keyed dicts. Building
from sorted encoded rows shares prefixes with the previous row, which
also yields the key buffers already sorted — no per-node sort pass. The
update layer's ``insert``/``remove`` splice the same buffers in place
(amortized via the array over-allocation), so delta maintenance never
forces a repack.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.buffers.kernels import gallop
from repro.buffers.layout import (
    insert_code,
    make,
    remove_code,
    typecode_for,
)
from repro.engine.dictionary import Dictionary, DictionaryBuilder, encode_rows
from repro.errors import EngineError, QueryError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.core.validation import (
        ADValueIndex,
        PartialStructureValidator,
        StructureValidator,
    )


class EncodedTrieNode:
    """One trie level: a sorted typed code buffer plus child pointers."""

    __slots__ = ("keys", "children")

    def __init__(self, typecode: str = "H") -> None:
        self.keys = make(typecode)
        self.children: dict[int, "EncodedTrieNode"] = {}

    def seek_index(self, code: int) -> int:
        """Index of the first key >= *code*."""
        return gallop(self.keys, code)

    def __len__(self) -> int:
        return len(self.keys)


class EncodedTrie:
    """A dictionary-encoded input indexed as a trie over ``order``.

    ``encoded_rows`` must be *distinct* (encoding a relation's distinct
    rows, or an already-deduplicated row set, guarantees this).
    ``code_bounds`` optionally gives the maximum code per level (the
    builders pass each level dictionary's size) so every node at that
    level packs into the narrowest typecode without a scan; without it
    the rows are scanned once, column-wise.
    """

    __slots__ = ("name", "order", "root", "size", "_typecodes")

    def __init__(self, name: str, order: Sequence[str],
                 encoded_rows: Iterable[tuple[int, ...]], *,
                 code_bounds: Sequence[int] | None = None):
        self.name = name
        self.order = tuple(order)
        rows = sorted(encoded_rows)
        self.size = len(rows)
        if code_bounds is None:
            bounds = ([max(column) for column in zip(*rows)] if rows
                      else [0] * len(self.order))
        else:
            bounds = list(code_bounds)
        # One typecode per level, plus a trailing narrow one so child
        # creation below the last level never indexes out of range.
        self._typecodes = tuple(typecode_for(max(hi, 0)) for hi in bounds) \
            + ("B",)
        root = EncodedTrieNode(self._typecodes[0])
        # Sorted insertion: reuse the chain of nodes shared with the
        # previous row; new keys always append in sorted position.
        chain: list[EncodedTrieNode] = [root]
        previous: tuple[int, ...] | None = None
        typecodes = self._typecodes
        for row in rows:
            split = 0
            if previous is not None:
                limit = len(row)
                while split < limit and row[split] == previous[split]:
                    split += 1
            del chain[split + 1:]
            node = chain[split]
            for level, code in enumerate(row[split:], split):
                child = EncodedTrieNode(typecodes[level + 1])
                node.keys.append(code)
                node.children[code] = child
                chain.append(child)
                node = child
            previous = row
        self.root = root

    @property
    def depth(self) -> int:
        """The trie's level count (= the arity of its rows)."""
        return len(self.order)

    # -- delta maintenance (repro.updates) ---------------------------------

    def _check_arity(self, row: "tuple[int, ...]") -> None:
        if len(row) != len(self.order):
            raise EngineError(
                f"trie {self.name!r}: row {row!r} has arity {len(row)}, "
                f"trie order {list(self.order)!r} has arity "
                f"{len(self.order)}")

    def insert(self, row: "tuple[int, ...]") -> bool:
        """Insert one encoded row; returns False if it was present.

        Keys stay sorted (a sorted buffer splice, widening the typecode
        when a new code outgrows it), so iterators and seeks keep
        working on the patched trie without a rebuild.
        """
        self._check_arity(row)
        if not row:  # zero-arity trie: holds the empty tuple or nothing
            present = self.size > 0
            self.size = 1
            return not present
        node = self.root
        created = False
        for level, code in enumerate(row):
            child = node.children.get(code)
            if child is None:
                child = EncodedTrieNode(self._typecodes[level + 1])
                node.keys = insert_code(node.keys, code)
                node.children[code] = child
                created = True
            node = child
        if created:
            self.size += 1
        return created

    def remove(self, row: "tuple[int, ...]") -> bool:
        """Remove one encoded row, pruning emptied nodes; returns False
        if the row was not present."""
        self._check_arity(row)
        if not row:
            if not self.size:
                return False
            self.size = 0
            return True
        path: list[tuple[EncodedTrieNode, int]] = []
        node = self.root
        for code in row:
            child = node.children.get(code)
            if child is None:
                return False
            path.append((node, code))
            node = child
        for node, code in reversed(path):
            if len(node.children[code].keys):
                break
            del node.children[code]
            node.keys = remove_code(node.keys, code)
        self.size -= 1
        return True

    def tuples(self):
        """Enumerate stored code tuples in sorted order (for tests)."""

        def recurse(node: EncodedTrieNode, prefix: tuple[int, ...]):
            if len(prefix) == self.depth:
                yield prefix
                return
            for code in node.keys:
                yield from recurse(node.children[code], prefix + (code,))

        yield from recurse(self.root, ())


class EncodedTrieIterator:
    """The LFTJ iterator interface (open/up/next/seek/key) over int codes.

    The current level's node and position live in flat slots (not at the
    top of a stack) so the per-comparison methods — ``key``, ``at_end``,
    ``next``, ``seek`` — touch no list indexing beyond the key array.
    Position -1 is the virtual root level before the first ``open``.
    """

    __slots__ = ("_node", "_pos", "_stack")

    def __init__(self, trie: EncodedTrie):
        self._node = trie.root
        self._pos = -1
        self._stack: list[tuple[EncodedTrieNode, int]] = []

    def open(self) -> None:
        """Descend to the first key of the current key's child level."""
        node = self._node
        self._stack.append((node, self._pos))
        if self._pos >= 0:
            self._node = node.children[node.keys[self._pos]]
        self._pos = 0

    def up(self) -> None:
        """Return to the parent level (the position before ``open``)."""
        self._node, self._pos = self._stack.pop()

    def at_end(self) -> bool:
        """Is the cursor past the current level's last key?"""
        return self._pos >= len(self._node.keys)

    def key(self) -> int:
        """The code at the cursor (undefined when :meth:`at_end`)."""
        return self._node.keys[self._pos]

    def next(self) -> None:
        """Advance the cursor by one key."""
        self._pos += 1

    def seek(self, code: int) -> None:
        """Advance the cursor to the first key >= *code* (never back).

        Gallops from the cursor, so a seek costs O(log d) in the
        distance d actually moved, not in the level's width.
        """
        index = gallop(self._node.keys, code, self._pos if self._pos > 0
                       else 0)
        if index > self._pos:
            self._pos = index

    def current_keys(self) -> Sequence[int]:
        """The current level's full key buffer (batch kernels read it)."""
        return self._node.keys


@dataclass
class TwigFilters:
    """The twig-side machinery XJoin threads through its expansion:
    per-twig structure validators (Algorithm 1's final filter), the
    optional partial validators and A-D value-pair prefilter indexes,
    and which global attributes belong to which twig."""

    twig_attrs: dict[str, set[str]] = field(default_factory=dict)
    validators: "dict[str, StructureValidator]" = field(default_factory=dict)
    partial_validators: "dict[str, PartialStructureValidator]" = \
        field(default_factory=dict)
    ad_indexes: "list[tuple[str, str, str, ADValueIndex]]" = \
        field(default_factory=list)


def _global_order(schemas: Sequence[Sequence[str]],
                  order: Sequence[str] | None) -> tuple[str, ...]:
    """Resolve/validate a global attribute order over the input schemas."""
    all_attrs: list[str] = []
    for schema in schemas:
        for attribute in schema:
            if attribute not in all_attrs:
                all_attrs.append(attribute)
    if order is None:
        return tuple(all_attrs)
    order = tuple(order)
    if sorted(order) != sorted(all_attrs):
        raise QueryError(
            f"attribute order {list(order)!r} must be a permutation of the "
            f"query attributes {sorted(all_attrs)!r}")
    return order


class EncodedInstance:
    """Everything a :class:`JoinAlgorithm` needs, built once per query."""

    __slots__ = ("name", "order", "dictionaries", "tries", "participation",
                 "relations", "query", "twig_filters", "erase_structural",
                 "_level_values")

    def __init__(self, name: str, order: tuple[str, ...],
                 dictionaries: dict[str, Dictionary],
                 tries: list[EncodedTrie], *,
                 relations: Sequence[Relation] = (),
                 query: "MultiModelQuery | None" = None,
                 twig_filters: TwigFilters | None = None,
                 erase_structural: bool = False):
        self.name = name
        self.order = order
        self.dictionaries = dictionaries
        self.tries = tries
        self.relations = list(relations)
        self.query = query
        self.twig_filters = twig_filters
        self.erase_structural = erase_structural
        #: participation[level] = indexes of the tries binding that level.
        self.participation: list[list[int]] = [[] for _ in order]
        for index, trie in enumerate(tries):
            for attribute in trie.order:
                self.participation[order.index(attribute)].append(index)
        #: Per-level decode tables (value tuple of the level's dictionary).
        self._level_values: list[tuple[Value, ...]] = [
            dictionaries[a].values if a in dictionaries else ()
            for a in order]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_relations(cls, relations: Sequence[Relation],
                       order: Sequence[str] | None = None, *,
                       name: str = "Q") -> "EncodedInstance":
        """Encode a purely relational natural-join query."""
        resolved = _global_order([r.schema.attributes for r in relations],
                                 order)
        builder = DictionaryBuilder()
        for relation in relations:
            builder.add_relation(relation)
        dictionaries = builder.build()
        tries = []
        for relation in relations:
            trie_order = relation.schema.restrict_order(resolved)
            positions = relation.schema.positions(trie_order)
            encoded = encode_rows(relation.rows, positions,
                                  [dictionaries[a] for a in trie_order])
            bounds = [len(dictionaries[a].values) - 1 for a in trie_order]
            tries.append(EncodedTrie(relation.name, trie_order, encoded,
                                     code_bounds=bounds))
        return cls(name, resolved, dictionaries, tries, relations=relations)

    @classmethod
    def reference(cls, query: "MultiModelQuery") -> "EncodedInstance":
        """A trie-less instance for operators that evaluate from the
        source inputs (the baseline foil): carries the query, builds no
        dictionaries or tries."""
        return cls(query.name, (), {}, [], relations=query.relations,
                   query=query)

    @classmethod
    def from_query(cls, query: "MultiModelQuery",
                   order: Sequence[str], *,
                   validate_structure: bool = True,
                   ad_prefilter: bool = False,
                   partial_validation: bool = False) -> "EncodedInstance":
        """Encode a multi-model query: relations plus the twigs'
        decomposed root-leaf path relations, all over shared dictionaries.

        ``order`` must already be resolved (see
        :func:`repro.core.planner.attribute_order`).
        """
        from repro.core.decomposition import iter_path_value_rows
        from repro.core.validation import (
            ADValueIndex,
            PartialStructureValidator,
            StructureValidator,
        )

        expansion = tuple(order)
        structural = {binding.name: query.structural_attributes(binding)
                      for binding in query.twigs}

        # Gather each path relation's distinct value rows once (a
        # transient set, not a Relation); both the dictionary builder
        # and the trie build read them, so a single document walk pays
        # for both.
        path_inputs: list[tuple[str, tuple[str, ...], set[tuple]]] = []
        for binding in query.twigs:
            for path in query.decompositions[binding.name].paths:
                rows = set(iter_path_value_rows(binding.document, path,
                                                structural[binding.name]))
                path_inputs.append((path.name, path.attributes, rows))

        builder = DictionaryBuilder()
        for relation in query.relations:
            builder.add_relation(relation)
        for _name, attributes, rows in path_inputs:
            builder.add_rows(attributes, rows)
        dictionaries = builder.build()
        # Attributes no input binds cannot occur for a valid query, but
        # keep decode total for them anyway.
        for attribute in expansion:
            dictionaries.setdefault(attribute, Dictionary(attribute, ()))

        tries: list[EncodedTrie] = []
        for relation in query.relations:
            trie_order = relation.schema.restrict_order(expansion)
            positions = relation.schema.positions(trie_order)
            encoded = encode_rows(relation.rows, positions,
                                  [dictionaries[a] for a in trie_order])
            bounds = [len(dictionaries[a].values) - 1 for a in trie_order]
            tries.append(EncodedTrie(relation.name, trie_order, encoded,
                                     code_bounds=bounds))
        for path_name, attributes, rows in path_inputs:
            trie_order = Schema(attributes).restrict_order(expansion)
            positions = tuple(attributes.index(a) for a in trie_order)
            encoded = encode_rows(rows, positions,
                                  [dictionaries[a] for a in trie_order])
            bounds = [len(dictionaries[a].values) - 1 for a in trie_order]
            tries.append(EncodedTrie(path_name, trie_order, encoded,
                                     code_bounds=bounds))

        filters = TwigFilters(
            twig_attrs={binding.name: set(binding.twig.attributes)
                        for binding in query.twigs})
        if validate_structure:
            filters.validators = {
                binding.name: StructureValidator(binding.document,
                                                 binding.twig)
                for binding in query.twigs}
        if partial_validation:
            filters.partial_validators = {
                binding.name: PartialStructureValidator(binding.document,
                                                        binding.twig)
                for binding in query.twigs}
        if ad_prefilter:
            for binding in query.twigs:
                for upper, lower in binding.twig.ad_edges():
                    filters.ad_indexes.append(
                        (binding.name, upper.name, lower.name,
                         ADValueIndex(binding, upper.name, lower.name,
                                      structural[binding.name])))

        return cls(query.name, expansion, dictionaries, tries,
                   relations=query.relations, query=query,
                   twig_filters=filters,
                   erase_structural=any(structural.values()))

    # -- helpers for algorithms -------------------------------------------

    def has_empty_input(self) -> bool:
        """Any empty input (of positive arity) empties the whole join."""
        return any(trie.depth > 0 and not trie.root.keys
                   for trie in self.tries)

    def decode_row(self, codes: Sequence[int]) -> tuple[Value, ...]:
        """Decode one code row over the global order into values."""
        return tuple(values[code]
                     for values, code in zip(self._level_values, codes))

    def decode_value(self, level: int, code: int) -> Value:
        """Decode one code through the named level's dictionary."""
        return self._level_values[level][code]

    def result_relation(self, code_rows: Sequence[Sequence[int]],
                        name: str | None = None) -> Relation:
        """Decode emitted code rows into a relation over ``order``."""
        if not self.order:
            decoded: "Iterable[tuple[Value, ...]]" = [() for _ in code_rows]
        elif code_rows:
            # Column-wise decode (transpose, index, transpose back) keeps
            # the per-value work in C-level loops.
            columns = [[values[code] for code in column]
                       for values, column in zip(self._level_values,
                                                 zip(*code_rows))]
            decoded = zip(*columns)
        else:
            decoded = []
        return Relation(name or self.name, Schema(self.order), decoded)

    def __repr__(self) -> str:
        return (f"EncodedInstance({self.name!r}, order={list(self.order)!r}, "
                f"{len(self.tries)} tries)")
