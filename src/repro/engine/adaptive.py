"""Adaptive feedback-driven planning: corrections, bounds, plan racing.

Three cooperating pieces close the loop the static planner leaves open
(mis-estimates on skewed or update-churned data silently pinning every
subsequent query to a bad plan):

1. **Feedback corrections** (:class:`FeedbackStore`). After an executed
   query, the per-level ``record_stage`` counters in
   :class:`~repro.instrumentation.JoinStats` are folded back into
   per-(input, attribute, prefix) cardinality correction factors —
   observed over estimated, EWMA-smoothed — stored beside the cached
   :class:`~repro.relational.statistics.RelationStats` /
   :class:`~repro.xml.columnar.DocumentStats`. Corrections are
   **version-keyed**: every factor is recorded against the version
   stamps of the query's inputs, and a factor whose input has moved on
   is never consumed. :class:`~repro.updates.session.QuerySession`
   refreshes the stamps as its maintained statistics refresh (small
   deltas *inherit* corrections; churn bursts *invalidate* them).

2. **Bound-driven ordering** (:func:`bound_order` / the ``bound``
   policy, plus the correction-aware ``corrected`` policy). A UES/AGM
   style estimate: the number of bindings a new attribute adds per
   prefix tuple is upper-bounded, per input, by the input's maximum
   per-value frequency on any already-bound attribute (or its distinct
   count when disconnected). A subset DP picks the order minimising
   the worst per-prefix output bound — the quantity Lemma 3.5 bounds —
   with the cumulative product as tie-break.

3. **Plan racing** (:class:`PlanRacer`). The top-K candidate plans
   (order policy x operator) race on a budgeted sample of the key
   domain (a :func:`~repro.parallel.slicing.sliced_instance` over the
   first codes of each candidate's own level-0 axis); each round the
   slower half is killed and the survivors re-race on a sample
   ``growth`` times larger. The winner is cached per query signature
   and only re-raced when the feedback epoch moves — i.e. when the
   corrections changed materially — so a converged workload plans in
   O(1). The service feeds winners into its shared
   :class:`~repro.service.cache.PlanCache` (keyed by the same epoch)
   so ``repro serve`` tenants benefit without re-racing.

Corrections influence *plan choice only*; every ordering policy and
every raced plan returns byte-identical rows (the parity suites assert
this), so a stale-but-undetected correction can cost milliseconds,
never wrong answers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.engine.planner import (
    QueryPlan,
    attribute_order,
    plan_query,
    register_order_policy,
    run_query,
    statistics_for,
)
from repro.instrumentation import JoinStats, ensure_stats

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.relational.relation import Relation

# ---------------------------------------------------------------------------
# query signatures and input version stamps
# ---------------------------------------------------------------------------

def query_signature(query: "MultiModelQuery") -> tuple:
    """A structural key for *query*: input names, schemas, twig shapes.

    Two queries with the same signature are *candidates* for sharing
    corrections and race winners; whether a stored correction actually
    applies is decided by the version stamps (:func:`input_versions`),
    never by the signature alone.
    """
    relations = tuple((relation.name, relation.schema.attributes)
                      for relation in query.relations)
    twigs = tuple(
        (binding.name,
         tuple((node.name, node.tag) for node in binding.twig.nodes()))
        for binding in query.twigs)
    return (query.name, relations, twigs)


def input_versions(query: "MultiModelQuery") -> dict[str, tuple]:
    """Per-input version stamps at this instant.

    Immutable relations are replaced wholesale on update (the update
    layer builds a fresh object per version), so object identity plus
    cardinality stamps a relational version; documents are patched in
    place but bump :attr:`~repro.xml.model.XMLDocument.version` on
    every edit, so (identity, version) stamps a document. Stamps are
    compared for equality only — a mismatch means "do not consume".
    """
    versions: dict[str, tuple] = {}
    for relation in query.relations:
        versions[relation.name] = ("rel", id(relation), len(relation))
    for binding in query.twigs:
        versions[binding.name] = ("doc", id(binding.document),
                                  binding.document.version)
    return versions


# ---------------------------------------------------------------------------
# stage estimates (the UES/AGM-style upper-bound model)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StageEstimate:
    """One expansion level's estimated output upper bound.

    ``extension`` is the per-prefix-tuple binding bound contributed by
    ``source`` (the tightest covering input); ``cumulative`` is the
    running product — the upper bound on partial tuples alive after
    this level, the quantity the planner wants small early.
    """

    attribute: str
    prefix: tuple[str, ...]
    source: str
    extension: float
    cumulative: float


def _extension_bound(query: "MultiModelQuery", attribute: str,
                     bound: "set[str]") -> tuple[float, str]:
    """(bound, source input) on bindings of *attribute* per prefix tuple.

    For a relation sharing an already-bound attribute ``b``, at most
    ``max_frequency(b)`` rows — hence distinct *attribute* values —
    extend one prefix tuple; a disconnected input caps extensions at
    its distinct count. Twig inputs contribute their candidate
    distinct-value counts (the columnar stats carry no per-pair
    frequencies, so the twig-side bound is the loose one). The minimum
    over covering inputs is sound because every covering input must
    agree on the attribute's value.
    """
    from repro.xml.columnar import columnar

    stats = statistics_for(query)
    best = math.inf
    source = ""
    for relation in query.relations:
        if attribute not in relation.schema.attributes:
            continue
        columns = stats.relation_stats(relation).columns
        shared = [b for b in relation.schema.attributes
                  if b in bound and b != attribute]
        if shared:
            extension = min(columns[b].max_frequency for b in shared)
        else:
            extension = columns[attribute].distinct
        if extension < best:
            best, source = extension, relation.name
    for binding in query.twigs:
        if attribute not in binding.twig.attributes:
            continue
        view = columnar(binding.document)
        for query_node in binding.twig.nodes():
            if query_node.name != attribute:
                continue
            extension = view.distinct_value_count(query_node)
            if extension < best:
                best, source = extension, binding.name
    if best is math.inf:  # unreachable for well-formed queries
        best = 1.0
    return float(best), source


def estimated_stage_sizes(query: "MultiModelQuery",
                          order: "tuple[str, ...]",
                          store: "FeedbackStore | None" = None
                          ) -> list[StageEstimate]:
    """Per-prefix output upper bounds for expanding *query* in *order*.

    With *store* the raw bounds are multiplied by the (version-fresh)
    learned correction factors, turning upper bounds into calibrated
    estimates; without it they are the pure UES/AGM-style bounds.
    """
    estimates: list[StageEstimate] = []
    cumulative = 1.0
    prefix: tuple[str, ...] = ()
    for attribute in order:
        extension, source = _extension_bound(query, attribute, set(prefix))
        if store is not None:
            extension *= store.stage_factor(query, source, attribute, prefix)
        cumulative *= extension
        estimates.append(StageEstimate(attribute, prefix, source,
                                       extension, cumulative))
        prefix += (attribute,)
    return estimates


def observed_stage_sizes(stats: JoinStats,
                         order: Iterable[str]) -> dict[str, int]:
    """Observed per-attribute live-tuple counts from executed stats.

    The kernels label their per-level stages ``level <attr>`` /
    ``expand <attr>``; anything else (morsel markers, baseline plan
    nodes) is ignored. The *last* record per attribute wins — kernels
    record each level exactly once, after the run.
    """
    wanted = set(order)
    observed: dict[str, int] = {}
    for record in stats.stages:
        parts = record.label.split(" ", 1)
        if len(parts) == 2 and parts[1] in wanted:
            observed[parts[1]] = record.size
    return observed


# ---------------------------------------------------------------------------
# the feedback store
# ---------------------------------------------------------------------------

#: Correction factors are clamped to this band: a single wild sample
#: (e.g. an estimate floored at 1) must not poison the store forever.
FACTOR_CLAMP = 64.0

#: An EWMA move below this log-scale distance is immaterial: it neither
#: bumps the epoch nor triggers a re-race, which is what lets a
#: converged workload stop paying planning costs.
EPOCH_TOLERANCE = 0.25


@dataclass
class Correction:
    """One learned cardinality correction factor (observed/estimated)."""

    input_name: str
    attribute: str
    #: The executed prefix the factor was observed under (None = the
    #: marginal factor, applied when no exact-prefix sample exists).
    prefix: "tuple[str, ...] | None"
    factor: float = 1.0
    samples: int = 0

    def fold(self, observed_factor: float, *,
             smoothing: float = 0.5) -> float:
        """EWMA the new sample in; returns the absolute log-scale move.

        A first sample's move is its deviation from the neutral factor
        1.0 the planner was already assuming — an observation that
        merely confirms the estimate is not a material change, no
        matter how new its key is."""
        clamped = min(max(observed_factor, 1.0 / FACTOR_CLAMP),
                      FACTOR_CLAMP)
        if self.samples == 0:
            updated = clamped
        else:
            updated = (1.0 - smoothing) * self.factor + smoothing * clamped
        move = abs(math.log(updated) - math.log(self.factor))
        self.factor = updated
        self.samples += 1
        return move


class FeedbackStore:
    """Version-keyed cardinality corrections learned from executed plans.

    Keys are per-(input, attribute, prefix); version stamps are held
    per query signature and checked on every read, so a correction
    observed against superseded data is *never* consumed (it returns
    the neutral factor 1.0 until re-learned or explicitly inherited by
    the update layer). :attr:`epoch` advances only on material changes
    — first observations, large EWMA moves, invalidations — and is the
    coupling point for the plan racer and the service plan cache.
    """

    def __init__(self, *, smoothing: float = 0.5,
                 epoch_tolerance: float = EPOCH_TOLERANCE,
                 stamp_fn=None):
        self.smoothing = smoothing
        self.epoch_tolerance = epoch_tolerance
        #: How inputs are version-stamped. The default is physical
        #: identity (:func:`input_versions`); the service substitutes a
        #: logical stamp (the applied-batch count) because its snapshot
        #: queries run over detached per-snapshot clones whose object
        #: identities never recur, while equal batch counts *are* equal
        #: logical states.
        self._stamp_fn = stamp_fn if stamp_fn is not None \
            else input_versions
        #: (scope, input, attribute, prefix-or-None) -> Correction.
        self._corrections: dict[tuple, Correction] = {}
        #: scope -> input name -> version stamp at observation time.
        self._versions: dict[tuple, dict[str, tuple]] = {}
        self.epoch = 0
        self.observations = 0

    # -- learning ----------------------------------------------------------

    def observe(self, query: "MultiModelQuery", order: "tuple[str, ...]",
                stats: JoinStats) -> int:
        """Fold one executed query's stage counters into corrections.

        Returns the number of (attribute, prefix) levels that produced
        a sample. Estimates are the *raw* (uncorrected) bounds, so the
        factors always calibrate the static model rather than chasing
        their own output.
        """
        observed = observed_stage_sizes(stats, order)
        if not observed:
            return 0
        scope = query_signature(query)
        estimates = estimated_stage_sizes(query, order)
        material = False
        folded = 0
        for estimate in estimates:
            size = observed.get(estimate.attribute)
            if size is None:
                continue
            raw = max(estimate.cumulative, 1.0)
            sample = max(size, 0) / raw
            for prefix in (estimate.prefix, None):
                key = (scope, estimate.source, estimate.attribute, prefix)
                correction = self._corrections.get(key)
                if correction is None:
                    correction = Correction(estimate.source,
                                            estimate.attribute, prefix)
                    self._corrections[key] = correction
                move = correction.fold(sample, smoothing=self.smoothing)
                if move > self.epoch_tolerance:
                    material = True
            folded += 1
        self._versions[scope] = self._stamp_fn(query)
        self.observations += 1
        if material:
            self.epoch += 1
        return folded

    # -- reading (version-key checked) -------------------------------------

    def _fresh(self, scope: tuple, query: "MultiModelQuery",
               input_name: str) -> bool:
        """Is the stored stamp for *input_name* the input's current one?"""
        recorded = self._versions.get(scope)
        if recorded is None or input_name not in recorded:
            return False
        return recorded[input_name] == \
            self._stamp_fn(query).get(input_name)

    def stage_factor(self, query: "MultiModelQuery", input_name: str,
                     attribute: str,
                     prefix: "tuple[str, ...]") -> float:
        """The learned factor for one expansion level (1.0 if unknown
        **or stale** — the version-key check that keeps post-churn
        plans from consuming superseded corrections)."""
        scope = query_signature(query)
        if not self._fresh(scope, query, input_name):
            return 1.0
        correction = (self._corrections.get(
                          (scope, input_name, attribute, prefix))
                      or self._corrections.get(
                          (scope, input_name, attribute, None)))
        return correction.factor if correction is not None else 1.0

    def corrected_domain_estimate(self, query: "MultiModelQuery",
                                  attribute: str, estimate: int) -> int:
        """*estimate* scaled by the level-0 correction for *attribute*
        (used by ``choose_partitions`` so morsel counts follow observed,
        not nominal, cardinalities)."""
        _extension, source = _extension_bound(query, attribute, set())
        factor = self.stage_factor(query, source, attribute, ())
        return max(0, int(round(estimate * factor)))

    # -- update-layer hooks ------------------------------------------------

    def note_input_update(self, query: "MultiModelQuery", input_name: str,
                          *, churn: bool) -> None:
        """One input of *query* changed: inherit or invalidate.

        A small delta *inherits* — the maintained statistics were
        patched, not rebuilt, so the learned factors still describe the
        data and only the version stamp advances. A churn burst
        *invalidates*: every correction attributed to the input is
        dropped and the epoch bumps (forcing a re-race)."""
        scope = query_signature(query)
        if churn:
            stale = [key for key in self._corrections
                     if key[0] == scope and key[1] == input_name]
            for key in stale:
                del self._corrections[key]
            recorded = self._versions.get(scope)
            if recorded is not None:
                recorded.pop(input_name, None)
            if stale or recorded is not None:
                self.epoch += 1
            return
        recorded = self._versions.get(scope)
        if recorded is not None and input_name in recorded:
            recorded[input_name] = \
                self._stamp_fn(query).get(input_name)

    def invalidate(self, query: "MultiModelQuery | None" = None) -> None:
        """Drop every correction (of *query*'s scope, or all of them)."""
        if query is None:
            if self._corrections or self._versions:
                self.epoch += 1
            self._corrections.clear()
            self._versions.clear()
            return
        scope = query_signature(query)
        stale = [key for key in self._corrections if key[0] == scope]
        for key in stale:
            del self._corrections[key]
        if self._versions.pop(scope, None) is not None or stale:
            self.epoch += 1

    def bump_epoch(self) -> int:
        """Advance the epoch without touching corrections (the service
        calls this per applied update batch, keying stale cached plans
        out of its :class:`~repro.service.cache.PlanCache`)."""
        self.epoch += 1
        return self.epoch

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counters for dashboards and the service ``stats`` endpoint."""
        return {
            "corrections": len(self._corrections),
            "scopes": len(self._versions),
            "epoch": self.epoch,
            "observations": self.observations,
        }

    def __repr__(self) -> str:
        return (f"FeedbackStore({len(self._corrections)} corrections, "
                f"epoch {self.epoch}, {self.observations} observations)")


#: The process-wide default store: the ``corrected`` order policy and
#: the plain ``run_query`` partition chooser read it; ``repro explain``
#: and :class:`AdaptivePlanner` write it unless given their own.
_DEFAULT_STORE = FeedbackStore()


def default_feedback() -> FeedbackStore:
    """The process-wide default :class:`FeedbackStore`."""
    return _DEFAULT_STORE


# ---------------------------------------------------------------------------
# bound-driven ordering (the ``bound`` and ``corrected`` policies)
# ---------------------------------------------------------------------------

#: Above this many attributes the subset DP (O(2^n * n)) yields to the
#: greedy smallest-extension heuristic.
MAX_DP_ATTRIBUTES = 12


def _bound_driven_order(query: "MultiModelQuery",
                        store: "FeedbackStore | None"
                        ) -> tuple[str, ...]:
    """The order minimising (max per-prefix bound, total, lexicographic).

    Subset DP: the bound on extending a bound set ``S`` by ``x``
    depends only on ``S``, so states are subsets carrying the best
    (worst-stage, sum-of-stages, cumulative, order) found — a heuristic
    DP (the cumulative is path-dependent) that is exact on the max
    criterion whenever extensions are monotone, and deterministic
    always via the lexicographic order tie-break.
    """
    attributes = query.attributes
    if len(attributes) > MAX_DP_ATTRIBUTES:
        remaining = set(attributes)
        order: list[str] = []
        while remaining:
            bound = set(order)

            def cost(attribute: str) -> tuple[float, str]:
                extension, source = _extension_bound(query, attribute,
                                                     bound)
                if store is not None:
                    extension *= store.stage_factor(
                        query, source, attribute, tuple(order))
                return (extension, attribute)

            pick = min(remaining, key=cost)
            order.append(pick)
            remaining.discard(pick)
        return tuple(order)

    # DP over subsets: state value = (max stage bound, stage sum,
    # order tuple) minimised lexicographically; cumulative rides along.
    start: tuple[float, float, tuple[str, ...], float] = \
        (0.0, 0.0, (), 1.0)
    states: dict[frozenset, tuple[float, float, tuple[str, ...], float]] = {
        frozenset(): start}
    for _ in attributes:
        successors: dict[frozenset,
                         tuple[float, float, tuple[str, ...], float]] = {}
        for subset, (worst, total, order, cumulative) in states.items():
            for attribute in attributes:
                if attribute in subset:
                    continue
                extension, source = _extension_bound(query, attribute,
                                                     set(subset))
                if store is not None:
                    extension *= store.stage_factor(query, source,
                                                    attribute, order)
                stage = cumulative * extension
                candidate = (max(worst, stage), total + stage,
                             order + (attribute,), stage)
                key = subset | {attribute}
                incumbent = successors.get(key)
                if incumbent is None or candidate[:3] < incumbent[:3]:
                    successors[key] = candidate
        states = successors
    (_worst, _total, order, _cumulative), = states.values()
    return order


def bound_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """The ``bound`` policy: pure upper-bound-driven ordering."""
    return _bound_driven_order(query, None)


def corrected_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """The ``corrected`` policy: bound-driven ordering calibrated by the
    default feedback store's (version-fresh) correction factors."""
    return _bound_driven_order(query, default_feedback())


register_order_policy("bound", bound_order)
register_order_policy("corrected", corrected_order)


# ---------------------------------------------------------------------------
# plan racing
# ---------------------------------------------------------------------------

#: Order policies whose (deduplicated) picks seed the candidate grid.
RACE_POLICIES = ("appearance", "domain", "connected", "bound", "corrected")

#: A challenger must beat the incumbent winner by this factor on the
#: race sample to dethrone it — hysteresis against timing noise.
HYSTERESIS = 1.25

#: Below this projected sample time (ms) a race round is pure noise:
#: nothing separates the candidates above the clock's resolution, so
#: the race resolves deterministically — the incumbent if one is still
#: racing, else the best-ranked candidate — rather than letting
#: scheduler jitter crown (and later dethrone) arbitrary winners on
#: micro-queries. Racing exists to correct big mistakes; a query whose
#: every candidate finishes in under half a millisecond has none.
MIN_SIGNAL_MS = 0.5


@dataclass(frozen=True)
class RaceContender:
    """One raced candidate: its plan and last sampled wall time."""

    plan: QueryPlan
    sample_ms: float
    eliminated_round: int  # 0 = won


@dataclass(frozen=True)
class RaceReport:
    """The outcome of one race (or cache hit) for a query signature."""

    winner: QueryPlan
    contenders: tuple[RaceContender, ...] = ()
    rounds: int = 0
    raced: bool = False


class PlanRacer:
    """Races the top-K candidate plans on budgeted key-domain samples.

    Candidates are every distinct (order policy pick, operator) pair,
    ranked by their corrected worst-stage bound; the top ``top_k``
    (plus the static planner's own choice, as a guard) race on a
    :func:`~repro.parallel.slicing.sliced_instance` covering the first
    ``sample_codes`` codes of each candidate's own level-0 axis.
    Successive halving kills the slower half each round and grows the
    sample by ``growth``; the survivor is cached per query signature
    until the feedback epoch moves.
    """

    def __init__(self, store: "FeedbackStore | None" = None, *,
                 top_k: int = 3, sample_codes: int = 64,
                 growth: int = 4):
        self.store = store if store is not None else default_feedback()
        self.top_k = max(1, top_k)
        self.sample_codes = max(1, sample_codes)
        self.growth = max(2, growth)
        #: scope -> (epoch at race time, winning plan).
        self._winners: dict[tuple, tuple[int, QueryPlan]] = {}
        self.races = 0

    # -- candidate generation ----------------------------------------------

    def candidates(self, query: "MultiModelQuery") -> list[QueryPlan]:
        """The top-K candidate plans, ranked by corrected bound."""
        operators = ["xjoin"] if query.twigs \
            else ["generic_join", "leapfrog"]
        seen: set[tuple] = set()
        ranked: list[tuple[float, str, QueryPlan]] = []
        for policy in RACE_POLICIES:
            order = attribute_order(query, policy)
            estimates = estimated_stage_sizes(query, order, self.store)
            worst = max((e.cumulative for e in estimates), default=0.0)
            for operator in operators:
                key = (order, operator)
                if key in seen:
                    continue
                seen.add(key)
                plan = QueryPlan(order=order, algorithm=operator,
                                 policy=policy)
                ranked.append((worst, policy, plan))
        ranked.sort(key=lambda item: (item[0], item[1]))
        top = [plan for _, _, plan in ranked[:self.top_k]]
        static = plan_query(query)
        if (static.order, static.algorithm) not in {
                (plan.order, plan.algorithm) for plan in top}:
            top.append(replace(static, twig_algorithms=(),
                               path_cardinalities=(),
                               partitions=1, partition_axis=None))
        return top

    # -- the race ----------------------------------------------------------

    def _sample_ms(self, query: "MultiModelQuery", plan: QueryPlan,
                   sample_codes: int) -> float:
        """Projected full-run milliseconds from a level-0 code sample.

        The sample runs the kernel over a
        :func:`~repro.parallel.slicing.sliced_instance` covering the
        first ``sample_codes`` codes of the candidate's own level-0
        axis, then extrapolates linearly to the axis' full code domain.
        The normalisation matters: candidates root different
        attributes, so without it a plan with a huge level-0 domain
        races a tiny fraction of its work against another plan's full
        run and looks spuriously fast.
        """
        from repro.parallel.slicing import sliced_instance

        instance = EncodedInstance.from_query(query, plan.order)
        axis = plan.order[0] if plan.order else None
        dictionary = instance.dictionaries.get(axis) \
            if axis is not None else None
        domain = len(dictionary.values) if dictionary is not None else 0
        sample = sliced_instance(instance, 0, sample_codes)
        start = time.perf_counter()
        get_algorithm(plan.algorithm).run(sample)
        elapsed = (time.perf_counter() - start) * 1e3
        covered = min(sample_codes, domain)
        if domain and covered:
            elapsed *= domain / covered
        return elapsed


    def race(self, query: "MultiModelQuery") -> RaceReport:
        """The winning plan for *query* (cached while the epoch holds).

        A previous winner re-races as the *incumbent* with hysteresis:
        a challenger must beat it by :data:`HYSTERESIS` on the sample,
        or the incumbent is re-crowned. Without this, near-tied
        candidates flip with timing noise on small inputs — and every
        flip executes a different order, mints new prefix-keyed
        corrections, bumps the epoch, and forces yet another race.
        """
        scope = query_signature(query)
        cached = self._winners.get(scope)
        if cached is not None and cached[0] == self.store.epoch:
            return RaceReport(winner=cached[1])
        incumbent = cached[1] if cached is not None else None
        contenders = self.candidates(query)
        if incumbent is not None and \
                (incumbent.order, incumbent.algorithm) not in {
                    (plan.order, plan.algorithm) for plan in contenders}:
            contenders.append(incumbent)
        if len(contenders) == 1:
            winner = contenders[0]
            self._winners[scope] = (self.store.epoch, winner)
            return RaceReport(winner=winner)

        def same(plan: QueryPlan, other: "QueryPlan | None") -> bool:
            return other is not None and \
                (plan.order, plan.algorithm) == \
                (other.order, other.algorithm)

        self.races += 1
        sample = self.sample_codes
        alive = list(contenders)
        report: dict[tuple, RaceContender] = {}
        rounds = 0
        winner: "QueryPlan | None" = None
        while winner is None:
            rounds += 1
            timed = [(self._sample_ms(query, plan, sample), index, plan)
                     for index, plan in enumerate(alive)]
            timed.sort(key=lambda item: item[:2])
            if timed[-1][0] < MIN_SIGNAL_MS:
                # All candidates under the noise floor: keep whoever
                # already holds the crown, else the best-ranked plan
                # (``alive`` preserves the candidates' bound ranking
                # in round one).
                for ms, _, plan in timed:
                    report[(plan.order, plan.algorithm)] = \
                        RaceContender(plan, ms, 0)
                winner = incumbent if incumbent is not None else alive[0]
                break
            keep = max(1, len(timed) // 2)
            survivors = [plan for _, _, plan in timed[:keep]]
            incumbent_ms = next(
                (ms for ms, _, plan in timed
                 if same(plan, incumbent)), None)
            for position, (ms, _, plan) in enumerate(timed):
                eliminated = 0 if position < keep else rounds
                report[(plan.order, plan.algorithm)] = RaceContender(
                    plan, ms, eliminated)
            if incumbent_ms is not None and not any(
                    same(plan, incumbent) for plan in survivors):
                if timed[0][0] * HYSTERESIS >= incumbent_ms:
                    # A statistical tie: the incumbent stays crowned.
                    winner = incumbent
                    break
                incumbent = None  # beaten by a clear margin — out
            if len(survivors) == 1:
                winner = survivors[0]
                break
            alive = survivors
            sample *= self.growth
        self._winners[scope] = (self.store.epoch, winner)
        return RaceReport(winner=winner,
                          contenders=tuple(report.values()),
                          rounds=rounds, raced=True)


# ---------------------------------------------------------------------------
# the adaptive planner facade
# ---------------------------------------------------------------------------

class AdaptivePlanner:
    """Feedback loop + bound-driven ordering + plan racing, in one.

    ``plan`` returns the raced (or cached) winner with corrected stage
    estimates and corrected partition counts; ``execute`` runs it and
    folds the observed stage sizes back into the store, which bumps the
    epoch — and thereby triggers a future re-race — only when the
    corrections moved materially. The loop therefore *converges*: once
    observations match estimates, planning is a cache hit.
    """

    def __init__(self, store: "FeedbackStore | None" = None, *,
                 race: bool = True, top_k: int = 3,
                 sample_codes: int = 64):
        self.store = store if store is not None else default_feedback()
        self.race = race
        self.racer = PlanRacer(self.store, top_k=top_k,
                               sample_codes=sample_codes)

    @property
    def epoch(self) -> int:
        """The store's current epoch (plan-cache key component)."""
        return self.store.epoch

    def plan(self, query: "MultiModelQuery", *,
             workers: int = 0) -> QueryPlan:
        """The adaptive plan: raced winner, corrected estimates and
        partition counts, planner-chosen twig matchers."""
        if self.race:
            winner = self.racer.race(query).winner
            plan = plan_query(query, order=winner.order,
                              algorithm=winner.algorithm,
                              workers=workers)
            plan = replace(plan, policy=winner.policy)
        else:
            order = _bound_driven_order(query, self.store)
            plan = plan_query(query, order=order, workers=workers)
            plan = replace(plan, policy="corrected")
        estimates = estimated_stage_sizes(query, plan.order, self.store)
        plan = replace(plan, stage_estimates=tuple(
            (e.attribute, int(round(e.cumulative))) for e in estimates))
        if workers > 1 and plan.partition_axis is not None:
            domain = statistics_for(query).domain_estimate(
                plan.partition_axis)
            corrected = self.store.corrected_domain_estimate(
                query, plan.partition_axis, domain)
            if corrected != domain:
                from repro.engine.planner import choose_partitions

                partitions, axis = choose_partitions(
                    query, plan.order, workers,
                    domain_estimate=corrected)
                plan = replace(plan, partitions=partitions,
                               partition_axis=axis)
        return plan

    def observe(self, query: "MultiModelQuery",
                order: "tuple[str, ...]", stats: JoinStats) -> int:
        """Fold one executed plan's counters into the store."""
        return self.store.observe(query, order, stats)

    def execute(self, query: "MultiModelQuery", *, workers: int = 0,
                stats: JoinStats | None = None) -> "Relation":
        """Plan adaptively, run, observe; returns the result relation."""
        plan = self.plan(query, workers=workers)
        stats = JoinStats() if stats is None else ensure_stats(stats)
        result = run_query(query, order=plan.order,
                           algorithm=plan.algorithm, stats=stats,
                           workers=workers)
        self.observe(query, plan.order, stats)
        return result

    def __repr__(self) -> str:
        return (f"AdaptivePlanner(epoch {self.epoch}, "
                f"{self.racer.races} races, race={self.race})")
