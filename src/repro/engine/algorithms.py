"""The built-in :class:`JoinAlgorithm` implementations.

All four algorithm families run through one
:class:`~repro.engine.encoded.EncodedInstance`:

* :class:`GenericJoinAlgorithm` — NPRR-style hashed trie descent;
* :class:`LeapfrogTriejoinAlgorithm` — LFTJ sorted seeks, now plain int
  comparisons (code order == value order);
* :class:`XJoinAlgorithm` — the paper's Algorithm 1 over relations and
  twig path tries together, with the ad-prefilter / partial-validation
  modes reading *decoded* values through the instance's dictionaries;
* :class:`BaselineJoinAlgorithm` — the traditional dual-engine baseline.
  It deliberately bypasses the encoded tries: it *is* the paper's foil
  (binary relational plans + TwigStack, joined at the end), so it runs
  from the source query while sharing the unified invocation surface.

The kernels preserve the stage/emit/filter stats contract of the
pre-engine implementations (per-level ``record_stage`` sizes — the
quantity Lemma 3.5 bounds — plus emit and filter counters). Seek counts
remain per-probe but run slightly lower than the pre-engine numbers: the
last-level fast paths no longer probe the seeding trie against itself,
and LFTJ's innermost level now runs as one batch
:func:`~repro.buffers.kernels.intersect_many` call over the raw key
buffers (each galloping probe counts as one seek and one comparison),
so seek totals are comparable across engine algorithms, not across
engine versions. The hashed kernels (GenericJoin, XJoin) keep dict
membership probes at the last level: an O(1) hash probe beats a Python
galloping loop when the non-seed side is a hash map rather than a
sorted buffer.
"""

from __future__ import annotations

from repro.buffers.kernels import intersect_many
from repro.engine.encoded import EncodedInstance, EncodedTrieIterator
from repro.engine.interface import register
from repro.errors import EngineError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value


def _reject_twig_instance(algorithm: str, instance: EncodedInstance) -> None:
    """The relational kernels evaluate the *value* join only: they know
    nothing of twig structure validation or surrogate erasure, so running
    them on a twig-bearing instance would silently return wrong tuples.
    A trie-less reference instance (the baseline's) is equally unusable —
    the kernels would take the 0-ary branch and emit a bogus TRUE."""
    if instance.query is not None and instance.query.twigs:
        raise EngineError(
            f"{algorithm!r} cannot evaluate twig inputs (the instance "
            f"carries twig structure filters); use the 'xjoin' algorithm")
    if not instance.tries and instance.relations:
        raise EngineError(
            f"{algorithm!r} needs an encoded instance with tries; this "
            f"one is a trie-less reference instance (baseline only)")


class GenericJoinAlgorithm:
    """Attribute-at-a-time expansion with hashed trie descent."""

    name = "generic_join"

    def run(self, instance: EncodedInstance, *,
            stats: JoinStats | None = None) -> Relation:
        """Evaluate the instance by hashed attribute-at-a-time descent."""
        _reject_twig_instance(self.name, instance)
        stats = ensure_stats(stats)
        order = instance.order
        depth = len(order)
        participation = instance.participation
        nodes = [trie.root for trie in instance.tries]

        stats.start_timer()
        rows: list[tuple[int, ...]] = []
        binding: list[int] = []
        alive = [0] * depth
        seeks = 0  # flushed in one bulk count; a call per probe is hot

        def search(level: int) -> None:
            nonlocal seeks
            participants = participation[level]
            candidate_nodes = [nodes[i] for i in participants]
            # The relation with the fewest continuations seeds the level.
            seed = min(candidate_nodes, key=len)
            if level + 1 == depth:
                # Last level: no descent needed, emit the intersection.
                prefix = tuple(binding)
                produced = 0
                others = [node.children for node in candidate_nodes
                          if node is not seed]
                if others:
                    for code in seed.keys:
                        feasible = True
                        for children in others:
                            seeks += 1
                            if code not in children:
                                feasible = False
                                break
                        if feasible:
                            rows.append(prefix + (code,))
                            produced += 1
                else:
                    seeks += len(seed.keys)
                    rows.extend(prefix + (code,) for code in seed.keys)
                    produced = len(seed.keys)
                alive[level] += produced
                stats.count_emitted(produced)
                return
            for code in seed.keys:
                children = []
                feasible = True
                for node in candidate_nodes:
                    seeks += 1
                    child = node.children.get(code)
                    if child is None:
                        feasible = False
                        break
                    children.append(child)
                if not feasible:
                    continue
                for participant, child in zip(participants, children):
                    nodes[participant] = child
                binding.append(code)
                alive[level] += 1
                search(level + 1)
                binding.pop()
                # candidate_nodes still holds this level's entry state.
                for participant, old in zip(participants, candidate_nodes):
                    nodes[participant] = old

        if depth == 0:
            rows.append(())
        else:
            search(0)
            stats.count_seeks(seeks)
            for level, count in enumerate(alive):
                stats.record_stage(f"level {order[level]}", count)
        stats.stop_timer()
        return instance.result_relation(rows)


class LeapfrogTriejoinAlgorithm:
    """Veldhuizen's LFTJ: leapfrogging sorted trie iterators per level."""

    name = "leapfrog"

    def run(self, instance: EncodedInstance, *,
            stats: JoinStats | None = None) -> Relation:
        """Evaluate the instance by leapfrogging sorted trie iterators."""
        _reject_twig_instance(self.name, instance)
        stats = ensure_stats(stats)
        order = instance.order
        depth = len(order)
        iterators = [EncodedTrieIterator(trie) for trie in instance.tries]
        participants: list[list[EncodedTrieIterator]] = [
            [iterators[i] for i in level]
            for level in instance.participation]

        stats.start_timer()
        rows: list[tuple[int, ...]] = []
        binding: list[int] = []
        alive = [0] * depth
        comparisons = 0  # flushed in bulk; a counter call per key is hot
        seeks = 0

        def search(level: int) -> None:
            nonlocal comparisons, seeks
            its = participants[level]
            for it in its:
                it.open()
            produced = 0
            if level + 1 == depth:
                # Innermost level: one batch k-way intersection over the
                # raw key buffers replaces per-element leapfrogging. Each
                # galloping probe counts as one seek and one comparison.
                common, probes = intersect_many(
                    [it.current_keys() for it in its])
                seeks += probes
                comparisons += probes
                prefix = tuple(binding)
                rows.extend(prefix + (code,) for code in common)
                produced = len(common)
            elif not any(it.at_end() for it in its):
                its_sorted = sorted(its, key=EncodedTrieIterator.key)
                count = len(its_sorted)
                p = 0
                max_key = its_sorted[-1].key()
                while True:
                    it = its_sorted[p]
                    least = it.key()
                    comparisons += 1
                    if least == max_key:
                        binding.append(least)
                        produced += 1
                        search(level + 1)
                        binding.pop()
                        it.next()
                        seeks += 1
                        if it.at_end():
                            break
                        max_key = it.key()
                    else:
                        it.seek(max_key)
                        seeks += 1
                        if it.at_end():
                            break
                        max_key = it.key()
                    p = (p + 1) % count
            alive[level] += produced
            for it in its:
                it.up()

        if depth == 0:
            rows.append(())
        else:
            search(0)
            stats.count_comparisons(comparisons)
            stats.count_seeks(seeks)
            stats.count_emitted(len(rows))
            for level, count in enumerate(alive):
                stats.record_stage(f"level {order[level]}", count)
        stats.stop_timer()
        return instance.result_relation(rows)


class XJoinAlgorithm:
    """The paper's Algorithm 1 over the combined relational+twig tries.

    Trie descent runs on codes; the twig-side filters (A-D prefilter,
    partial validation, the final structure filter) see decoded values,
    looked up per accepted candidate through the level's dictionary.
    """

    name = "xjoin"

    def run(self, instance: EncodedInstance, *,
            stats: JoinStats | None = None) -> Relation:
        """Evaluate the combined relational+twig instance (Algorithm 1),
        projected onto the query attributes with surrogates erased."""
        stats = ensure_stats(stats)
        query = instance.query
        if query is None:
            raise EngineError(
                "xjoin needs an instance built with EncodedInstance."
                "from_query (it carries the twig-side filters)")
        if not instance.tries and (query.relations or query.twigs):
            raise EngineError(
                "'xjoin' needs an encoded instance with tries; this one "
                "is a trie-less reference instance (baseline only)")
        filters = instance.twig_filters
        expansion = instance.order
        depth = len(expansion)

        # Any empty input empties the whole join; bail out before
        # expanding (this also keeps Lemma 3.5 exact when the AGM bound
        # is zero — otherwise early attributes could briefly accumulate
        # partial tuples that a later, empty input would discard).
        if instance.has_empty_input():
            stats.record_stage("empty input", 0)
            return Relation(query.name, Schema(query.attributes))

        participation = instance.participation
        nodes = [trie.root for trie in instance.tries]
        validators = filters.validators if filters else {}
        partial_validators = filters.partial_validators if filters else {}
        ad_indexes = filters.ad_indexes if filters else []
        twig_attrs = filters.twig_attrs if filters else {}
        # Decoded bindings are maintained only when a twig filter can ask
        # for them; pure trie descent never leaves code space.
        track_values = bool(validators or partial_validators or ad_indexes)

        stats.start_timer()
        binding_values: dict[str, Value] = {}
        rows: list[tuple[int, ...]] = []
        binding: list[int] = []
        alive = [0] * depth
        seeks = 0  # flushed in one bulk count; a call per probe is hot

        def ad_feasible(attribute: str, value: Value) -> bool:
            """Candidate pruning through the A-D value-pair indexes."""
            for _twig, upper_name, lower_name, index in ad_indexes:
                if attribute == lower_name and upper_name in binding_values:
                    if value not in index.lower_values_for(
                            binding_values[upper_name]):
                        return False
                if attribute == upper_name and lower_name in binding_values:
                    if value not in index.upper_values_for(
                            binding_values[lower_name]):
                        return False
            return True

        def partially_valid(attribute: str) -> bool:
            """Prune via embeddability of the bound twig attributes."""
            for twig_name, attrs in twig_attrs.items():
                if attribute not in attrs:
                    continue
                bound = {a: v for a, v in binding_values.items()
                         if a in attrs}
                if not partial_validators[twig_name].validate_subset(bound):
                    return False
            return True

        def structure_valid() -> bool:
            """Algorithm 1's final filter, as each tuple completes."""
            for twig_name, validator in validators.items():
                values = {a: binding_values[a]
                          for a in twig_attrs[twig_name]}
                if not validator.validate(values, stats=stats):
                    return False
            return True

        def filters_admit(level: int, attribute: str, code: int) -> bool:
            """Decode the candidate and run the pre-descent twig filters;
            on success the decoded value stays in ``binding_values``."""
            value = instance.decode_value(level, code)
            if ad_indexes and not ad_feasible(attribute, value):
                stats.count_filtered()
                return False
            binding_values[attribute] = value
            if partial_validators and not partially_valid(attribute):
                del binding_values[attribute]
                stats.count_filtered()
                return False
            return True

        def search(level: int) -> None:
            nonlocal seeks
            attribute = expansion[level]
            participants = participation[level]
            participant_nodes = [nodes[i] for i in participants]
            seed = min(participant_nodes, key=len)
            if level + 1 == depth:
                # Last level: no descent needed, filter + emit in place.
                prefix = tuple(binding)
                others = [node.children for node in participant_nodes
                          if node is not seed]
                for code in seed.keys:
                    feasible = True
                    for children in others:
                        seeks += 1
                        if code not in children:
                            feasible = False
                            break
                    if not feasible:
                        continue
                    if track_values and not filters_admit(level, attribute,
                                                          code):
                        continue
                    alive[level] += 1
                    if not validators or structure_valid():
                        rows.append(prefix + (code,))
                        stats.count_emitted()
                    if track_values:
                        del binding_values[attribute]
                return
            for code in seed.keys:
                children = []
                feasible = True
                for node in participant_nodes:
                    seeks += 1
                    child = node.children.get(code)
                    if child is None:
                        feasible = False
                        break
                    children.append(child)
                if not feasible:
                    continue
                if track_values and not filters_admit(level, attribute,
                                                      code):
                    continue
                alive[level] += 1
                binding.append(code)
                for participant, child in zip(participants, children):
                    nodes[participant] = child
                search(level + 1)
                # participant_nodes still holds this level's entry state.
                for participant, old in zip(participants, participant_nodes):
                    nodes[participant] = old
                binding.pop()
                if track_values:
                    del binding_values[attribute]

        if depth == 0:
            rows.append(())
        else:
            search(0)
            stats.count_seeks(seeks)
            for level, count in enumerate(alive):
                stats.record_stage(f"expand {expansion[level]}", count)
        stats.stop_timer()
        result = instance.result_relation(rows, name=query.name)
        if instance.erase_structural:
            from repro.core.surrogate import erase_surrogates

            result = Relation(query.name, result.schema,
                              [erase_surrogates(row) for row in result])
        return result.project(query.attributes, name=query.name)


class BaselineJoinAlgorithm:
    """Adapter: the traditional dual-engine plan behind the unified
    interface. Evaluates the relational sub-query with binary join plans
    and each twig with TwigStack, then joins the two results — on the
    *source* inputs, since being unencoded is the point of the foil."""

    name = "baseline"

    def run(self, instance: EncodedInstance, *,
            stats: JoinStats | None = None) -> Relation:
        """Evaluate the source query with the traditional dual-engine
        plan (binary joins + TwigStack, joined at the end)."""
        from repro.core.baseline import baseline_join
        from repro.core.multimodel import MultiModelQuery

        query = instance.query
        if query is None:
            query = MultiModelQuery(instance.relations, name=instance.name)
        return baseline_join(query, stats=stats)


GENERIC_JOIN = register(GenericJoinAlgorithm())
LEAPFROG = register(LeapfrogTriejoinAlgorithm())
XJOIN = register(XJoinAlgorithm())
BASELINE = register(BaselineJoinAlgorithm())
