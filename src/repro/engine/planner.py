"""Stats-driven planning: attribute orders and algorithm choice.

Any attribute order keeps the worst-case optimal algorithms optimal (the
bound argument is order-independent), but constants differ wildly — the
``bench_ablation_order`` benchmark quantifies this. The planner chooses
both the expansion order and the algorithm from *cached* statistics:
per-relation :class:`~repro.relational.statistics.RelationStats` (shared
through a weakref-evicting cache, so repeated planning of the same inputs
never rescans ``distinct_values`` and dropped inputs are never pinned)
plus per-twig-node candidate counts.

Order policies, preserved from the pre-engine planner as named strategies:

* ``appearance`` — relational schemas first, then twig pre-order (default).
* ``domain`` — globally sort by estimated candidate-domain size.
* ``connected`` — greedy: start from the attribute with the smallest
  candidate domain, then repeatedly pick an attribute sharing a hyperedge
  with the bound set, avoiding accidental cartesian expansions.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engine.encoded import EncodedInstance
from repro.engine.interface import available_algorithms, get_algorithm
from repro.errors import PlanError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.statistics import RelationStats, relation_stats

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery

# ---------------------------------------------------------------------------
# cached statistics
# ---------------------------------------------------------------------------

#: id(relation) -> (weakref, stats). Keyed by id for O(1) lookup without
#: hashing the row set; the weakref's eviction callback removes the entry
#: the moment the relation is collected, so the cache never pins inputs
#: (and a recycled id can never alias a dead entry).
_RELATION_STATS_CACHE: "dict[int, tuple[weakref.ref, RelationStats]]" = {}


def cached_relation_stats(relation: Relation) -> RelationStats:
    """:func:`relation_stats`, memoised per (live) relation object."""
    key = id(relation)
    entry = _RELATION_STATS_CACHE.get(key)
    if entry is not None and entry[0]() is relation:
        return entry[1]
    stats = relation_stats(relation)

    def evict(_ref: weakref.ref, key: int = key) -> None:
        _RELATION_STATS_CACHE.pop(key, None)

    _RELATION_STATS_CACHE[key] = (weakref.ref(relation, evict), stats)
    return stats


class QueryStatistics:
    """Cached per-input statistics for one multi-model query.

    Relation columns come from the shared :func:`cached_relation_stats`
    cache; twig-node candidate-value counts are computed once per
    instance. ``domain_estimate(a)`` is the smallest number of distinct
    values any input offers for attribute ``a`` — the planner's
    candidate-domain estimate.
    """

    def __init__(self, query: "MultiModelQuery"):
        # Held weakly so the memoised statistics never pin a dropped
        # query (and its documents) in the module-level cache.
        self._query_ref = weakref.ref(query)
        self._estimates: dict[str, int] | None = None

    @property
    def query(self) -> "MultiModelQuery":
        query = self._query_ref()
        if query is None:
            raise PlanError(
                "the query behind these statistics has been released")
        return query

    def relation_stats(self, relation: Relation) -> RelationStats:
        return cached_relation_stats(relation)

    def domain_estimates(self) -> dict[str, int]:
        if self._estimates is not None:
            return self._estimates
        estimates: dict[str, int] = {}

        def shrink(attribute: str, count: int) -> None:
            current = estimates.get(attribute)
            if current is None or count < current:
                estimates[attribute] = count

        for relation in self.query.relations:
            stats = self.relation_stats(relation)
            for attribute, column in stats.columns.items():
                shrink(attribute, column.distinct)
        for binding in self.query.twigs:
            for query_node in binding.twig.nodes():
                values = {node.value
                          for node in binding.document.nodes(query_node.tag)
                          if query_node.matches_value(node.value)}
                shrink(query_node.name, len(values))
        self._estimates = estimates
        return estimates

    def domain_estimate(self, attribute: str) -> int:
        return self.domain_estimates().get(attribute, 0)


#: Same weakref-evicting scheme as the relation cache: entries vanish
#: with their query, so nothing is pinned across queries.
_QUERY_STATS_CACHE: "dict[int, tuple[weakref.ref, QueryStatistics]]" = {}


def statistics_for(query: "MultiModelQuery") -> QueryStatistics:
    """The (memoised) :class:`QueryStatistics` of *query*."""
    key = id(query)
    entry = _QUERY_STATS_CACHE.get(key)
    if entry is not None and entry[0]() is query:
        return entry[1]
    stats = QueryStatistics(query)

    def evict(_ref: weakref.ref, key: int = key) -> None:
        _QUERY_STATS_CACHE.pop(key, None)

    _QUERY_STATS_CACHE[key] = (weakref.ref(query, evict), stats)
    return stats


# ---------------------------------------------------------------------------
# order strategies
# ---------------------------------------------------------------------------

def appearance_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Relational attributes first, then twig attributes, as they appear."""
    return query.attributes


def domain_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Attributes sorted by estimated domain size (smallest first)."""
    estimates = statistics_for(query).domain_estimates()
    return tuple(sorted(query.attributes,
                        key=lambda a: (estimates.get(a, 0), a)))


def connected_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Greedy connected order over the query hypergraph."""
    graph = query.hypergraph(with_cardinalities=False)
    estimates = statistics_for(query).domain_estimates()
    remaining = set(query.attributes)
    order: list[str] = []

    def neighbours(attribute: str) -> set[str]:
        out: set[str] = set()
        for edge in graph.edges_covering(attribute):
            out.update(edge.vertices)
        out.discard(attribute)
        return out

    connected: set[str] = set()
    while remaining:
        if connected & remaining:
            pool = connected & remaining
        else:
            pool = remaining  # start (or restart on a disconnected part)
        pick = min(pool, key=lambda a: (estimates.get(a, 0), a))
        order.append(pick)
        remaining.discard(pick)
        connected.update(neighbours(pick))
    return tuple(order)


ORDER_STRATEGIES: dict[str, Callable[["MultiModelQuery"],
                                     tuple[str, ...]]] = {
    "appearance": appearance_order,
    "domain": domain_order,
    "connected": connected_order,
}


def attribute_order(query: "MultiModelQuery",
                    order: "str | tuple[str, ...] | list[str] | None" = None
                    ) -> tuple[str, ...]:
    """Resolve an order argument: a strategy name, an explicit order, or
    None (the ``appearance`` default)."""
    if order is None:
        return appearance_order(query)
    if isinstance(order, str):
        try:
            strategy = ORDER_STRATEGIES[order]
        except KeyError:
            raise PlanError(
                f"unknown order policy {order!r}; "
                f"choose from {sorted(ORDER_STRATEGIES)!r}") from None
        return strategy(query)
    explicit = tuple(order)
    if sorted(explicit) != sorted(query.attributes):
        raise PlanError(
            f"order {list(explicit)!r} is not a permutation of the query "
            f"attributes {sorted(query.attributes)!r}")
    return explicit


# ---------------------------------------------------------------------------
# query plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryPlan:
    """One planned execution: an expansion order plus an algorithm name."""

    order: tuple[str, ...]
    algorithm: str
    policy: str

    def __repr__(self) -> str:
        return (f"QueryPlan({self.algorithm!r}, policy={self.policy!r}, "
                f"order={list(self.order)!r})")


def choose_order_policy(query: "MultiModelQuery") -> str:
    """Pick an order policy from the domain-size spread.

    Uniform domains gain nothing from reordering, so keep the appearance
    order; skewed domains (some attribute much more selective than
    another) benefit from expanding small, connected domains first.
    """
    estimates = statistics_for(query).domain_estimates()
    sizes = [size for size in estimates.values() if size > 0]
    if len(sizes) >= 2 and max(sizes) >= 4 * min(sizes):
        return "connected"
    return "appearance"


def choose_algorithm(query: "MultiModelQuery") -> str:
    """Pick an algorithm: XJoin whenever a twig participates (it is the
    only worst-case optimal operator over the combined hypergraph);
    hashed generic join for purely relational queries, where its dict
    probes beat LFTJ's seek bookkeeping on this substrate."""
    if query.twigs:
        return "xjoin"
    return "generic_join"


def plan_query(query: "MultiModelQuery", *,
               order: "str | tuple[str, ...] | list[str] | None" = None,
               algorithm: str | None = None) -> QueryPlan:
    """Resolve order and algorithm for *query* (explicit args win)."""
    if algorithm is None:
        algorithm = choose_algorithm(query)
    elif algorithm not in available_algorithms():
        raise PlanError(
            f"unknown join algorithm {algorithm!r}; "
            f"choose from {available_algorithms()!r}")
    if order is None:
        policy = choose_order_policy(query)
        resolved = attribute_order(query, policy)
    else:
        policy = order if isinstance(order, str) else "given"
        resolved = attribute_order(query, order)
    return QueryPlan(order=resolved, algorithm=algorithm, policy=policy)


def run_query(query: "MultiModelQuery", *,
              order: "str | tuple[str, ...] | list[str] | None" = None,
              algorithm: str | None = None,
              stats: JoinStats | None = None) -> Relation:
    """Plan and evaluate *query* through the encoded engine."""
    stats = ensure_stats(stats)
    plan = plan_query(query, order=order, algorithm=algorithm)
    if plan.algorithm == "baseline":
        # The baseline evaluates from the source inputs; building the
        # encoded tries would be pure wasted (and misattributed) work.
        instance = EncodedInstance.reference(query)
    else:
        with stats.phase("encode"):
            instance = EncodedInstance.from_query(query, plan.order)
    result = get_algorithm(plan.algorithm).run(instance, stats=stats)
    # xjoin/baseline already project onto the query attributes; only the
    # relational kernels return rows over the full expansion order.
    if result.schema.attributes != query.attributes:
        result = result.project(query.attributes, name=query.name)
    return result
