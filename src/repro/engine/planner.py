"""Stats-driven planning: attribute orders and algorithm choice.

Any attribute order keeps the worst-case optimal algorithms optimal (the
bound argument is order-independent), but constants differ wildly — the
``bench_ablation_order`` benchmark quantifies this. The planner chooses
both the expansion order and the algorithm from *cached* statistics:
per-relation :class:`~repro.relational.statistics.RelationStats` (shared
through a weakref-evicting cache, so repeated planning of the same inputs
never rescans ``distinct_values`` and dropped inputs are never pinned)
plus per-twig-node candidate counts.

Order policies, preserved from the pre-engine planner as named strategies:

* ``appearance`` — relational schemas first, then twig pre-order (default).
* ``domain`` — globally sort by estimated candidate-domain size.
* ``connected`` — greedy: start from the attribute with the smallest
  candidate domain, then repeatedly pick an attribute sharing a hyperedge
  with the bound set, avoiding accidental cartesian expansions.

Further policies register themselves through
:func:`register_order_policy` — the adaptive layer
(:mod:`repro.engine.adaptive`) adds ``bound`` (UES/AGM upper-bound
driven) and ``corrected`` (bounds calibrated by runtime feedback) when
:mod:`repro.engine` is imported.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engine.encoded import EncodedInstance
from repro.engine.interface import available_algorithms, get_algorithm
from repro.errors import PlanError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.statistics import RelationStats, relation_stats

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.xml.columnar import DocumentStats
    from repro.xml.model import XMLDocument
    from repro.xml.twig import TwigQuery

# ---------------------------------------------------------------------------
# cached statistics
# ---------------------------------------------------------------------------

#: id(relation) -> (weakref, stats). Keyed by id for O(1) lookup without
#: hashing the row set; the weakref's eviction callback removes the entry
#: the moment the relation is collected, so the cache never pins inputs
#: (and a recycled id can never alias a dead entry).
_RELATION_STATS_CACHE: "dict[int, tuple[weakref.ref, RelationStats]]" = {}


def cached_relation_stats(relation: Relation) -> RelationStats:
    """:func:`relation_stats`, memoised per (live) relation object."""
    key = id(relation)
    entry = _RELATION_STATS_CACHE.get(key)
    if entry is not None and entry[0]() is relation:
        return entry[1]
    return install_relation_stats(relation, relation_stats(relation))


def install_relation_stats(relation: Relation,
                           stats: RelationStats) -> RelationStats:
    """Seed the statistics cache for *relation* with precomputed *stats*.

    The update layer (:mod:`repro.updates.relations`) maintains exact
    statistics from deltas and installs them here, so planning the next
    query over a freshly updated relation never rescans its rows."""
    key = id(relation)

    def evict(_ref: weakref.ref, key: int = key) -> None:
        _RELATION_STATS_CACHE.pop(key, None)

    _RELATION_STATS_CACHE[key] = (weakref.ref(relation, evict), stats)
    return stats


def invalidate_relation_stats(relation: Relation) -> None:
    """Explicitly drop *relation*'s cached statistics (update layer hook:
    deterministic release instead of relying solely on weakref death)."""
    _RELATION_STATS_CACHE.pop(id(relation), None)


class QueryStatistics:
    """Cached per-input statistics for one multi-model query.

    Relation columns come from the shared :func:`cached_relation_stats`
    cache; the twig side reads the weakref-cached columnar views and
    :class:`~repro.xml.columnar.DocumentStats` of the bound documents —
    one stats source for relational and tree inputs alike.
    ``domain_estimate(a)`` is the smallest number of distinct values any
    input offers for attribute ``a`` — the planner's candidate-domain
    estimate; ``path_cardinality_estimates`` bounds each decomposed
    path relation by the document's matching chain count.
    """

    def __init__(self, query: "MultiModelQuery"):
        # Held weakly so the memoised statistics never pin a dropped
        # query (and its documents) in the module-level cache.
        self._query_ref = weakref.ref(query)
        self._estimates: dict[str, int] | None = None
        self._path_estimates: dict[str, int] | None = None

    def invalidate(self) -> None:
        """Drop the memoised estimates so the next read re-derives them.

        Called by the update layer after it patches the per-input
        artifacts (relation stats, columnar views, document stats): the
        cache entry itself survives the update — only the derived
        estimates refresh, and they refresh *from* the delta-maintained
        inputs, never from a rescan of rows or a document walk."""
        self._estimates = None
        self._path_estimates = None

    @property
    def query(self) -> "MultiModelQuery":
        """The live query behind these statistics (PlanError if dropped)."""
        query = self._query_ref()
        if query is None:
            raise PlanError(
                "the query behind these statistics has been released")
        return query

    def relation_stats(self, relation: Relation) -> RelationStats:
        """One input relation's cached column statistics."""
        return cached_relation_stats(relation)

    def document_stats(self, document) -> "DocumentStats":
        """The bound document's cached summary (tags, paths, fan-out)."""
        from repro.xml.columnar import document_stats

        return document_stats(document)

    def domain_estimates(self) -> dict[str, int]:
        """Smallest per-attribute distinct-value count any input offers."""
        from repro.xml.columnar import columnar

        if self._estimates is not None:
            return self._estimates
        estimates: dict[str, int] = {}

        def shrink(attribute: str, count: int) -> None:
            current = estimates.get(attribute)
            if current is None or count < current:
                estimates[attribute] = count

        for relation in self.query.relations:
            stats = self.relation_stats(relation)
            for attribute, column in stats.columns.items():
                shrink(attribute, column.distinct)
        for binding in self.query.twigs:
            view = columnar(binding.document)
            for query_node in binding.twig.nodes():
                shrink(query_node.name,
                       view.distinct_value_count(query_node))
        self._estimates = estimates
        return estimates

    def domain_estimate(self, attribute: str) -> int:
        """One attribute's candidate-domain estimate (0 if unbound)."""
        return self.domain_estimates().get(attribute, 0)

    def path_cardinality_estimates(self) -> dict[str, int]:
        """Estimated size of each decomposed path relation, by name.

        The estimate is the document's matching P-C chain count from the
        cached path index — an upper bound on the distinct value tuples
        the path relation holds, with no document walk per query.
        """
        if self._path_estimates is not None:
            return self._path_estimates
        estimates: dict[str, int] = {}
        for binding in self.query.twigs:
            stats = self.document_stats(binding.document)
            for path in self.query.decompositions[binding.name].paths:
                tags = [node.tag for node in path.nodes]
                estimates[path.name] = stats.chain_count(tags)
        self._path_estimates = estimates
        return estimates


#: Same weakref-evicting scheme as the relation cache: entries vanish
#: with their query, so nothing is pinned across queries.
_QUERY_STATS_CACHE: "dict[int, tuple[weakref.ref, QueryStatistics]]" = {}


def statistics_for(query: "MultiModelQuery") -> QueryStatistics:
    """The (memoised) :class:`QueryStatistics` of *query*."""
    key = id(query)
    entry = _QUERY_STATS_CACHE.get(key)
    if entry is not None and entry[0]() is query:
        return entry[1]
    stats = QueryStatistics(query)

    def evict(_ref: weakref.ref, key: int = key) -> None:
        _QUERY_STATS_CACHE.pop(key, None)

    _QUERY_STATS_CACHE[key] = (weakref.ref(query, evict), stats)
    return stats


def refresh_query_statistics(query: "MultiModelQuery") -> None:
    """Refresh the memoised estimates of *query* after an update.

    The entry is kept (not dropped): its derived estimates are
    invalidated and will re-read the delta-maintained per-input caches
    on the next plan. A query that was never planned has nothing cached
    and nothing to refresh."""
    entry = _QUERY_STATS_CACHE.get(id(query))
    if entry is not None and entry[0]() is query:
        entry[1].invalidate()


# ---------------------------------------------------------------------------
# order strategies
# ---------------------------------------------------------------------------

def appearance_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Relational attributes first, then twig attributes, as they appear."""
    return query.attributes


def domain_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Attributes sorted by estimated domain size (smallest first)."""
    estimates = statistics_for(query).domain_estimates()
    return tuple(sorted(query.attributes,
                        key=lambda a: (estimates.get(a, 0), a)))


def connected_order(query: "MultiModelQuery") -> tuple[str, ...]:
    """Greedy connected order over the query hypergraph."""
    graph = query.hypergraph(with_cardinalities=False)
    estimates = statistics_for(query).domain_estimates()
    remaining = set(query.attributes)
    order: list[str] = []

    def neighbours(attribute: str) -> set[str]:
        out: set[str] = set()
        for edge in graph.edges_covering(attribute):
            out.update(edge.vertices)
        out.discard(attribute)
        return out

    connected: set[str] = set()
    while remaining:
        if connected & remaining:
            pool = connected & remaining
        else:
            pool = remaining  # start (or restart on a disconnected part)
        pick = min(pool, key=lambda a: (estimates.get(a, 0), a))
        order.append(pick)
        remaining.discard(pick)
        connected.update(neighbours(pick))
    return tuple(order)


ORDER_STRATEGIES: dict[str, Callable[["MultiModelQuery"],
                                     tuple[str, ...]]] = {
    "appearance": appearance_order,
    "domain": domain_order,
    "connected": connected_order,
}


def register_order_policy(name: str,
                          strategy: Callable[["MultiModelQuery"],
                                             tuple[str, ...]]) -> None:
    """Register an order policy under *name* (idempotent re-registration
    of the same callable is allowed; name collisions are an error).

    Registered policies are first-class: ``attribute_order`` resolves
    them, ``run_query(order=name)`` executes them, and the CLI's
    ``--order`` flag accepts them."""
    current = ORDER_STRATEGIES.get(name)
    if current is not None and current is not strategy:
        raise PlanError(f"order policy {name!r} is already registered")
    ORDER_STRATEGIES[name] = strategy


def attribute_order(query: "MultiModelQuery",
                    order: "str | tuple[str, ...] | list[str] | None" = None
                    ) -> tuple[str, ...]:
    """Resolve an order argument: a strategy name, an explicit order, or
    None (the ``appearance`` default)."""
    if order is None:
        return appearance_order(query)
    if isinstance(order, str):
        try:
            strategy = ORDER_STRATEGIES[order]
        except KeyError:
            raise PlanError(
                f"unknown order policy {order!r}; "
                f"choose from {sorted(ORDER_STRATEGIES)!r}") from None
        return strategy(query)
    explicit = tuple(order)
    if sorted(explicit) != sorted(query.attributes):
        raise PlanError(
            f"order {list(explicit)!r} is not a permutation of the query "
            f"attributes {sorted(query.attributes)!r}")
    return explicit


# ---------------------------------------------------------------------------
# query plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryPlan:
    """One planned execution for a multi-model query.

    Everything comes from a single stats source (cached relation stats +
    cached document stats): the expansion order, the join operator, the
    per-twig matching algorithm (consumed by the baseline's twig
    sub-query and the CLI's A/B override), and the path-relation
    cardinality estimates that justify the order.
    """

    order: tuple[str, ...]
    algorithm: str
    policy: str
    #: (twig name, twig algorithm name) per twig input.
    twig_algorithms: tuple[tuple[str, str], ...] = ()
    #: (path relation name, estimated cardinality) per decomposed path.
    path_cardinalities: tuple[tuple[str, int], ...] = ()
    #: Morsel count for partition-parallel execution (1 = serial).
    partitions: int = 1
    #: The attribute whose domain the partitions slice (None = serial).
    partition_axis: str | None = None
    #: (attribute, estimated live tuples after its level) per stage —
    #: filled by the adaptive planner / ``repro explain``; empty for
    #: plain static plans.
    stage_estimates: tuple[tuple[str, int], ...] = ()

    def twig_algorithm(self, twig_name: str) -> str | None:
        """The planned matcher for one twig input (None if unknown)."""
        for name, algorithm in self.twig_algorithms:
            if name == twig_name:
                return algorithm
        return None

    def __repr__(self) -> str:
        twigs = (f", twigs={dict(self.twig_algorithms)!r}"
                 if self.twig_algorithms else "")
        parallel = (f", partitions={self.partitions} "
                    f"on {self.partition_axis!r}"
                    if self.partitions > 1 else "")
        return (f"QueryPlan({self.algorithm!r}, policy={self.policy!r}, "
                f"order={list(self.order)!r}{twigs}{parallel})")


def choose_order_policy(query: "MultiModelQuery") -> str:
    """Pick an order policy from the domain-size spread.

    Uniform domains gain nothing from reordering, so keep the appearance
    order; skewed domains (some attribute much more selective than
    another) benefit from expanding small, connected domains first.
    """
    estimates = statistics_for(query).domain_estimates()
    sizes = [size for size in estimates.values() if size > 0]
    if len(sizes) >= 2 and max(sizes) >= 4 * min(sizes):
        return "connected"
    return "appearance"


def choose_twig_algorithm(document: "XMLDocument",
                          twig: "TwigQuery") -> str:
    """Pick a twig matcher from the twig's shape and the document stats.

    * linear paths → ``pathstack`` (one sweep, optimal for both axes);
    * branching with two or more value predicates → ``accel`` (the
      relational accelerator: selective predicates shrink the candidate
      streams before the edge relations are built, and the worst-case
      optimal kernel joins the small per-edge pair lists without the
      holistic matchers' full-stream scans);
    * branching with any parent-child edge → ``tjfast`` (TwigStack loses
      optimality on P-C edges; TJFast's per-path matching does not);
    * A-D-only branching → ``tjfast`` when the leaf streams are the
      minority of the candidate nodes (it reads only leaves), otherwise
      ``twigstack`` (holistic-optimal, no path decoding at all).

    See ``docs/twig_algorithms.md`` for the optimality table behind the
    rule and ``docs/accelerator.md`` for the accelerator's lowering.
    """
    from repro.xml.columnar import document_stats
    from repro.xml.interface import get_twig_algorithm

    if get_twig_algorithm("pathstack").supports(twig):  # linear path
        return "pathstack"
    if sum(1 for q in twig.nodes() if q.predicate is not None) >= 2:
        return "accel"
    if twig.pc_edges():
        return "tjfast"
    stats = document_stats(document)
    leaf_input = sum(stats.tag_count(q.tag) for q in twig.leaves())
    total_input = sum(stats.tag_count(q.tag) for q in twig.nodes())
    if total_input and 2 * leaf_input <= total_input:
        return "tjfast"
    return "twigstack"


#: Minimum top-level codes per morsel. The batch buffer kernels
#: (galloping seek, k-way array intersection) drive per-code cost so low
#: that a morsel's fixed overhead — queue hop, slice clone, result
#: pickle — dominates thin slices; don't cut pieces smaller than this.
MIN_CODES_PER_MORSEL = 4


def choose_partitions(query: "MultiModelQuery", order: tuple[str, ...],
                      workers: int, *,
                      morsel_factor: int = 4,
                      domain_estimate: int | None = None
                      ) -> tuple[int, str | None]:
    """Pick (morsel count, partition axis) from cached statistics.

    The axis is the resolved order's first attribute — the variable the
    parallel executor slices at the top of every trie descent. The
    morsel count follows the work-stealing sizing rule (``morsel_factor``
    morsels per worker, capped by the axis' estimated domain): enough
    pieces that the queue can rebalance skew, never more pieces than the
    domain has distinct values — and never slices thinner than
    :data:`MIN_CODES_PER_MORSEL` codes, where the batch kernels' speed
    makes morsel overhead the dominant cost. One partition means "run
    serially".

    By default the axis domain is the static estimate scaled by any
    (version-fresh) correction the default feedback store has learned
    for the query's first level, so partition counts follow observed —
    not nominal — cardinalities; pass ``domain_estimate`` to override.
    """
    if workers <= 1 or not order:
        return 1, None
    from repro.parallel.partition import choose_morsel_count

    axis = order[0]
    if domain_estimate is not None:
        domain = domain_estimate
    else:
        domain = statistics_for(query).domain_estimate(axis)
        # Imported lazily: the adaptive layer sits above the planner.
        from repro.engine.adaptive import default_feedback

        domain = default_feedback().corrected_domain_estimate(
            query, axis, domain)
    count = choose_morsel_count(workers, domain,
                                morsel_factor=morsel_factor)
    count = min(count, max(1, domain // MIN_CODES_PER_MORSEL))
    return (count, axis) if count > 1 else (1, None)


def choose_algorithm(query: "MultiModelQuery") -> str:
    """Pick an algorithm: XJoin whenever a twig participates (it is the
    only worst-case optimal operator over the combined hypergraph);
    hashed generic join for purely relational queries, where its dict
    probes beat LFTJ's seek bookkeeping on this substrate."""
    if query.twigs:
        return "xjoin"
    return "generic_join"


def plan_query(query: "MultiModelQuery", *,
               order: "str | tuple[str, ...] | list[str] | None" = None,
               algorithm: str | None = None,
               twig_algorithm: str | None = None,
               workers: int | None = None,
               morsel_factor: int = 4) -> QueryPlan:
    """Resolve order, join operator and twig matchers (explicit args win).

    ``twig_algorithm`` forces one matcher for every twig input (the
    CLI's ``--twig-algorithm`` A/B override); by default each twig gets
    the :func:`choose_twig_algorithm` pick for its document. With
    ``workers`` the plan also carries a partition count and axis for the
    parallel executor (see :func:`choose_partitions`).
    """
    if algorithm is None:
        algorithm = choose_algorithm(query)
    elif algorithm not in available_algorithms():
        raise PlanError(
            f"unknown join algorithm {algorithm!r}; "
            f"choose from {available_algorithms()!r}")
    if order is None:
        policy = choose_order_policy(query)
        resolved = attribute_order(query, policy)
    else:
        policy = order if isinstance(order, str) else "given"
        resolved = attribute_order(query, order)

    twig_algorithms: list[tuple[str, str]] = []
    if query.twigs:
        from repro.xml.interface import (
            available_twig_algorithms,
            get_twig_algorithm,
        )

        if twig_algorithm is not None \
                and twig_algorithm not in available_twig_algorithms():
            raise PlanError(
                f"unknown twig algorithm {twig_algorithm!r}; "
                f"choose from {available_twig_algorithms()!r}")
        for binding in query.twigs:
            name = twig_algorithm or choose_twig_algorithm(binding.document,
                                                           binding.twig)
            if not get_twig_algorithm(name).supports(binding.twig):
                raise PlanError(
                    f"twig algorithm {name!r} cannot evaluate twig "
                    f"{binding.name!r} (e.g. 'pathstack' on a branching "
                    f"twig)")
            twig_algorithms.append((binding.name, name))
    path_cardinalities = tuple(
        sorted(statistics_for(query).path_cardinality_estimates().items())
    ) if query.twigs else ()
    partitions, partition_axis = choose_partitions(
        query, resolved, workers or 1, morsel_factor=morsel_factor)
    return QueryPlan(order=resolved, algorithm=algorithm, policy=policy,
                     twig_algorithms=tuple(twig_algorithms),
                     path_cardinalities=path_cardinalities,
                     partitions=partitions, partition_axis=partition_axis)


def run_query(query: "MultiModelQuery", *,
              order: "str | tuple[str, ...] | list[str] | None" = None,
              algorithm: str | None = None,
              stats: JoinStats | None = None,
              workers: int = 0) -> Relation:
    """Plan and evaluate *query* through the encoded engine.

    With ``workers > 1`` execution is delegated to the partition-parallel
    executor (:mod:`repro.parallel.executor`): the instance is still
    encoded once, then sliced on the plan's partition axis and evaluated
    by a morsel-driven worker pool. Results are identical to the serial
    path for every registered algorithm.
    """
    stats = ensure_stats(stats)
    if workers > 1:
        # Imported lazily: repro.parallel sits above the planner layer.
        from repro.parallel.executor import parallel_run_query

        return parallel_run_query(query, workers=workers, order=order,
                                  algorithm=algorithm, stats=stats)
    plan = plan_query(query, order=order, algorithm=algorithm)
    if plan.algorithm == "baseline":
        # The baseline evaluates from the source inputs; building the
        # encoded tries would be pure wasted (and misattributed) work.
        instance = EncodedInstance.reference(query)
    else:
        with stats.phase("encode"):
            instance = EncodedInstance.from_query(query, plan.order)
    result = get_algorithm(plan.algorithm).run(instance, stats=stats)
    # xjoin/baseline already project onto the query attributes; only the
    # relational kernels return rows over the full expansion order.
    if result.schema.attributes != query.attributes:
        result = result.project(query.attributes, name=query.name)
    return result
