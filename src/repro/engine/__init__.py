"""The dictionary-encoded execution engine shared by all join algorithms.

Three layers (see ``docs/architecture.md``):

1. **Dictionary encoding** (:mod:`repro.engine.dictionary`) — per-attribute
   value <-> dense-int bijections, shared across relations and twig
   path-relations, order-preserving so code comparisons are value
   comparisons.
2. **Encoded instances + the operator interface**
   (:mod:`repro.engine.encoded`, :mod:`repro.engine.interface`) — one
   :class:`EncodedInstance` per query (int-keyed tries, participation
   map, twig filters) consumed by any registered
   :class:`JoinAlgorithm`.
3. **Stats-driven planning** (:mod:`repro.engine.planner`) — cached
   relation/twig statistics choosing the expansion order and the
   algorithm, with the historical policies preserved as named strategies.

On top sits the **adaptive layer** (:mod:`repro.engine.adaptive`):
runtime cardinality corrections fed back from executed queries'
``JoinStats``, the ``bound``/``corrected`` upper-bound order policies
(registered here at import time), and plan racing with early kill. See
``docs/planner.md``.
"""

from repro.engine.dictionary import Dictionary, DictionaryBuilder
from repro.engine.encoded import (
    EncodedInstance,
    EncodedTrie,
    EncodedTrieIterator,
    TwigFilters,
)
from repro.engine.interface import (
    JoinAlgorithm,
    available_algorithms,
    get_algorithm,
    register,
)
from repro.engine.planner import (
    QueryPlan,
    QueryStatistics,
    cached_relation_stats,
    choose_twig_algorithm,
    plan_query,
    register_order_policy,
    run_query,
    statistics_for,
)

# Importing the adaptive layer registers the "bound" and "corrected"
# order policies alongside the static ones.
from repro.engine.adaptive import (  # noqa: E402  (needs planner above)
    AdaptivePlanner,
    FeedbackStore,
    PlanRacer,
    default_feedback,
)

__all__ = [
    "AdaptivePlanner",
    "Dictionary",
    "DictionaryBuilder",
    "EncodedInstance",
    "EncodedTrie",
    "EncodedTrieIterator",
    "FeedbackStore",
    "JoinAlgorithm",
    "PlanRacer",
    "QueryPlan",
    "QueryStatistics",
    "TwigFilters",
    "available_algorithms",
    "cached_relation_stats",
    "choose_twig_algorithm",
    "default_feedback",
    "get_algorithm",
    "plan_query",
    "register",
    "register_order_policy",
    "run_query",
    "statistics_for",
]
