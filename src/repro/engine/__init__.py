"""The dictionary-encoded execution engine shared by all join algorithms.

Three layers (see ``docs/architecture.md``):

1. **Dictionary encoding** (:mod:`repro.engine.dictionary`) — per-attribute
   value <-> dense-int bijections, shared across relations and twig
   path-relations, order-preserving so code comparisons are value
   comparisons.
2. **Encoded instances + the operator interface**
   (:mod:`repro.engine.encoded`, :mod:`repro.engine.interface`) — one
   :class:`EncodedInstance` per query (int-keyed tries, participation
   map, twig filters) consumed by any registered
   :class:`JoinAlgorithm`.
3. **Stats-driven planning** (:mod:`repro.engine.planner`) — cached
   relation/twig statistics choosing the expansion order and the
   algorithm, with the historical policies preserved as named strategies.
"""

from repro.engine.dictionary import Dictionary, DictionaryBuilder
from repro.engine.encoded import (
    EncodedInstance,
    EncodedTrie,
    EncodedTrieIterator,
    TwigFilters,
)
from repro.engine.interface import (
    JoinAlgorithm,
    available_algorithms,
    get_algorithm,
    register,
)
from repro.engine.planner import (
    QueryPlan,
    QueryStatistics,
    cached_relation_stats,
    choose_twig_algorithm,
    plan_query,
    run_query,
    statistics_for,
)

__all__ = [
    "Dictionary",
    "DictionaryBuilder",
    "EncodedInstance",
    "EncodedTrie",
    "EncodedTrieIterator",
    "JoinAlgorithm",
    "QueryPlan",
    "QueryStatistics",
    "TwigFilters",
    "available_algorithms",
    "cached_relation_stats",
    "choose_twig_algorithm",
    "get_algorithm",
    "plan_query",
    "register",
    "run_query",
    "statistics_for",
]
