"""Dictionary encoding: dense integer codes per attribute domain.

The engine's first layer. Every attribute of a query gets one
:class:`Dictionary` mapping the union of the values that *any* input
(relational column or twig path position) offers for that attribute to
``0..k-1``. Codes are assigned in the mixed-type total order of
:func:`repro.relational.schema.sort_key`, so **code order equals value
order**: trie levels sorted by code are sorted by value, leapfrog seeks
compare plain ints, and hashed descent probes int-keyed dicts instead of
hashing heterogeneous Python objects.

Because one dictionary serves every input that binds the attribute, equal
values encode to equal codes across relations and twig path-relations —
intersection on codes is exactly intersection on values.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from operator import itemgetter

from repro.errors import EngineError
from repro.relational.relation import Relation
from repro.relational.schema import Value, sort_key


class Dictionary:
    """An immutable value <-> code bijection for one attribute domain.

    >>> d = Dictionary("a", ["x", 3, 1])
    >>> [d.decode(c) for c in range(len(d))]
    [1, 3, 'x']
    >>> d.encode(3)
    1
    """

    __slots__ = ("attribute", "values", "codes")

    def __init__(self, attribute: str, domain: Iterable[Value]):
        self.attribute = attribute
        if not isinstance(domain, (set, frozenset)):
            domain = set(domain)
        #: Domain values, positionally indexed by code, in sort_key order.
        self.values: tuple[Value, ...] = tuple(sorted(domain, key=sort_key))
        #: The inverse mapping (value -> code).
        self.codes: dict[Value, int] = {
            value: code for code, value in enumerate(self.values)}

    def encode(self, value: Value) -> int:
        """The code of *value*; raises :class:`EngineError` if unknown."""
        try:
            return self.codes[value]
        except KeyError:
            raise EngineError(
                f"value {value!r} is not in the encoded domain of "
                f"attribute {self.attribute!r}") from None

    def encode_or_none(self, value: Value) -> int | None:
        """The code of *value*, or None when outside the domain."""
        return self.codes.get(value)

    def decode(self, code: int) -> Value:
        """The value behind *code*."""
        try:
            return self.values[code]
        except IndexError:
            raise EngineError(
                f"code {code!r} is outside the encoded domain of "
                f"attribute {self.attribute!r} (size {len(self.values)})"
            ) from None

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: object) -> bool:
        return value in self.codes

    def __repr__(self) -> str:
        return f"Dictionary({self.attribute!r}, {len(self.values)} values)"


class DictionaryBuilder:
    """Accumulates attribute domains across inputs, then freezes them.

    Feed it every input of a query (relations via :meth:`add_relation`,
    already-materialised row sets via :meth:`add_rows`) and call
    :meth:`build` once; the resulting dictionaries are shared by all
    encoded tries of the query.
    """

    def __init__(self) -> None:
        self._domains: dict[str, set[Value]] = {}

    def add_values(self, attribute: str, values: Iterable[Value]) -> None:
        """Widen one attribute's domain with *values*."""
        self._domains.setdefault(attribute, set()).update(values)

    def add_relation(self, relation: Relation) -> None:
        """Widen every schema attribute's domain with the relation's rows."""
        for position, attribute in enumerate(relation.schema):
            domain = self._domains.setdefault(attribute, set())
            domain.update(map(itemgetter(position), relation.rows))

    def add_rows(self, attributes: Sequence[str],
                 rows: Iterable[Sequence[Value]]) -> None:
        """Widen the named attributes' domains with already-gathered rows."""
        domains = [self._domains.setdefault(a, set()) for a in attributes]
        for row in rows:
            for domain, value in zip(domains, row):
                domain.add(value)

    def build(self) -> dict[str, Dictionary]:
        """Freeze the gathered domains into per-attribute dictionaries."""
        return {attribute: Dictionary(attribute, domain)
                for attribute, domain in self._domains.items()}


def encode_rows(rows: "Sequence[Sequence[Value]] | frozenset | set",
                positions: Sequence[int],
                dictionaries: Sequence[Dictionary]) -> list[tuple[int, ...]]:
    """Encode *rows*, picking column *positions* in order, one dictionary
    per picked column. Rows are returned as plain int tuples.

    Encoding runs column-wise (one flat comprehension per column, then a
    C-level transpose) — measurably faster than a per-row generator
    expression. *rows* must therefore be re-iterable with stable order.
    """
    if not positions:
        return [() for _ in rows]
    columns = [[d.codes[row[p]] for row in rows]
               for p, d in zip(positions, dictionaries)]
    return list(zip(*columns))
