"""Shared scenarios for the planner benchmark.

Both front-ends — ``python -m repro bench --suite planner`` and
``benchmarks/bench_planner.py`` — time the same code through this
module, so the CLI table, the pytest gate and CI can never drift apart
on what they measure. Each scenario races the *static* planner's plan
(``plan_query`` with its stats-driven order policy) against the
:class:`~repro.engine.adaptive.AdaptivePlanner`'s raced winner over
identical inputs and checks byte-parity of the answers.

The gated workload is steady-state: both plans run their kernel over a
prebuilt :class:`~repro.engine.encoded.EncodedInstance`, which is how
the service and :class:`~repro.updates.session.QuerySession` amortise
encoding across queries. The cold path (planning + encode + join, one
shot) is reported alongside but ungated — encoding is *cheaper* for
the bad order on the skewed instance (fewer level-0 nodes), so a
one-shot framing would mis-measure exactly the effect the adaptive
planner corrects. The XMark multi-model scenario is report-only: the
static planner already picks a sound order there, so the adaptive
planner's job is merely to not regress it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.synthetic import skewed_triangle
from repro.engine.adaptive import AdaptivePlanner, FeedbackStore
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.engine.planner import plan_query, run_query
from repro.relational.relation import Relation
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

#: The acceptance target: the adaptive plan must beat the static plan
#: by this factor on the gated (steady-state skewed-triangle) workload.
SPEEDUP_TARGET = 1.5


@dataclass(frozen=True)
class PlannerTiming:
    """One workload's static-plan vs adaptive-plan wall time (ms)."""

    label: str
    static_ms: float
    adaptive_ms: float
    #: Whether the speedup target applies (False = reported only, e.g.
    #: the cold one-shot path or a scenario where the static order is
    #: already sound and the adaptive planner just must not regress).
    gated: bool = True

    @property
    def speedup(self) -> float:
        """Static wall time over adaptive wall time."""
        return self.static_ms / max(self.adaptive_ms, 1e-9)

    @property
    def meets_target(self) -> bool:
        """Gated timings must reach :data:`SPEEDUP_TARGET`."""
        return not self.gated or self.speedup >= SPEEDUP_TARGET


@dataclass(frozen=True)
class PlannerScenarioResult:
    """All timings of one scenario plus plan metadata and parity."""

    title: str
    static_order: tuple[str, ...]
    adaptive_order: tuple[str, ...]
    timings: tuple[PlannerTiming, ...]
    consistent: bool
    #: Races the adaptive planner ran while converging on this scenario
    #: (should stop growing once the corrections stabilise).
    races: int

    @property
    def ok(self) -> bool:
        """Parity always; the speedup target on every gated timing."""
        return self.consistent and all(timing.meets_target
                                       for timing in self.timings)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best wall ms, last result) over *repeats* runs of *fn*."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best, result


def _canonical(result, attributes) -> "Relation":
    """Project *result* onto the query's own attribute order.

    Raw kernel runs return columns in the plan's expansion order while
    ``run_query`` normalises to appearance order; parity must compare
    the same shape."""
    return result.project(list(attributes))


def skewed_triangle_scenario(n: int = 4096, *,
                             repeats: int = 3) -> PlannerScenarioResult:
    """The gated workload: the skewed triangle the static stats misplan.

    :func:`~repro.data.synthetic.skewed_triangle` is built so domain
    estimates send the static planner to the tiny skewed domains first
    (order ``(b, c, a)``, which keeps ``d*m`` prefix tuples alive),
    while orders rooted at ``a`` exploit the instance's functional
    dependencies and touch ~n tuples. The adaptive planner's bound
    model ranks the good orders first and the racer confirms on a
    sample; the steady-state (prebuilt encoded instance) kernel race
    between the two chosen plans is gated at
    :data:`SPEEDUP_TARGET`. The cold one-shot path — plan + encode +
    join — is reported ungated, and the race count is captured so the
    convergence tests can assert the planner stops re-racing.
    """
    query = MultiModelQuery(skewed_triangle(n), [], name="skewed")
    static = plan_query(query)
    adaptive = AdaptivePlanner(store=FeedbackStore())
    # Converge: execute a few times so corrections are learned and the
    # race winner is the cached steady-state plan, then take that plan.
    for _ in range(3):
        adaptive.execute(query)
    plan = adaptive.plan(query)

    static_instance = EncodedInstance.from_query(query, static.order)
    adaptive_instance = EncodedInstance.from_query(query, plan.order)
    static_ms, static_raw = _best_of(
        lambda: get_algorithm(static.algorithm).run(static_instance),
        repeats)
    adaptive_ms, adaptive_raw = _best_of(
        lambda: get_algorithm(plan.algorithm).run(adaptive_instance),
        repeats)
    attributes = query.attributes
    static_result = _canonical(static_raw, attributes)
    consistent = static_result == _canonical(adaptive_raw, attributes)
    timings = [PlannerTiming("steady-state join", static_ms, adaptive_ms)]

    cold_static_ms, cold_static = _best_of(
        lambda: run_query(query, order=static.order,
                          algorithm=static.algorithm), repeats)
    cold_adaptive_ms, cold_adaptive = _best_of(
        lambda: run_query(query, order=plan.order,
                          algorithm=plan.algorithm), repeats)
    consistent = consistent and cold_static == cold_adaptive \
        and _canonical(cold_static, attributes) == static_result
    timings.append(PlannerTiming("cold (encode + join)", cold_static_ms,
                                 cold_adaptive_ms, gated=False))
    return PlannerScenarioResult(
        title=f"skewed triangle (n={n}, static order "
              f"{'-'.join(static.order)}, adaptive "
              f"{'-'.join(plan.order)})",
        static_order=static.order, adaptive_order=plan.order,
        timings=tuple(timings), consistent=consistent,
        races=adaptive.racer.races)


def xmark_scenario(factor: float = 1.0, *, fanout: int = 12,
                   repeats: int = 2) -> PlannerScenarioResult:
    """The multi-model workload: XMark twig joined with a fan-out table.

    The static planner's stats already produce a sound order here, so
    the timing is report-only (``gated=False``): what the scenario
    asserts is that the adaptive planner does not *regress* a
    well-planned multi-model query, and that its raced plan returns the
    same rows through the XJoin operator.
    """
    document = xmark_document(factor, seed=7)
    twig = parse_twig("p=person(/nm=name, //i=interest)")
    categories = sorted({node.value for node in document.nodes("interest")})
    relation = Relation("R", ("x", "i"),
                        [(x, category) for x in range(fanout)
                         for category in categories])
    query = MultiModelQuery([relation], [TwigBinding(twig, document)],
                            name="XQ")
    static = plan_query(query)
    adaptive = AdaptivePlanner(store=FeedbackStore())
    for _ in range(2):
        adaptive.execute(query)
    plan = adaptive.plan(query)
    static_ms, static_result = _best_of(
        lambda: run_query(query, order=static.order,
                          algorithm=static.algorithm), repeats)
    adaptive_ms, adaptive_result = _best_of(
        lambda: run_query(query, order=plan.order,
                          algorithm=plan.algorithm), repeats)
    consistent = static_result == adaptive_result
    timings = (PlannerTiming("xjoin multi-model", static_ms, adaptive_ms,
                             gated=False),)
    return PlannerScenarioResult(
        title=f"XMark factor {factor:g} ({document.size()} nodes, "
              f"fanout {fanout})",
        static_order=static.order, adaptive_order=plan.order,
        timings=timings, consistent=consistent,
        races=adaptive.racer.races)
