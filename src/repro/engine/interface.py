"""The unified physical-operator interface: the engine's third layer.

A :class:`JoinAlgorithm` consumes an
:class:`~repro.engine.encoded.EncodedInstance` and produces a decoded
:class:`~repro.relational.relation.Relation`. All four algorithm families
of the library — generic join, leapfrog triejoin, the traditional
baseline, and XJoin — register here under stable names, so planners and
benchmarks can pick an algorithm by name and race implementations over
the *same* encoded instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import EngineError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedInstance


@runtime_checkable
class JoinAlgorithm(Protocol):
    """One physical join operator over an encoded instance."""

    #: Stable registry name (e.g. ``"generic_join"``).
    name: str

    def run(self, instance: "EncodedInstance", *,
            stats: JoinStats | None = None) -> Relation:
        """Evaluate the instance, returning the decoded result over the
        instance's global attribute order."""
        ...


_REGISTRY: dict[str, JoinAlgorithm] = {}


def register(algorithm: JoinAlgorithm) -> JoinAlgorithm:
    """Register *algorithm* under its ``name`` (last registration wins)."""
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def get_algorithm(name: str) -> JoinAlgorithm:
    """Look up a registered algorithm by name."""
    # Importing the implementations lazily avoids an import cycle while
    # still guaranteeing the built-ins are registered on first use.
    from repro.engine import algorithms  # noqa: F401
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown join algorithm {name!r}; "
            f"choose from {available_algorithms()!r}") from None


def available_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted."""
    from repro.engine import algorithms  # noqa: F401
    return sorted(_REGISTRY)
