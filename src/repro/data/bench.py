"""Shared scenarios for the larger-than-RAM corpus benchmark.

Both front-ends — ``python -m repro bench --suite corpus`` and
``benchmarks/bench_corpus.py`` — time the same code through this
module, so the CLI table, the pytest gate and CI can never drift apart
on what they measure.

One scenario, three facts about the streamed-build path
(:mod:`repro.xml.streaming` into a
:class:`~repro.buffers.mmapfile.FileArena`):

* **build** — DBLP-style records (:func:`repro.data.dblp.dblp_chunks`)
  stream straight into a file arena; throughput is reported in nodes/s
  next to the in-memory parse-and-columnarize build of the identical
  text. Streamed-vs-in-memory row parity on a twig query is the
  correctness gate.
* **cold attach** — reopening the finished arena is O(header), not
  O(corpus): attach time plus first-query latency over the mapped
  columns, against the same query on the live build.
* **peak RSS** — each build runs again in a fresh subprocess and
  reports ``ru_maxrss``; the streamed build must stay **well under**
  the in-memory build (the gate is a ratio, not an absolute, so it
  binds on any machine). This is the bugfix's point: corpora bounded
  by disk, not by RAM.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass

#: The RSS gate: the streamed build's subprocess peak RSS must be at
#: most this fraction of the in-memory build's at the same record
#: count. Generous — at bench scale the in-memory tree is several
#: times larger — because small corpora are dominated by interpreter
#: baseline RSS.
RSS_RATIO_TARGET = 0.8


@dataclass(frozen=True)
class CorpusTiming:
    """One labelled streamed-vs-in-memory wall time pair (ms)."""

    label: str
    inmemory_ms: float
    streamed_ms: float


@dataclass(frozen=True)
class CorpusScenarioResult:
    """All measurements of one corpus scenario plus its checks."""

    title: str
    nodes: int
    arena_bytes: int
    timings: tuple[CorpusTiming, ...]
    #: Streamed-arena query rows == in-memory query rows.
    consistent: bool
    #: Subprocess peak RSS (KiB) of each build path at the same size.
    inmemory_peak_kb: int
    streamed_peak_kb: int
    #: ``repro-arena-`` temp files left behind after the run (must be
    #: none — the streamed path owns its spill and arena lifecycle).
    leaked: tuple[str, ...] = ()

    @property
    def rss_ratio(self) -> float:
        """Streamed peak RSS over in-memory peak RSS."""
        return self.streamed_peak_kb / max(self.inmemory_peak_kb, 1)

    @property
    def meets_rss_target(self) -> bool:
        return self.rss_ratio <= RSS_RATIO_TARGET


_BUILD_SNIPPET = """\
import sys
from repro.data.dblp import dblp_chunks
n, seed = int(sys.argv[1]), int(sys.argv[2])
if sys.argv[3] == "streamed":
    from repro.xml.streaming import stream_document
    arena = stream_document(dblp_chunks(n, seed=seed))
    size = arena.meta["size"]
    arena.close(); arena.unlink()
else:
    from repro.xml.columnar import columnar
    from repro.xml.parser import parse_document
    document = parse_document("".join(dblp_chunks(n, seed=seed)))
    size = columnar(document).size
# VmHWM, not ru_maxrss: getrusage's high-water mark survives exec when
# the interpreter was spawned via vfork, so a big parent poisons the
# child's reading; the /proc counter belongs to this mm alone.
peak = None
try:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmHWM:"):
                peak = int(line.split()[1])
                break
except OSError:
    pass
if peak is None:
    import resource
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(size, peak)
"""


def _subprocess_peak_kb(n: int, seed: int, mode: str) -> int:
    """Peak RSS (KiB) of one build path in a fresh interpreter."""
    repro_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = repro_root + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _BUILD_SNIPPET, str(n), str(seed), mode],
        check=True, capture_output=True, text=True, env=env)
    _size, peak = out.stdout.split()
    return int(peak)


def dblp_corpus_scenario(n: int = 8000, *,
                         seed: int = 0) -> CorpusScenarioResult:
    """Stream *n* DBLP records into a file arena vs the in-memory build.

    The streamed build never materializes the node tree; the in-memory
    build parses the identical text. Parity is checked on the rows of
    the article year/journal twig over both, the finished arena is
    re-attached cold for the attach + first-query timings, and each
    build path re-runs in a subprocess for the peak-RSS comparison.
    """
    from repro.buffers.mmapfile import FileArena, leaked_arena_files
    from repro.data.dblp import dblp_chunks
    from repro.xml.arenaview import attach_arena_document
    from repro.xml.columnar import columnar
    from repro.xml.interface import get_twig_algorithm
    from repro.xml.parser import parse_document
    from repro.xml.streaming import stream_document
    from repro.xml.twig_parser import parse_twig

    twig = parse_twig("a=article(/y=year, /j=journal)")
    matcher = get_twig_algorithm("twigstack")

    start = time.perf_counter()
    arena = stream_document(dblp_chunks(n, seed=seed))
    streamed_build_ms = (time.perf_counter() - start) * 1e3
    nodes = arena.meta["size"]
    path = arena.path
    arena_bytes = os.path.getsize(path)
    arena.close()  # build done; reopen below like a second process would

    start = time.perf_counter()
    document = parse_document("".join(dblp_chunks(n, seed=seed)))
    live = columnar(document)
    inmemory_build_ms = (time.perf_counter() - start) * 1e3
    assert live.size == nodes

    start = time.perf_counter()
    serial = matcher.run(document, twig)
    inmemory_query_ms = (time.perf_counter() - start) * 1e3

    cold = FileArena.attach(path, owner=True)
    try:
        start = time.perf_counter()
        handle, _view = attach_arena_document(cold)
        cold_attach_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        attached = matcher.run(handle, twig)
        attached_query_ms = (time.perf_counter() - start) * 1e3
        consistent = sorted(attached.rows) == sorted(serial.rows)
    finally:
        cold.close()
        cold.unlink()

    inmemory_peak = _subprocess_peak_kb(n, seed, "inmemory")
    streamed_peak = _subprocess_peak_kb(n, seed, "streamed")

    timings = (
        CorpusTiming("build", inmemory_build_ms, streamed_build_ms),
        CorpusTiming("first query", inmemory_query_ms,
                     cold_attach_ms + attached_query_ms),
    )
    return CorpusScenarioResult(
        title=f"DBLP {n} records ({nodes} nodes, "
              f"{arena_bytes / 1e6:.1f}MB arena)",
        nodes=nodes, arena_bytes=arena_bytes, timings=timings,
        consistent=consistent,
        inmemory_peak_kb=inmemory_peak, streamed_peak_kb=streamed_peak,
        leaked=tuple(leaked_arena_files()))
