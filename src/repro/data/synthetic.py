"""The paper's synthetic workloads (Examples 3.3/3.4, Figure 3).

The construction follows the examples exactly: every twig tag has n nodes
and every (path) relation n tuples. The document is shaped so that the
twig-only sub-query Q2 has n^5 matches — its own worst case — while
diagonal relational tables keep the combined query's result (and bound)
tiny. This is the family on which the baseline pays the n^5 intermediate
and XJoin does not (Figure 3).

Document layout (tags of Figure 2's twig ``A(/B, /D, //C(/E), //F(/H), //G)``)::

    A (one root node, value 0)
    ├── B×n   (values 0..n-1)            -> path relation X[A/B], n tuples
    ├── D×n   (values 0..n-1)            -> path relation X[A/D], n tuples
    ├── C×n   (value i, one E child i)   -> path relation X[C/E], n tuples
    ├── F×n   (value j, one H child j)   -> path relation X[F/H], n tuples
    └── G×n   (values 0..n-1)            -> path relation X[G],   n tuples

Twig matches: 1 · n(B) · n(D) · n(C,E) · n(F,H) · n(G) = n^5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import TwigQuery
from repro.xml.twig_parser import parse_twig

#: Figure 2's twig pattern; its decomposition is R3(A,B), R4(A,D),
#: R5(C,E), R6(F,H), R7(G) — the paper's exact output.
FIGURE2_PATTERN = "A(/B, /D, //C(/E), //F(/H), //G)"


def figure2_twig(name: str = "X") -> TwigQuery:
    """The twig of Figure 2 / Examples 3.3 and 3.4."""
    return parse_twig(FIGURE2_PATTERN, name=name)


def worst_case_document(n: int) -> XMLDocument:
    """The adversarial document described in the module docstring."""
    root = XMLNode("A", text="0")
    for i in range(n):
        root.add("B", text=str(i))
    for i in range(n):
        root.add("D", text=str(i))
    for i in range(n):
        c = root.add("C", text=str(i))
        c.add("E", text=str(i))
    for j in range(n):
        f = root.add("F", text=str(j))
        f.add("H", text=str(j))
    for k in range(n):
        root.add("G", text=str(k))
    return XMLDocument(root)


def example33_relations(n: int) -> list[Relation]:
    """Example 3.3's tables: R1(B,D) and R2(F,G,H), n tuples each.

    Diagonal contents keep each |Ri| = n, the shape the example's
    symbolic analysis assumes.
    """
    r1 = Relation("R1", ("B", "D"), [(i, i) for i in range(n)])
    r2 = Relation("R2", ("F", "G", "H"), [(i, i, i) for i in range(n)])
    return [r1, r2]


def example34_relations(n: int) -> list[Relation]:
    """Example 3.4's tables: R1(A,B,C,D) and R2(E,F,G,H), n tuples each.

    The diagonals correlate the twig's branches, so the combined result
    has exactly n tuples while Q2 alone has n^5.
    """
    r1 = Relation("R1", ("A", "B", "C", "D"),
                  [(0, i, i, i) for i in range(n)])
    r2 = Relation("R2", ("E", "F", "G", "H"),
                  [(i, i, i, i) for i in range(n)])
    return [r1, r2]


@dataclass(frozen=True)
class WorstCaseInstance:
    """A fully assembled adversarial instance."""

    n: int
    query: MultiModelQuery
    document: XMLDocument
    twig: TwigQuery

    @property
    def expected_result_size(self) -> int:
        return self.n

    @property
    def expected_twig_matches(self) -> int:
        return self.n ** 5


def example34_instance(n: int, *, name: str = "Q") -> WorstCaseInstance:
    """The Figure 3 workload: Example 3.4's query at scale *n*."""
    document = worst_case_document(n)
    twig = figure2_twig()
    query = MultiModelQuery(example34_relations(n),
                            [TwigBinding(twig, document)], name=name)
    return WorstCaseInstance(n=n, query=query, document=document, twig=twig)


def example33_instance(n: int, *, name: str = "Q") -> WorstCaseInstance:
    """Example 3.3's query (R1(B,D), R2(F,G,H) + the twig) at scale *n*."""
    document = worst_case_document(n)
    twig = figure2_twig()
    query = MultiModelQuery(example33_relations(n),
                            [TwigBinding(twig, document)], name=name)
    return WorstCaseInstance(n=n, query=query, document=document, twig=twig)


def skewed_triangle(n: int, *, b_domain: int | None = None,
                    c_domain: int | None = None) -> list[Relation]:
    """A triangle instance whose *static* stats pick a provably bad order.

    R(a,b) = {(i, hash(i))} maps each of n ``a``-values onto a tiny
    ``b``-domain of d values, S(b,c) is the complete d x m grid, and
    T(a,c) = {(i, i mod m)} gives every ``a`` exactly one ``c``. Domain
    estimates (a: n, b: d, c: m) make the static planner expand the
    small skewed domains first — order (b, c, a) — which keeps d*m
    prefix tuples alive and probes ~d*m*(n/m) candidates at the ``a``
    level. Orders starting from ``a`` exploit the functional
    dependencies (one b per a via R, one c per a via T) and touch ~n
    tuples total. The adaptive planner's bound model and plan racer
    both discover this; the static policy cannot — which is exactly
    what ``bench --suite planner`` gates on.

    Defaults: d = m = max(16, n // 64) — square domains maximise the
    bad order's live-pair count (d*m) relative to |S| = d*m rows of
    encode work, keeping the gap (and hence the static planner's
    mistake) measurable across scales. The join result has exactly n
    rows.
    """
    d = b_domain if b_domain is not None else max(16, n // 64)
    m = c_domain if c_domain is not None else max(16, n // 64)
    r = Relation("R", ("a", "b"), [(i, (i * 7 + 3) % d) for i in range(n)])
    s = Relation("S", ("b", "c"),
                 [(b, c) for b in range(d) for c in range(m)])
    t = Relation("T", ("a", "c"), [(i, i % m) for i in range(n)])
    return [r, s, t]


def agm_tight_triangle(n: int) -> list[Relation]:
    """The classic skewed triangle instance where binary plans blow up.

    R(a,b), S(b,c), T(a,c), each {0}×[n] ∪ [n]×{0} (2n-1 tuples): the
    triangle join has 3n-2 result tuples, but any binary plan (e.g.
    R ⋈ S first) materialises a Θ(n^2) intermediate. The substrate
    benchmark uses it to show WCOJ beating binary joins.
    """
    star = [(0, i) for i in range(n)] + [(i, 0) for i in range(n)]
    r = Relation("R", ("a", "b"), star)
    s = Relation("S", ("b", "c"), star)
    t = Relation("T", ("a", "c"), star)
    return [r, s, t]
