"""Random multi-model instances for property-based testing.

Generates small random documents, random twigs over the document's tags,
and random relations over a mix of twig attributes and fresh attributes —
the instances on which XJoin, the baseline and the naive oracle must all
agree, and on which Lemma 3.5's intermediate-size bound is checked.
"""

from __future__ import annotations

import random

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.relational.relation import Relation
from repro.xml.generator import random_document
from repro.xml.twig import Axis, TwigNode, TwigQuery


def random_twig(rng: random.Random, tags: list[str], *,
                max_nodes: int = 4, prefix: str = "t") -> TwigQuery:
    """A random twig with distinct node names over the given tags."""
    root = TwigNode(f"{prefix}0", tag=rng.choice(tags))
    nodes = [root]
    for index in range(rng.randint(0, max_nodes - 1)):
        parent = rng.choice(nodes)
        child = parent.add(
            f"{prefix}{index + 1}", tag=rng.choice(tags),
            axis=rng.choice([Axis.CHILD, Axis.DESCENDANT]))
        nodes.append(child)
    return TwigQuery(root)


def random_relation(rng: random.Random, name: str,
                    attributes: list[str], *,
                    max_rows: int = 12, value_range: int = 4) -> Relation:
    """A random relation over *attributes* with small integer values."""
    rows = {
        tuple(rng.randint(0, value_range) for _ in attributes)
        for _ in range(rng.randint(0, max_rows))
    }
    return Relation(name, tuple(attributes), rows)


def random_multimodel_instance(seed: int, *,
                               tags: tuple[str, ...] = ("x", "y", "z"),
                               max_doc_nodes: int = 20,
                               value_range: int = 3) -> MultiModelQuery:
    """A random multi-model query joining 1-2 relations with one twig.

    Relations draw their attributes from the twig's names (forcing
    cross-model joins) plus occasional fresh attributes (exercising the
    relational-only part of the expansion).
    """
    rng = random.Random(seed)
    document = random_document(rng, tags=list(tags),
                               max_nodes=max_doc_nodes,
                               value_range=value_range)
    twig = random_twig(rng, list(tags))
    twig_attrs = list(twig.attributes)

    relations = []
    for index in range(rng.randint(1, 2)):
        arity = rng.randint(1, min(3, len(twig_attrs) + 1))
        pool = twig_attrs + [f"r{index}_extra"]
        attrs = rng.sample(pool, k=min(arity, len(pool)))
        relations.append(random_relation(
            rng, f"R{index}", attrs, value_range=value_range))
    return MultiModelQuery(relations, [TwigBinding(twig, document)],
                           name=f"rand{seed}")
