"""The paper's motivating scenario (Figure 1): bookstore orders.

A relational table ``R(orderID, userID)`` joined with an XML invoice
database whose order lines carry ISBN, price and discount. The query
twig binds (orderID, ISBN, price); the answer is Q(userID, ISBN, price).

Besides the literal three-order example of the figure, a scalable
generator produces the same shape at any size for benchmarks.
"""

from __future__ import annotations

import random

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.parser import parse_document
from repro.xml.twig import TwigQuery
from repro.xml.twig_parser import parse_twig

#: The twig of Figure 1: an order line with orderID, ISBN and price
#: children (discount is present in the data but not queried).
FIGURE1_PATTERN = "orderLine(/orderID, /ISBN, /price)"

FIGURE1_XML = """
<invoices>
  <orderLine>
    <orderID>10963</orderID>
    <ISBN>978-3-16-1</ISBN>
    <price>30</price>
    <discount>0.1</discount>
  </orderLine>
  <orderLine>
    <orderID>20134</orderID>
    <ISBN>634-3-12-2</ISBN>
    <price>20</price>
    <discount>0.3</discount>
  </orderLine>
</invoices>
"""


def figure1_relation() -> Relation:
    """The relational table of Figure 1."""
    return Relation("R", ("orderID", "userID"),
                    [(10963, "jack"), (20134, "tom"), (35768, "bob")])


def figure1_document() -> XMLDocument:
    """The invoice XML of Figure 1 (parsed with our own parser)."""
    return parse_document(FIGURE1_XML)


def figure1_twig() -> TwigQuery:
    return parse_twig(FIGURE1_PATTERN, name="invoices")


def figure1_query() -> MultiModelQuery:
    """The whole Figure 1 join, ready to evaluate.

    The expected answer, projected to (userID, ISBN, price), is
    {(jack, 978-3-16-1, 30), (tom, 634-3-12-2, 20)}.
    """
    return MultiModelQuery(
        [figure1_relation()],
        [TwigBinding(figure1_twig(), figure1_document())],
        name="Q")


def bookstore_instance(orders: int, users: int, *,
                       match_fraction: float = 0.8,
                       seed: int = 0) -> MultiModelQuery:
    """A scaled-up Figure 1: *orders* order lines, *users* customers.

    ``match_fraction`` of the relational orders reference an order line
    that exists in the XML; the rest dangle (they test that the join
    drops them). Deterministic for a given seed.
    """
    rng = random.Random(seed)
    root = XMLNode("invoices")
    isbns = [f"isbn-{i:05d}" for i in range(orders)]
    for order_index in range(orders):
        line = root.add("orderLine")
        line.add("orderID", text=str(10_000 + order_index))
        line.add("ISBN", text=isbns[order_index])
        line.add("price", text=str(rng.randint(5, 80)))
        line.add("discount", text=f"0.{rng.randint(0, 5)}")
    document = XMLDocument(root)

    rows = []
    for order_index in range(orders):
        if rng.random() < match_fraction:
            order_id = 10_000 + order_index
        else:
            order_id = 90_000 + order_index  # dangling reference
        rows.append((order_id, f"user-{rng.randrange(users):04d}"))
    relation = Relation("R", ("orderID", "userID"), rows)
    return MultiModelQuery(
        [relation], [TwigBinding(figure1_twig(), document)], name="Q")
