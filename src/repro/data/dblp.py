"""A DBLP-flavoured bibliography corpus generator.

DBLP is the canonical "XML that does not fit in RAM" corpus: one flat
``<dblp>`` root over millions of shallow publication records. This is a
compact deterministic generator of that shape — ``article`` records
with ``author*``/``title``/``pages``/``year``/``volume``/``journal``/
``ee``/``url`` children and ``inproceedings`` records swapping the
journal fields for ``booktitle``/``crossref`` — sized by a record
count, so streamed-build benchmarks can dial node counts into the
millions without a reference download.

:func:`dblp_chunks` is the streaming face: a generator of XML text
fragments (one record per chunk, O(1) memory) that feeds the
SAX-streaming builder (:mod:`repro.xml.streaming`) straight into a
file arena. :func:`dblp_document` parses the identical stream into the
in-memory tree — the parity reference and the form the query service
clones per session. Author names exercise numeric character references
(``&#252;`` and friends) and titles the predefined entities, so the
corpus covers the decode paths real DBLP exports hit.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.xml.model import XMLDocument

#: Journals for ``article`` records (name, volume ceiling).
JOURNALS = (
    ("Proc. VLDB Endow.", 17),
    ("Proc. ACM Manag. Data", 2),
    ("ACM Trans. Database Syst.", 49),
    ("VLDB J.", 33),
    ("IEEE Trans. Knowl. Data Eng.", 36),
)

#: Venues for ``inproceedings`` records.
CONFERENCES = ("SIGMOD Conference", "ICDE", "EDBT", "CIKM", "WWW")

#: Surnames with a numeric character reference mixed in — real DBLP is
#: full of diacritics, and these force the entity-decoding path.
_SURNAMES = ("Schmitt", "Kocher", "M&#252;ller", "Augsten", "Mann",
             "H&#252;tter", "Sch&#228;ler", "Thiel", "Gro&#223;e",
             "Miller", "Chen", "Zhang")
_FORENAMES = ("Daniel", "Nikolaus", "Willi", "Thomas", "Christine",
              "Konstantin", "Alexander", "Jiaheng", "Wei", "Anna")

_TITLE_WORDS = ("Adaptive", "Worst-Case", "Optimal", "Streaming",
                "Multi-Model", "Twig", "Join", "Index", "Columnar",
                "Queries", "Signatures", "Arenas")


def _author(rng: random.Random) -> str:
    return f"{rng.choice(_FORENAMES)} {rng.choice(_SURNAMES)}"


def _title(rng: random.Random) -> str:
    words = rng.sample(_TITLE_WORDS, rng.randint(3, 5))
    if rng.random() < 0.2:
        words.insert(rng.randrange(len(words)), "P &amp; Q")
    return " ".join(words) + "."


def _pages(rng: random.Random) -> str:
    lo = rng.randint(1, 2800)
    return f"{lo}-{lo + rng.randint(5, 30)}"


def dblp_chunks(n: int, *, seed: int = 0) -> Iterator[str]:
    """*n* publication records as streamed XML text fragments.

    One chunk per record (plus the root open/close), so joining the
    chunks is the document and iterating them never holds more than one
    record of text. Roughly one record in four is an ``inproceedings``;
    the rest are ``article`` records. Deterministic in *seed*.
    """
    rng = random.Random(seed)
    yield "<dblp><bib>"
    for record in range(n):
        year = rng.randint(1995, 2024)
        authors = "".join(
            f"<author>{_author(rng)}</author>"
            for _ in range(rng.randint(1, 5)))
        head = (f'<title>{_title(rng)}</title>'
                f"<pages>{_pages(rng)}</pages>"
                f"<year>{year}</year>")
        if rng.random() < 0.25:
            venue = rng.choice(CONFERENCES)
            slug = venue.split()[0].lower()
            yield (f'<inproceedings mdate="{year + 1}-02-05" '
                   f'key="conf/{slug}/R{record}">'
                   f"{authors}{head}"
                   f"<booktitle>{venue}</booktitle>"
                   f"<ee>https://doi.org/10.1145/{record}</ee>"
                   f"<crossref>conf/{slug}/{year}</crossref>"
                   f"<url>db/conf/{slug}/{slug}{year}.html#R{record}</url>"
                   f"</inproceedings>")
        else:
            journal, max_volume = rng.choice(JOURNALS)
            yield (f'<article mdate="{year + 1}-02-05" '
                   f'key="journals/j{record % 7}/R{record}">'
                   f"{authors}{head}"
                   f"<volume>{rng.randint(1, max_volume)}</volume>"
                   f"<journal>{journal}</journal>"
                   f"<ee>https://doi.org/10.14778/{record}</ee>"
                   f"<url>db/journals/j{record % 7}.html#R{record}</url>"
                   f"</article>")
    yield "</bib></dblp>"


def dblp_document(n: int, *, seed: int = 0) -> "XMLDocument":
    """The in-memory twin: the same *n* records as a parsed tree.

    Parses exactly the text :func:`dblp_chunks` streams, so the
    streamed arena build and this tree agree column for column — the
    parity reference for the streaming tests and the corpus form the
    query service clones per session.
    """
    from repro.xml.parser import parse_document

    return parse_document("".join(dblp_chunks(n, seed=seed)))


def dblp_query(document: "XMLDocument", *,
               name: str = "DBLP") -> "MultiModelQuery":
    """A multi-model query joining articles to a relational era table.

    The twig projects each article's year and journal; the relation
    maps publication years onto era labels, so the join answers
    "articles per journal per era" — one twig binding plus one relation
    over the shared ``y`` attribute, the minimal multi-model shape the
    planner, executor and service all accept.
    """
    from repro.core.multimodel import MultiModelQuery, TwigBinding
    from repro.relational.relation import Relation
    from repro.xml.twig_parser import parse_twig

    twig = parse_twig("a=article(/y=year, /j=journal)")
    eras = Relation(
        "eras", ("y", "era"),
        [(year, f"{(year // 10) * 10}s") for year in range(1995, 2025)])
    return MultiModelQuery([eras], [TwigBinding(twig, document)],
                           name=name)
