"""Workloads: the paper's synthetic instances and the Figure 1 scenario."""

from repro.data.random_instances import (
    random_multimodel_instance,
    random_relation,
    random_twig,
)
from repro.data.scenarios import (
    FIGURE1_PATTERN,
    bookstore_instance,
    figure1_document,
    figure1_query,
    figure1_relation,
    figure1_twig,
)
from repro.data.synthetic import (
    FIGURE2_PATTERN,
    WorstCaseInstance,
    agm_tight_triangle,
    example33_instance,
    example33_relations,
    example34_instance,
    example34_relations,
    figure2_twig,
    worst_case_document,
)

__all__ = [
    "FIGURE1_PATTERN",
    "FIGURE2_PATTERN",
    "WorstCaseInstance",
    "agm_tight_triangle",
    "bookstore_instance",
    "example33_instance",
    "example33_relations",
    "example34_instance",
    "example34_relations",
    "figure1_document",
    "figure1_query",
    "figure1_relation",
    "figure1_twig",
    "figure2_twig",
    "random_multimodel_instance",
    "random_relation",
    "random_twig",
    "worst_case_document",
]
