"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``figure1``  — the paper's motivating join (default)
* ``bounds``   — Figure 2 decomposition + Example 3.3 exact bounds
* ``figure3 [n]`` — baseline vs XJoin on the adversarial instance
* ``selftest`` — a quick cross-algorithm consistency check
"""

from __future__ import annotations

import sys
import time

from repro.core.baseline import baseline_join
from repro.core.decomposition import decompose
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.scenarios import figure1_query
from repro.data.synthetic import example33_instance, example34_instance, figure2_twig
from repro.instrumentation import JoinStats


def cmd_figure1() -> int:
    query = figure1_query()
    result = xjoin(query).project(["userID", "ISBN", "price"])
    print("Q(userID, ISBN, price):")
    for row in result.sorted_rows():
        print("  ", row)
    return 0


def cmd_bounds() -> int:
    twig = figure2_twig()
    print("decomposition of the Figure 2 twig:")
    for index, path in enumerate(decompose(twig).paths):
        print(f"  R{index + 3}({', '.join(path.attributes)})")
    instance = example33_instance(2)
    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="X")
    print(f"twig bound:  n^{twig_only.symbolic_exponent()}")
    print(f"query bound: n^{instance.query.symbolic_exponent()}")
    return 0


def cmd_figure3(n: int = 6) -> int:
    instance = example34_instance(n)
    xstats, bstats = JoinStats(), JoinStats()
    start = time.perf_counter()
    xresult = xjoin(instance.query, stats=xstats)
    xtime = time.perf_counter() - start
    start = time.perf_counter()
    bresult = baseline_join(instance.query, stats=bstats)
    btime = time.perf_counter() - start
    assert xresult == bresult
    print(f"n={n}: |Q|={len(xresult)}")
    print(f"xjoin:    {xtime * 1e3:8.1f}ms, "
          f"max intermediate {xstats.max_intermediate}")
    print(f"baseline: {btime * 1e3:8.1f}ms, "
          f"max intermediate {bstats.max_intermediate}")
    print(f"ratios:   time {btime / max(xtime, 1e-9):.1f}x, "
          f"size {bstats.max_intermediate / max(xstats.max_intermediate, 1):.1f}x")
    return 0


def cmd_selftest() -> int:
    from repro.data.random_instances import random_multimodel_instance

    failures = 0
    for seed in range(20):
        query = random_multimodel_instance(seed)
        naive = query.naive_join()
        if xjoin(query) != naive or baseline_join(query) != naive:
            print(f"MISMATCH at seed {seed}")
            failures += 1
    print("selftest:", "FAILED" if failures else "ok",
          f"({20 - failures}/20 instances consistent)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "figure1"
    if command == "figure1":
        return cmd_figure1()
    if command == "bounds":
        return cmd_bounds()
    if command == "figure3":
        n = int(args[1]) if len(args) > 1 else 6
        return cmd_figure3(n)
    if command == "selftest":
        return cmd_selftest()
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
