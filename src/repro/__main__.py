"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``figure1``  — the paper's motivating join (default)
* ``bounds``   — Figure 2 decomposition + Example 3.3 exact bounds
* ``figure3 [n]`` — baseline vs XJoin on the adversarial instance
* ``bench [n]``   — race the engine's algorithms on the standard scenarios
* ``selftest`` — a quick cross-algorithm consistency check
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.baseline import baseline_join
from repro.core.decomposition import decompose
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.scenarios import figure1_query
from repro.data.synthetic import (
    agm_tight_triangle,
    example33_instance,
    example34_instance,
    figure2_twig,
)
from repro.instrumentation import JoinStats


def cmd_figure1() -> int:
    query = figure1_query()
    result = xjoin(query).project(["userID", "ISBN", "price"])
    print("Q(userID, ISBN, price):")
    for row in result.sorted_rows():
        print("  ", row)
    return 0


def cmd_bounds() -> int:
    twig = figure2_twig()
    print("decomposition of the Figure 2 twig:")
    for index, path in enumerate(decompose(twig).paths):
        print(f"  R{index + 3}({', '.join(path.attributes)})")
    instance = example33_instance(2)
    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="X")
    print(f"twig bound:  n^{twig_only.symbolic_exponent()}")
    print(f"query bound: n^{instance.query.symbolic_exponent()}")
    return 0


def cmd_figure3(n: int = 6) -> int:
    instance = example34_instance(n)
    xstats, bstats = JoinStats(), JoinStats()
    start = time.perf_counter()
    xresult = xjoin(instance.query, stats=xstats)
    xtime = time.perf_counter() - start
    start = time.perf_counter()
    bresult = baseline_join(instance.query, stats=bstats)
    btime = time.perf_counter() - start
    assert xresult == bresult
    print(f"n={n}: |Q|={len(xresult)}")
    print(f"xjoin:    {xtime * 1e3:8.1f}ms, "
          f"max intermediate {xstats.max_intermediate}")
    print(f"baseline: {btime * 1e3:8.1f}ms, "
          f"max intermediate {bstats.max_intermediate}")
    print(f"ratios:   time {btime / max(xtime, 1e-9):.1f}x, "
          f"size {bstats.max_intermediate / max(xstats.max_intermediate, 1):.1f}x")
    return 0


def cmd_bench(n: int = 150) -> int:
    """Race the registered engine algorithms on the standard scenarios."""
    from repro.engine.encoded import EncodedInstance
    from repro.engine.interface import get_algorithm
    from repro.relational.plans import execute_plan, left_deep_plan

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return out, (time.perf_counter() - start) * 1e3

    relations = agm_tight_triangle(n)
    named = {r.name: r for r in relations}
    order = ("a", "b", "c")
    instance = EncodedInstance.from_relations(relations, order)
    print(f"triangle (n={n}, {len(relations)} relations; "
          "one shared encoded instance):")
    reference = None
    for algorithm in ("generic_join", "leapfrog"):
        result, ms = timed(lambda: get_algorithm(algorithm).run(instance))
        if reference is None:
            reference = result
        elif result != reference:
            print(f"error: {algorithm!r} disagrees with the reference "
                  f"result ({len(result)} vs {len(reference)} rows)",
                  file=sys.stderr)
            return 1
        print(f"  {algorithm:<14} {ms:8.2f}ms  |Q|={len(result)}")
    _, ms = timed(lambda: execute_plan(left_deep_plan(["R", "S", "T"]),
                                       named))
    print(f"  {'binary plan':<14} {ms:8.2f}ms  (traditional foil)")

    m = max(2, min(8, n // 20))
    instance34 = example34_instance(m)
    print(f"figure 3 scenario (n={m}):")
    xresult, ms = timed(lambda: xjoin(instance34.query))
    print(f"  {'xjoin':<14} {ms:8.2f}ms  |Q|={len(xresult)}")
    bresult, ms = timed(lambda: baseline_join(instance34.query))
    if bresult != xresult:
        print("error: baseline disagrees with xjoin "
              f"({len(bresult)} vs {len(xresult)} rows)", file=sys.stderr)
        return 1
    print(f"  {'baseline':<14} {ms:8.2f}ms")
    return 0


def cmd_selftest() -> int:
    from repro.data.random_instances import random_multimodel_instance

    failures = 0
    for seed in range(20):
        query = random_multimodel_instance(seed)
        naive = query.naive_join()
        if xjoin(query) != naive or baseline_join(query) != naive:
            print(f"MISMATCH at seed {seed}")
            failures += 1
    print("selftest:", "FAILED" if failures else "ok",
          f"({20 - failures}/20 instances consistent)")
    return 1 if failures else 0


class _BadArgument(Exception):
    """A command argument failed to parse (reported before dispatch)."""


def _int_argument(command: str, args: list[str], default: int) -> int:
    """Parse the command's optional integer argument; only *argument*
    errors map to the exit-2 usage failure, never a command's internals."""
    if len(args) <= 1:
        return default
    try:
        return int(args[1])
    except ValueError as exc:
        print(f"error: bad argument for {command!r}: {exc}", file=sys.stderr)
        raise _BadArgument from None


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "figure1"
    try:
        if command == "figure1":
            return cmd_figure1()
        if command == "bounds":
            return cmd_bounds()
        if command == "figure3":
            return cmd_figure3(_int_argument(command, args, 6))
        if command == "bench":
            return cmd_bench(_int_argument(command, args, 150))
        if command == "selftest":
            return cmd_selftest()
    except _BadArgument:
        return 2
    except BrokenPipeError:
        # Downstream filter closed the pipe (e.g. ``repro bench | head``);
        # point stdout at devnull so shutdown flushes don't traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    print(f"error: unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
