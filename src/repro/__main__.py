"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``figure1``  — the paper's motivating join (default)
* ``bounds``   — Figure 2 decomposition + Example 3.3 exact bounds
* ``figure3 [n]`` — baseline vs XJoin on the adversarial instance
* ``bench [n]``   — race the engine's algorithms on the standard scenarios
  (``--suite twig`` races the registered twig matchers on an XMark
  document; ``--suite updates`` races delta-apply against
  rebuild-from-scratch for single-tuple / single-subtree changes;
  ``--suite parallel`` races the partition-parallel executor against
  serial execution; ``--suite buffers`` races the batch buffer kernels
  against the list-based leapfrog and the shm spawn transport against
  serial twig matching; ``--suite service`` measures the multi-tenant
  query service — queries/sec and p50/p99 snapshot-read latency at
  1/4/16 concurrent clients under a background update stream;
  ``--suite planner`` races the static planner's plan against the
  adaptive feedback-driven planner on the skewed triangle and an
  XMark multi-model scenario; ``--suite corpus`` streams a DBLP-style
  corpus into a file-backed mmap arena and reports build throughput,
  cold-attach query latency and subprocess peak RSS against the
  in-memory build; ``--suite accel`` races the relational
  XPath-accelerator backend against TJFast and TwigStack on an XMark
  factor-4 document and the streamed ``xmark-stream`` corpus — row
  parity is fatal, speedups are reported, and with ``--workers N``
  the accelerator also runs partition-parallel)
* ``explain [corpus-spec]`` — print the adaptive planner's chosen plan
  for a corpus spec (default ``skewed``): expansion order, operator,
  partitions, and per-stage estimated vs observed cardinalities from
  one instrumented execution
* ``serve`` — host a corpus behind the line-JSON query service
  (``docs/service.md``): TCP by default (``--port 0`` prints the
  kernel-chosen port), ``--stdio`` for a pipe transport
* ``selftest`` — a quick cross-algorithm consistency check

Options:

* ``--twig-algorithm NAME`` — force one registered twig matcher
  (``twigstack``/``tjfast``/``pathstack``/``structural``/``accel``/
  ``naive``) instead of the planner's stats-driven choice, for A/B
  runs on the multi-model scenarios. Applies to ``figure3``, ``bench``
  and ``selftest``.
* ``--suite NAME`` — ``bench`` suite: ``engine`` (default), ``twig``,
  ``updates``, ``parallel``, ``buffers``, ``service``, ``planner``,
  ``corpus`` or ``accel``.
* ``--workers N`` — worker processes for partition-parallel execution
  (default 0 = serial). ``bench --suite parallel`` races serial against
  this pool size; ``bench --suite twig`` and ``bench --suite accel``
  run the matchers through the parallel executor (so
  ``bench --suite twig --twig-algorithm accel --workers 2`` is the
  accelerator partition-parallel, sliced on the root tag's pre-range);
  ``selftest`` additionally checks parallel/serial parity for every
  registered algorithm; ``serve`` offloads heavy queries to this pool;
  ``explain`` shows the partition count the adaptive planner would
  choose for this pool size.
* ``--corpus SPEC`` — ``serve``: the hosted corpus, e.g. ``figure1``
  (default), ``bookstore:orders=40,users=12``, ``triangle:n=8``,
  ``dblp:5000`` or ``xmark-stream:4``.
* ``--host H`` / ``--port P`` — ``serve``: TCP bind address (default
  ``127.0.0.1``, port 0 = kernel-chosen, printed on startup).
* ``--stdio`` — ``serve``: speak the protocol over stdin/stdout
  instead of TCP.
* ``--json`` — with ``bench``: also write ``BENCH_<suite>.json`` in the
  current directory, one record per timed workload with ``suite``,
  ``scenario``, ``workload``, ``median_ms`` and ``speedup`` (``null``
  where the workload has no foil to compare against).
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.baseline import baseline_join
from repro.core.decomposition import decompose
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.scenarios import figure1_query
from repro.data.synthetic import (
    agm_tight_triangle,
    example33_instance,
    example34_instance,
    figure2_twig,
)
from repro.errors import EngineError, TwigError
from repro.instrumentation import JoinStats


def cmd_figure1() -> int:
    query = figure1_query()
    result = xjoin(query).project(["userID", "ISBN", "price"])
    print("Q(userID, ISBN, price):")
    for row in result.sorted_rows():
        print("  ", row)
    return 0


def cmd_bounds() -> int:
    twig = figure2_twig()
    print("decomposition of the Figure 2 twig:")
    for index, path in enumerate(decompose(twig).paths):
        print(f"  R{index + 3}({', '.join(path.attributes)})")
    instance = example33_instance(2)
    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="X")
    print(f"twig bound:  n^{twig_only.symbolic_exponent()}")
    print(f"query bound: n^{instance.query.symbolic_exponent()}")
    return 0


def cmd_figure3(n: int = 6, twig_algorithm: str | None = None) -> int:
    instance = example34_instance(n)
    xstats, bstats = JoinStats(), JoinStats()
    start = time.perf_counter()
    xresult = xjoin(instance.query, stats=xstats)
    xtime = time.perf_counter() - start
    start = time.perf_counter()
    bresult = baseline_join(instance.query, twig_algorithm=twig_algorithm,
                            stats=bstats)
    btime = time.perf_counter() - start
    assert xresult == bresult
    print(f"n={n}: |Q|={len(xresult)}")
    print(f"xjoin:    {xtime * 1e3:8.1f}ms, "
          f"max intermediate {xstats.max_intermediate}")
    print(f"baseline: {btime * 1e3:8.1f}ms, "
          f"max intermediate {bstats.max_intermediate}")
    print(f"ratios:   time {btime / max(xtime, 1e-9):.1f}x, "
          f"size {bstats.max_intermediate / max(xstats.max_intermediate, 1):.1f}x")
    return 0


def cmd_bench(n: int = 150, twig_algorithm: str | None = None,
              records: list | None = None) -> int:
    """Race the registered engine algorithms on the standard scenarios."""
    from repro.engine.encoded import EncodedInstance
    from repro.engine.interface import get_algorithm
    from repro.relational.plans import execute_plan, left_deep_plan

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return out, (time.perf_counter() - start) * 1e3

    relations = agm_tight_triangle(n)
    named = {r.name: r for r in relations}
    order = ("a", "b", "c")
    instance = EncodedInstance.from_relations(relations, order)
    scenario = f"triangle n={n}"
    print(f"triangle (n={n}, {len(relations)} relations; "
          "one shared encoded instance):")
    reference = None
    wcoj_timings = []
    for algorithm in ("generic_join", "leapfrog"):
        result, ms = timed(lambda: get_algorithm(algorithm).run(instance))
        if reference is None:
            reference = result
        elif result != reference:
            print(f"error: {algorithm!r} disagrees with the reference "
                  f"result ({len(result)} vs {len(reference)} rows)",
                  file=sys.stderr)
            return 1
        wcoj_timings.append((algorithm, ms))
        print(f"  {algorithm:<14} {ms:8.2f}ms  |Q|={len(result)}")
    _, plan_ms = timed(lambda: execute_plan(left_deep_plan(["R", "S", "T"]),
                                            named))
    print(f"  {'binary plan':<14} {plan_ms:8.2f}ms  (traditional foil)")
    if records is not None:
        for algorithm, ms in wcoj_timings:
            _record(records, scenario, algorithm, ms,
                    plan_ms / max(ms, 1e-9))
        _record(records, scenario, "binary plan", plan_ms, None)

    m = max(2, min(8, n // 20))
    instance34 = example34_instance(m)
    print(f"figure 3 scenario (n={m}):")
    xresult, xms = timed(lambda: xjoin(instance34.query))
    print(f"  {'xjoin':<14} {xms:8.2f}ms  |Q|={len(xresult)}")
    bresult, bms = timed(
        lambda: baseline_join(instance34.query,
                              twig_algorithm=twig_algorithm))
    if bresult != xresult:
        print("error: baseline disagrees with xjoin "
              f"({len(bresult)} vs {len(xresult)} rows)", file=sys.stderr)
        return 1
    print(f"  {'baseline':<14} {bms:8.2f}ms")
    if records is not None:
        _record(records, f"figure 3 n={m}", "xjoin", xms,
                bms / max(xms, 1e-9))
        _record(records, f"figure 3 n={m}", "baseline", bms, None)
    return 0


def cmd_bench_twig(n: int = 150, twig_algorithm: str | None = None,
                   records: list | None = None, workers: int = 0) -> int:
    """Race the registered twig matchers on an XMark document.

    With ``workers >= 2`` every matcher runs through the
    partition-parallel executor instead of its serial entry point
    (accel rides the join partitioner on the root tag's pre-range, the
    navigational matchers the root-posting slicer)."""
    from repro.engine.planner import choose_twig_algorithm
    from repro.xml.interface import available_twig_algorithms, \
        get_twig_algorithm
    from repro.xml.twig_parser import parse_twig
    from repro.xml.xmark import xmark_document

    executor = None
    if workers >= 2:
        from repro.parallel.executor import ParallelExecutor

        executor = ParallelExecutor(workers)
    factor = max(n, 1) / 500
    document = xmark_document(factor, seed=7)
    twigs = [
        ("auction bidders", "oa=open_auction(/ir=itemref, //pr=personref)"),
        ("person interests", "p=person(/nm=name, //i=interest)"),
        ("items by category", "rg=regions(//it=item(/ic=incategory))"),
        ("bid chain", "oa=open_auction(//bd=bidder(/pr=personref))"),
    ]
    names = ([twig_algorithm] if twig_algorithm
             else available_twig_algorithms())
    pool = f", {workers}-worker pool" if executor is not None else ""
    print(f"twig suite (XMark factor {factor:g}, "
          f"{document.size()} nodes{pool}):")
    for label, pattern in twigs:
        twig = parse_twig(pattern)
        planned = choose_twig_algorithm(document, twig)
        print(f"  {label} [{pattern}] -> planner picks {planned!r}")
        reference = None
        timings = []
        for name in names:
            algorithm = get_twig_algorithm(name)
            if not algorithm.supports(twig):
                print(f"    {name:<12} (unsupported)")
                continue
            start = time.perf_counter()
            if executor is not None:
                result = executor.run_twig(document, twig, name)
            else:
                result = algorithm.run(document, twig)
            ms = (time.perf_counter() - start) * 1e3
            if reference is None:
                reference = result
            elif result != reference:
                print(f"error: {name!r} disagrees on {label!r} "
                      f"({len(result)} vs {len(reference)} rows)",
                      file=sys.stderr)
                return 1
            timings.append((name, ms))
            print(f"    {name:<12} {ms:8.2f}ms  |answer|={len(result)}")
        if records is not None and timings:
            slowest = max(ms for _name, ms in timings)
            for name, ms in timings:
                _record(records, label, name, ms, slowest / max(ms, 1e-9))
    return 0


def cmd_bench_updates(n: int = 300, records: list | None = None) -> int:
    """Race delta-apply against rebuild-from-scratch on the dynamic
    scenarios (shared with ``benchmarks/bench_updates.py`` through
    :mod:`repro.updates.bench`): the triangle query under single-tuple
    churn and an XMark factor-2 document under single-subtree churn.
    Fails on a delta/rebuild divergence or a missed speedup target."""
    from repro.updates.bench import (
        SPEEDUP_TARGET,
        triangle_scenario,
        xmark_scenario,
    )

    failures = 0
    for result in (triangle_scenario(n), xmark_scenario()):
        print(f"update suite: {result.title}:")
        for timing in result.timings:
            print(f"  {timing.label:<14} "
                  f"delta-apply {timing.delta_ms:8.3f}ms/update   "
                  f"rebuild {timing.rebuild_ms:8.3f}ms/update   "
                  f"speedup {timing.ratio:5.1f}x "
                  f"(target >= {SPEEDUP_TARGET:g}x)")
            if records is not None:
                _record(records, result.title, timing.label,
                        timing.delta_ms, timing.ratio)
        if not result.consistent:
            print(f"error: {result.title}: session diverged from rebuild",
                  file=sys.stderr)
            failures += 1
        elif not result.ok:
            print(f"error: {result.title}: delta-apply missed the "
                  f"{SPEEDUP_TARGET:g}x target", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def cmd_bench_parallel(n: int = 2000, workers: int = 2,
                       records: list | None = None) -> int:
    """Race the partition-parallel executor against serial execution
    (shared with ``benchmarks/bench_parallel.py`` through
    :mod:`repro.parallel.bench`). Parity failures are fatal; speedups
    are reported against the target but only enforced by the benchmark
    suite (which knows the machine's core budget)."""
    from repro.parallel.bench import (
        SPEEDUP_TARGET,
        available_cores,
        triangle_scenario,
        xmark_scenario,
    )

    failures = 0
    scenarios = (triangle_scenario(max(n, 600), workers=workers),
                 xmark_scenario(4.0, workers=workers,
                                fanout=max(4, min(n // 100, 40))))
    print(f"parallel suite: {workers} workers on "
          f"{available_cores()} core(s); target >= {SPEEDUP_TARGET:g}x "
          "(enforced by benchmarks/bench_parallel.py when cores allow)")
    for result in scenarios:
        print(f"  {result.title}:")
        for timing in result.timings:
            gate = "" if timing.gated else "  (reported only)"
            print(f"    {timing.label:<24} serial {timing.serial_ms:8.1f}ms"
                  f"   parallel {timing.parallel_ms:8.1f}ms"
                  f"   speedup {timing.speedup:5.2f}x{gate}")
            if records is not None:
                _record(records, result.title, timing.label,
                        timing.parallel_ms, timing.speedup)
        if not result.consistent:
            print(f"error: {result.title}: parallel answer diverged "
                  "from serial", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def cmd_bench_buffers(n: int = 3000, records: list | None = None) -> int:
    """Race the batch buffer kernels against the list-based leapfrog
    and the shm spawn transport against serial twig matching (shared
    with ``benchmarks/bench_buffers.py`` through
    :mod:`repro.buffers.bench`). Parity, attach-only shipping and a
    clean ``/dev/shm`` are fatal; the kernel speedup target is enforced
    by the benchmark suite."""
    from repro.buffers.bench import (
        SPEEDUP_TARGET,
        intersection_scenario,
        spawn_twig_scenario,
    )

    failures = 0
    scenarios = (intersection_scenario(max(n, 600)),
                 spawn_twig_scenario(4.0, workers=2))
    print(f"buffers suite: batch kernels vs list foils; kernel target "
          f">= {SPEEDUP_TARGET:g}x (enforced by benchmarks/"
          "bench_buffers.py at n >= 3000)")
    for result in scenarios:
        print(f"  {result.title}:")
        for timing in result.timings:
            gate = "" if timing.gated else "  (reported only)"
            print(f"    {timing.label:<28} foil {timing.list_ms:8.1f}ms"
                  f"   batch {timing.buffer_ms:8.1f}ms"
                  f"   speedup {timing.speedup:5.2f}x{gate}")
            if records is not None:
                _record(records, result.title, timing.label,
                        timing.buffer_ms, timing.speedup)
        if not result.consistent:
            print(f"error: {result.title}: batch answer diverged from "
                  "the list foil", file=sys.stderr)
            failures += 1
        if not result.attach_only:
            print(f"error: {result.title}: a worker received a pickled "
                  "instance (attach-only violated)", file=sys.stderr)
            failures += 1
        if result.leaked:
            print(f"error: {result.title}: leaked shared-memory "
                  f"segments {list(result.leaked)!r}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def cmd_bench_service(n: int = 12, records: list | None = None) -> int:
    """Measure the multi-tenant query service (shared with
    ``benchmarks/bench_service.py`` through :mod:`repro.service.bench`):
    queries/sec and p50/p99 latency of the full pin -> snapshot query ->
    release cycle at each client count, while one background writer
    streams update batches for the whole run."""
    from repro.service.bench import run_service_bench

    results = run_service_bench(queries_per_client=max(n, 4))
    print("service suite: pin -> snapshot query -> release under a live "
          "writer (fresh server per client count):")
    for result in results:
        print(f"  {result.clients:>2} client(s)  {result.qps:8.1f} q/s   "
              f"p50 {result.p50_ms:7.2f}ms   p99 {result.p99_ms:7.2f}ms   "
              f"({result.queries} queries, {result.batches} update "
              "batches)")
        if records is not None:
            # Base keys match every other suite; qps/p99_ms ride along.
            records.append({
                "scenario": result.corpus,
                "workload": f"{result.clients} clients",
                "median_ms": round(result.p50_ms, 3),
                "speedup": None,
                "qps": round(result.qps, 1),
                "p99_ms": round(result.p99_ms, 3)})
    return 0


def cmd_bench_corpus(n: int = 8000, records: list | None = None) -> int:
    """Stream a DBLP-style corpus into a file-backed mmap arena (shared
    with ``benchmarks/bench_corpus.py`` through :mod:`repro.data.bench`):
    streamed-build throughput and cold-attach query latency against the
    in-memory parse, plus subprocess peak RSS of both build paths. Row
    parity, the RSS ratio and a clean arena tempdir are fatal."""
    from repro.data.bench import RSS_RATIO_TARGET, dblp_corpus_scenario

    # Floor: below ~4k records the interpreter's baseline RSS drowns
    # the tree-vs-arena difference and the ratio gate is meaningless.
    result = dblp_corpus_scenario(max(n, 4000))
    print(f"corpus suite: {result.title}; streamed build must hold "
          f"peak RSS <= {RSS_RATIO_TARGET:g}x the in-memory build")
    for timing in result.timings:
        print(f"  {timing.label:<14} in-memory {timing.inmemory_ms:8.1f}ms"
              f"   streamed {timing.streamed_ms:8.1f}ms")
        if records is not None:
            _record(records, result.title, timing.label,
                    timing.streamed_ms,
                    timing.inmemory_ms / max(timing.streamed_ms, 1e-9))
    build = result.timings[0]
    throughput = result.nodes / max(build.streamed_ms / 1e3, 1e-9)
    print(f"  streamed build {throughput:,.0f} nodes/s into "
          f"{result.arena_bytes / 1e6:.1f}MB on disk")
    print(f"  peak RSS       in-memory {result.inmemory_peak_kb / 1024:8.1f}MB"
          f"   streamed {result.streamed_peak_kb / 1024:8.1f}MB"
          f"   ratio {result.rss_ratio:.2f}")
    if records is not None:
        records.append({
            "scenario": result.title, "workload": "peak RSS",
            "median_ms": None, "speedup": None,
            "nodes": result.nodes,
            "arena_bytes": result.arena_bytes,
            "build_nodes_per_s": round(throughput),
            "inmemory_peak_kb": result.inmemory_peak_kb,
            "streamed_peak_kb": result.streamed_peak_kb,
            "rss_ratio": round(result.rss_ratio, 3)})
    failures = 0
    if not result.consistent:
        print("error: streamed-arena query rows diverged from the "
              "in-memory build", file=sys.stderr)
        failures += 1
    if not result.meets_rss_target:
        print(f"error: streamed build peak RSS ratio {result.rss_ratio:.2f} "
              f"exceeds the {RSS_RATIO_TARGET:g} target", file=sys.stderr)
        failures += 1
    if result.leaked:
        print(f"error: leaked arena temp files {list(result.leaked)!r}",
              file=sys.stderr)
        failures += 1
    return 1 if failures else 0


def cmd_bench_planner(n: int = 4096, records: list | None = None) -> int:
    """Race the static planner's plan against the adaptive planner
    (shared with ``benchmarks/bench_planner.py`` through
    :mod:`repro.engine.bench`): the steady-state skewed-triangle join
    is gated at the speedup target; the cold one-shot path and the
    XMark multi-model scenario are reported alongside. Parity failures
    are always fatal."""
    from repro.engine.bench import (
        SPEEDUP_TARGET,
        skewed_triangle_scenario,
        xmark_scenario,
    )

    failures = 0
    scenarios = (skewed_triangle_scenario(max(n, 512)), xmark_scenario())
    print("planner suite: static plan vs adaptive (feedback corrections "
          "+ bound ordering + plan racing); gated target "
          f">= {SPEEDUP_TARGET:g}x on the steady-state skewed triangle")
    for result in scenarios:
        print(f"  {result.title}:")
        for timing in result.timings:
            gate = "" if timing.gated else "  (reported only)"
            print(f"    {timing.label:<24} static {timing.static_ms:8.1f}ms"
                  f"   adaptive {timing.adaptive_ms:8.1f}ms"
                  f"   speedup {timing.speedup:5.2f}x{gate}")
            if records is not None:
                _record(records, result.title, timing.label,
                        timing.adaptive_ms, timing.speedup)
        if not result.consistent:
            print(f"error: {result.title}: adaptive answer diverged "
                  "from the static plan", file=sys.stderr)
            failures += 1
        elif not result.ok:
            print(f"error: {result.title}: adaptive plan missed the "
                  f"{SPEEDUP_TARGET:g}x target", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def cmd_bench_accel(n: int = 4, workers: int = 0,
                    records: list | None = None) -> int:
    """Race the relational XPath-accelerator backend against TJFast and
    TwigStack (shared with ``benchmarks/bench_accel.py`` through
    :mod:`repro.xml.bench`) on an XMark factor-*n* document and the
    streamed ``xmark-stream`` corpus queried from its mmap arena. Row
    parity across every matcher (and, with ``--workers``, between the
    serial and partition-parallel accelerator runs) is fatal; speedups
    are reported — which side wins depends on how selective the twig's
    value predicates are."""
    from repro.xml.bench import stream_scenario, xmark_scenario

    factor = float(max(n, 1))
    failures = 0
    scenarios = (xmark_scenario(factor, workers=workers),
                 stream_scenario(factor, workers=workers))
    pool = (f"; accel also partition-parallel on {workers} workers"
            if workers >= 2 else "")
    print("accel suite: relational accelerator vs holistic matchers "
          f"(parity fatal, speedups reported{pool})")
    for result in scenarios:
        print(f"  {result.title}:")
        for timing in result.timings:
            print(f"    {timing.label:<22} {timing.rival:<12} "
                  f"{timing.rival_ms:8.2f}ms   accel "
                  f"{timing.accel_ms:8.2f}ms   speedup "
                  f"{timing.speedup:5.2f}x")
            if records is not None:
                _record(records, result.title,
                        f"{timing.label} vs {timing.rival}",
                        timing.accel_ms, timing.speedup)
        if not result.consistent:
            print(f"error: {result.title}: a matcher diverged from the "
                  "accelerator's rows", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def cmd_explain(spec: str = "skewed", workers: int = 0) -> int:
    """Print the adaptive plan for *spec* with estimated vs observed
    per-stage cardinalities (from one instrumented execution), and note
    any re-planned choice once the observation is folded back."""
    from repro.engine.adaptive import (
        AdaptivePlanner,
        FeedbackStore,
        observed_stage_sizes,
    )
    from repro.engine.planner import run_query
    from repro.errors import ServiceError
    from repro.service.corpus import corpus_query

    try:
        query = corpus_query(spec)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    planner = AdaptivePlanner(store=FeedbackStore())
    plan = planner.plan(query, workers=workers)
    print(f"plan for {spec!r}:")
    print(f"  order:      {' -> '.join(plan.order)}  "
          f"(policy {plan.policy!r})")
    print(f"  operator:   {plan.algorithm}")
    for binding_name, matcher in plan.twig_algorithms:
        print(f"  twig:       {binding_name} via {matcher}")
    partitions = f"{plan.partitions}"
    if plan.partition_axis is not None:
        partitions += f" on {plan.partition_axis!r}"
    print(f"  partitions: {partitions}")
    stats = JoinStats()
    result = run_query(query, order=plan.order, algorithm=plan.algorithm,
                       stats=stats, workers=workers)
    planner.observe(query, plan.order, stats)
    observed = observed_stage_sizes(stats, plan.order)
    estimates = dict(plan.stage_estimates)
    print("  stage cardinalities (upper-bound estimate vs observed):")
    for attribute in plan.order:
        estimate = estimates.get(attribute)
        seen = observed.get(attribute)
        estimate_text = "?" if estimate is None else f"{estimate}"
        seen_text = "?" if seen is None else f"{seen}"
        print(f"    {attribute:<12} est {estimate_text:>10}   "
              f"observed {seen_text:>10}")
    print(f"  result: {len(result)} rows")
    replanned = planner.plan(query, workers=workers)
    if (replanned.order, replanned.algorithm) != \
            (plan.order, plan.algorithm):
        print(f"  after observation: planner switches to "
              f"{' -> '.join(replanned.order)} ({replanned.algorithm})")
    else:
        print("  after observation: plan unchanged (converged)")
    return 0


def cmd_serve(corpus: str, host: str, port: int, stdio: bool,
              workers: int = 0) -> int:
    """Host *corpus* behind the line-JSON query service until EOF /
    a ``shutdown`` request / Ctrl-C (protocol: ``docs/service.md``)."""
    import asyncio

    from repro.errors import ServiceError
    from repro.service.server import ReproService

    try:
        service = ReproService(corpus, workers=workers)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if stdio:
            asyncio.run(service.serve_stdio())
        else:
            asyncio.run(service.serve_tcp(host=host, port=port))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_selftest(twig_algorithm: str | None = None,
                 workers: int = 0) -> int:
    from repro.data.random_instances import random_multimodel_instance

    parallel = None
    if workers > 1:
        from repro.parallel.executor import ParallelExecutor

        parallel = ParallelExecutor(workers)
    failures = 0
    for seed in range(20):
        query = random_multimodel_instance(seed)
        naive = query.naive_join()
        baseline = baseline_join(query, twig_algorithm=twig_algorithm)
        if xjoin(query) != naive or baseline != naive:
            print(f"MISMATCH at seed {seed}")
            failures += 1
        elif parallel is not None and parallel.run_query(query) != naive:
            print(f"PARALLEL MISMATCH at seed {seed}")
            failures += 1
    suffix = f", {workers}-worker parallel parity" if parallel else ""
    print("selftest:", "FAILED" if failures else "ok",
          f"({20 - failures}/20 instances consistent{suffix})")
    return 1 if failures else 0


def _record(records: list, scenario: str, workload: str,
            median_ms: float, speedup: float | None) -> None:
    """Append one ``BENCH_<suite>.json`` record (suite filled on write)."""
    records.append({"scenario": scenario, "workload": workload,
                    "median_ms": round(median_ms, 3),
                    "speedup": None if speedup is None
                    else round(speedup, 3)})


def _write_bench_json(suite: str, records: list) -> None:
    """Write ``BENCH_<suite>.json`` in the current directory."""
    import json

    path = f"BENCH_{suite}.json"
    payload = [{"suite": suite, **record} for record in records]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path} ({len(payload)} records)")


class _BadArgument(Exception):
    """A command argument failed to parse (reported before dispatch)."""


def _int_argument(command: str, args: list[str], default: int) -> int:
    """Parse the command's optional integer argument; only *argument*
    errors map to the exit-2 usage failure, never a command's internals."""
    if len(args) <= 1:
        return default
    try:
        return int(args[1])
    except ValueError as exc:
        print(f"error: bad argument for {command!r}: {exc}", file=sys.stderr)
        raise _BadArgument from None


def _extract_option(args: list[str], flag: str) -> str | None:
    """Remove ``--flag value`` / ``--flag=value`` from *args*; return the
    value (or None). A flag with no value is an argument error."""
    for index, argument in enumerate(args):
        if argument == flag:
            if index + 1 >= len(args):
                print(f"error: {flag} needs a value", file=sys.stderr)
                raise _BadArgument
            del args[index]
            return args.pop(index)
        if argument.startswith(flag + "="):
            del args[index]
            return argument[len(flag) + 1:]
    return None


def _extract_flag(args: list[str], flag: str) -> bool:
    """Remove a valueless ``--flag`` from *args*; True if it was there."""
    if flag in args:
        args.remove(flag)
        return True
    return False


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        twig_algorithm = _extract_option(args, "--twig-algorithm")
        suite = _extract_option(args, "--suite")
        workers_option = _extract_option(args, "--workers")
        corpus = _extract_option(args, "--corpus")
        host = _extract_option(args, "--host")
        port_option = _extract_option(args, "--port")
        stdio = _extract_flag(args, "--stdio")
        emit_json = _extract_flag(args, "--json")
    except _BadArgument:
        return 2
    workers = 0
    if workers_option is not None:
        try:
            workers = int(workers_option)
            if workers < 0:
                raise ValueError("must be >= 0")
        except ValueError as exc:
            print(f"error: bad value for --workers: {exc}", file=sys.stderr)
            return 2
    port = 0
    if port_option is not None:
        try:
            port = int(port_option)
            if not 0 <= port <= 65535:
                raise ValueError("must be in 0..65535")
        except ValueError as exc:
            print(f"error: bad value for --port: {exc}", file=sys.stderr)
            return 2
    if twig_algorithm is not None:
        from repro.xml.interface import available_twig_algorithms

        if twig_algorithm not in available_twig_algorithms():
            print(f"error: unknown twig algorithm {twig_algorithm!r}; "
                  f"choose from {available_twig_algorithms()!r}",
                  file=sys.stderr)
            return 2
    command = args[0] if args else "figure1"
    if workers and not (command in ("selftest", "serve", "explain")
                        or (command == "bench"
                            and suite in ("parallel", "twig", "accel"))):
        # Never let --workers be parsed and then silently ignored: only
        # the parallel/twig/accel bench suites, selftest, serve and
        # explain use it.
        print("error: --workers applies to 'bench --suite "
              "parallel/twig/accel', 'selftest', 'serve' and 'explain' "
              "only", file=sys.stderr)
        return 2
    if emit_json and command != "bench":
        print("error: --json applies to 'bench' only", file=sys.stderr)
        return 2
    if command != "serve" and (corpus is not None or host is not None
                               or port_option is not None or stdio):
        print("error: --corpus/--host/--port/--stdio apply to 'serve' "
              "only", file=sys.stderr)
        return 2
    try:
        if command == "figure1":
            return cmd_figure1()
        if command == "bounds":
            return cmd_bounds()
        if command == "figure3":
            return cmd_figure3(_int_argument(command, args, 6),
                               twig_algorithm)
        if command == "bench":
            suites = ("engine", "twig", "updates", "parallel", "buffers",
                      "service", "planner", "corpus", "accel")
            if suite not in (None,) + suites:
                print(f"error: unknown bench suite {suite!r}; choose from "
                      f"{list(suites)!r}", file=sys.stderr)
                return 2
            records: list | None = [] if emit_json else None
            if suite == "updates":
                rc = cmd_bench_updates(_int_argument(command, args, 300),
                                       records)
            elif suite == "parallel":
                if workers == 1:  # explicit serial contradicts the suite
                    print("error: --suite parallel needs --workers >= 2 "
                          "(default 2)", file=sys.stderr)
                    return 2
                rc = cmd_bench_parallel(
                    _int_argument(command, args, 2000),
                    workers or 2, records)
            elif suite == "buffers":
                rc = cmd_bench_buffers(_int_argument(command, args, 3000),
                                       records)
            elif suite == "service":
                rc = cmd_bench_service(_int_argument(command, args, 12),
                                       records)
            elif suite == "planner":
                rc = cmd_bench_planner(_int_argument(command, args, 4096),
                                       records)
            elif suite == "corpus":
                rc = cmd_bench_corpus(_int_argument(command, args, 8000),
                                      records)
            elif suite == "accel":
                rc = cmd_bench_accel(_int_argument(command, args, 4),
                                     workers, records)
            elif suite == "twig":
                rc = cmd_bench_twig(_int_argument(command, args, 150),
                                    twig_algorithm, records, workers)
            else:
                rc = cmd_bench(_int_argument(command, args, 150),
                               twig_algorithm, records)
            if rc == 0 and records is not None:
                _write_bench_json(suite or "engine", records)
            return rc
        if command == "explain":
            return cmd_explain(args[1] if len(args) > 1 else "skewed",
                               workers)
        if command == "serve":
            return cmd_serve(corpus or "figure1", host or "127.0.0.1",
                             port, stdio, workers)
        if command == "selftest":
            return cmd_selftest(twig_algorithm, workers)
    except _BadArgument:
        return 2
    except (TwigError, EngineError) as exc:
        # e.g. --twig-algorithm pathstack forced onto a branching twig,
        # or a --workers pool on a platform without a usable transport.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream filter closed the pipe (e.g. ``repro bench | head``);
        # point stdout at devnull so shutdown flushes don't traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    print(f"error: unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
