"""Batch kernels over sorted code buffers: galloping seek, k-way
intersection.

Both kernels are representation-agnostic — they index any sorted int
sequence (``array``, ``memoryview``, ``list``) — and are the single
implementation behind :meth:`EncodedTrieIterator.seek`,
:meth:`TagPosting.seek_start`, the frozen-trie child lookups and the
innermost level of Leapfrog Triejoin.

:func:`gallop` is the exponential-probe + bisect seek: starting from the
cursor it doubles a probe distance until the target is bracketed, then
bisects the bracket — O(log d) in the *distance moved* d, not in the
buffer length, which is what makes leapfrogging over skewed inputs
cheap (a full-range bisect pays O(log n) per seek even to advance by
one position).

:func:`intersect_many` is the batch replacement for per-element
leapfrog advancement: it runs the whole multi-way intersection of one
level's key buffers in a single call, galloping each buffer from its
own cursor, and returns the emitted codes plus the probe count for the
stats contract. The acceptance benchmark
(``benchmarks/bench_buffers.py``) gates it at >= 2x over the
iterator-protocol :func:`~repro.relational.leapfrog.leapfrog_intersect`
on a dense triangle workload.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Sequence


def gallop(keys: Sequence[int], code: int, lo: int = 0,
           hi: int | None = None) -> int:
    """Index of the first key ``>= code`` in ``keys[lo:hi]``.

    Exponential probe from *lo* (the cursor), then bisect within the
    bracket. Returns ``hi`` (or ``len(keys)``) when every key in range
    is smaller. Never looks left of *lo* — seeks only move forward.
    """
    n = len(keys) if hi is None else hi
    if lo >= n or keys[lo] >= code:
        return lo
    step = 1
    while lo + step < n and keys[lo + step] < code:
        step <<= 1
    return bisect_left(keys, code, lo + (step >> 1) + 1, min(lo + step, n))


def _empty_like(buf: Sequence[int]) -> "array | list":
    """An empty growable buffer matching *buf*'s representation."""
    if isinstance(buf, array):
        return array(buf.typecode)
    if isinstance(buf, memoryview):
        return array(buf.format)
    return []


def intersect_many(buffers: "Sequence[Sequence[int]]"
                   ) -> "tuple[Sequence[int], int]":
    """The sorted intersection of k sorted duplicate-free code buffers.

    Returns ``(codes, probes)``: the common codes (in a buffer matching
    the smallest input's representation) and the number of galloping
    probes performed — the batch analogue of the per-seek counter, so
    callers keep the instrumentation contract.

    The classic leapfrog pivot loop, but over raw buffers: the current
    pivot is galloped for in the next buffer round-robin; a miss makes
    the landing key the new pivot, a full round of hits emits it. Each
    buffer keeps its own cursor, so the total work is bounded by the sum
    of galloping distances — worst-case optimal for the intersection.
    """
    bufs = sorted(buffers, key=len)
    if not bufs or not len(bufs[0]):
        return _empty_like(bufs[0] if bufs else ()), 0
    out = _empty_like(bufs[0])
    if len(bufs) == 1:
        src = bufs[0]
        out.extend(src)
        return out, len(src)
    k = len(bufs)
    lens = [len(buf) for buf in bufs]
    if k == 2:
        # The dominant case (pairwise posting/adjacency intersection):
        # drive from the smaller buffer and seek the larger one from a
        # moving cursor. The cursor keeps every seek forward-only (the
        # same contract as galloping) while the probe itself stays in
        # the C bisect — no per-step Python pivot bookkeeping.
        small, large = bufs
        n_large = lens[1]
        append = out.append
        probes = 0
        p = 0
        for code in small:
            probes += 1
            p = bisect_left(large, code, p, n_large)
            if p == n_large:
                break
            if large[p] == code:
                append(code)
        return out, probes
    pos = [0] * k
    pivot = bufs[0][0]
    agree = 1
    index = 1  # buffer 0's head is the initial pivot; probe the next
    probes = 0
    append = out.append
    while True:
        buf = bufs[index]
        probes += 1
        p = gallop(buf, pivot, pos[index], lens[index])
        pos[index] = p
        if p == lens[index]:
            break
        key = buf[p]
        if key == pivot:
            agree += 1
            if agree == k:
                append(pivot)
                p += 1
                pos[index] = p
                if p == lens[index]:
                    break
                pivot = buf[p]
                agree = 1
        else:
            pivot = key
            agree = 1
        index += 1
        if index == k:
            index = 0
    return out, probes
