"""The shared-memory arena: publish buffers once, attach zero-copy.

A :class:`SharedArena` lays one ``multiprocessing.shared_memory``
segment out as::

    [8-byte little-endian header length]
    [pickled header: (meta object, directory)]
    [16-byte-aligned typed buffers, one per directory entry]

The *directory* maps buffer names to ``(typecode, offset, count)``
triples (offsets relative to the aligned data region), so an attaching
process reads the header once and then casts ``memoryview`` windows —
no per-buffer pickling, no copies. The *meta* object is arbitrary
picklable state (decode tables, tag/path vocabularies) serialized
exactly once by the publisher; attachers unpickle it from the segment
rather than receiving it per-process.

Lifecycle: the publisher owns the segment and must call
:meth:`close` + :meth:`unlink` when the job finishes; attachers call
:meth:`close` only. Attaching skips the ``resource_tracker``
registration entirely (Python 3.12 and earlier auto-register
attachments, which would otherwise unlink the publisher's segment when
the worker exits and spam leak warnings). Segment names carry the
``repro-buf`` prefix so the leak check in the CI smoke can assert
``/dev/shm`` is clean after a run.
"""

from __future__ import annotations

import os
import pickle
import secrets
import struct
import threading
from array import array
from collections.abc import Mapping
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any

from repro.errors import TransportError

#: Segment-name prefix; the CI smoke greps /dev/shm for leftovers.
SEGMENT_PREFIX = "repro-buf"

_ALIGN = 16
_LEN = struct.Struct("<Q")


def _aligned(offset: int) -> int:
    """*offset* rounded up to the arena alignment."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


#: Guards the one-time install of the resource-tracker shim.
_TRACKER_LOCK = threading.Lock()
_TRACKER_SHIM_INSTALLED = False

#: Per-thread attach-nesting depth: the shim skips registration only
#: for the thread that is actually inside an attach, so a concurrent
#: publisher's *create* on another thread still registers normally.
_ATTACH_DEPTH = threading.local()


def _install_tracker_shim() -> None:
    """Install the skip-shim over ``resource_tracker.register`` once.

    The shim is permanent (never uninstalled) and consults the calling
    thread's attach depth, so installs race-free under concurrent
    ``asyncio.to_thread`` attaches — the previous implementation swapped
    the global function in and restored it on exit, which let one
    thread restore the original while another was mid-attach (or
    clobber the shim with a stale reference permanently).
    """
    global _TRACKER_SHIM_INSTALLED
    if _TRACKER_SHIM_INSTALLED:
        return
    with _TRACKER_LOCK:
        if _TRACKER_SHIM_INSTALLED:
            return
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - tracker absent
            _TRACKER_SHIM_INSTALLED = True
            return
        original = resource_tracker.register

        def _register(name: str, rtype: str) -> None:
            if rtype == "shared_memory" \
                    and getattr(_ATTACH_DEPTH, "depth", 0) > 0:
                return
            original(name, rtype)

        resource_tracker.register = _register
        _TRACKER_SHIM_INSTALLED = True


@contextmanager
def _untracked():
    """Suppress resource-tracker registration while attaching.

    Attachers must not own cleanup: Python 3.12 and earlier auto-register
    every ``SharedMemory(name=...)`` attachment, so a worker exiting
    would unlink the publisher's live segment and the shared tracker
    process would log spurious KeyErrors once several attachers
    deregister the same name. Skipping the registration (the documented
    workaround for bpo-39959) keeps the tracker's books balanced: only
    the publisher's create is ever registered.

    Thread-safe: the shim installs process-wide exactly once (under
    :data:`_TRACKER_LOCK`) and skips only on threads whose attach depth
    is non-zero, so concurrent attaches never race on the global
    ``register`` binding.
    """
    _install_tracker_shim()
    depth = getattr(_ATTACH_DEPTH, "depth", 0)
    _ATTACH_DEPTH.depth = depth + 1
    try:
        yield
    finally:
        _ATTACH_DEPTH.depth = depth


class SharedArena:
    """One published (or attached) shared-memory buffer pool."""

    __slots__ = ("shm", "name", "owner", "_meta", "_directory", "_views",
                 "_data_start")

    def __init__(self, shm: shared_memory.SharedMemory, meta: Any,
                 directory: dict, *, owner: bool, data_start: int = 0):
        self.shm = shm
        self.name = shm.name
        self.owner = owner
        self._meta = meta
        self._directory = directory
        self._views: dict[str, memoryview] = {}
        self._data_start = data_start

    # -- construction ------------------------------------------------------

    @classmethod
    def publish(cls, buffers: "Mapping[str, array]", meta: Any = None,
                ) -> "SharedArena":
        """Create a segment holding *buffers* and the pickled *meta*.

        Each buffer must be an ``array.array`` (or expose ``typecode``
        and the buffer protocol). Returns the owning arena; the caller
        must eventually :meth:`close` and :meth:`unlink` it.
        """
        directory: dict[str, tuple[str, int, int]] = {}
        offset = 0
        for key, buf in buffers.items():
            offset = _aligned(offset)
            directory[key] = (buf.typecode, offset, len(buf))
            offset += len(buf) * buf.itemsize
        header = pickle.dumps((meta, directory),
                              protocol=pickle.HIGHEST_PROTOCOL)
        data_start = _aligned(_LEN.size + len(header))
        total = max(1, data_start + offset)
        name = (f"{SEGMENT_PREFIX}-{os.getpid()}-"
                f"{secrets.token_hex(4)}")
        shm = shared_memory.SharedMemory(create=True, size=total,
                                         name=name)
        shm.buf[:_LEN.size] = _LEN.pack(len(header))
        shm.buf[_LEN.size:_LEN.size + len(header)] = header
        for key, buf in buffers.items():
            _tc, rel, count = directory[key]
            if count:
                lo = data_start + rel
                nbytes = count * buf.itemsize
                shm.buf[lo:lo + nbytes] = memoryview(buf).cast("B")
        return cls(shm, meta, directory, owner=True,
                   data_start=data_start)

    @classmethod
    def attach(cls, name: str) -> "SharedArena":
        """Attach to a published segment by name (zero-copy).

        Deregisters the attachment from the resource tracker — the
        publisher owns cleanup (see the module docstring). A vanished
        (or never-published) segment raises
        :class:`~repro.errors.TransportError` naming the segment, so
        worker loops surface a routable engine error instead of a raw
        ``FileNotFoundError``.
        """
        with _untracked():
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise TransportError(
                    f"shared-memory segment {name!r} has vanished or "
                    f"was never published (shm transport)") from exc
        header_len = _LEN.unpack_from(shm.buf, 0)[0]
        meta, directory = pickle.loads(
            bytes(shm.buf[_LEN.size:_LEN.size + header_len]))
        return cls(shm, meta, directory, owner=False,
                   data_start=_aligned(_LEN.size + header_len))

    # -- access ------------------------------------------------------------

    @property
    def meta(self) -> Any:
        """The meta object pickled into the segment (once, by the owner)."""
        return self._meta

    def keys(self) -> list[str]:
        """The published buffer names."""
        return list(self._directory)

    def buffer(self, key: str) -> memoryview:
        """A zero-copy typed ``memoryview`` of one published buffer."""
        view = self._views.get(key)
        if view is None:
            typecode, rel, count = self._directory[key]
            lo = self._data_start + rel
            itemsize = array(typecode).itemsize
            view = self.shm.buf[lo:lo + count * itemsize].cast(typecode)
            self._views[key] = view
        return view

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release every exported view and the process-local mapping."""
        for view in self._views.values():
            view.release()
        self._views.clear()
        try:
            self.shm.close()
        except BufferError:
            # Straggler views (e.g. posting slices or frozen-trie nodes
            # still referenced by the drained job) keep the mapping
            # exported; the OS reclaims it at process exit. Disarm the
            # destructor so interpreter shutdown stays quiet instead of
            # printing "cannot close exported pointers exist".
            self.shm.close = lambda: None  # type: ignore[method-assign]

    def unlink(self) -> None:
        """Destroy the segment (owner only; attachments just close)."""
        if self.owner:
            self.shm.unlink()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        if self.owner:
            self.unlink()
