"""Shared scenarios for the buffer-kernel benchmark.

Both front-ends — ``python -m repro bench --suite buffers`` and
``benchmarks/bench_buffers.py`` — time the same code through this
module, so the CLI table, the pytest gate and CI can never drift apart
on what they measure.

Two scenarios:

* :func:`intersection_scenario` — the kernel gate. Triangle counting
  over the dense random digraph reduces to one sorted-set intersection
  per edge (``adj(a) ∩ adj(b)``); the batch path packs each adjacency
  list into a typed buffer once and calls
  :func:`~repro.buffers.kernels.intersect_many`, the foil leapfrogs
  :class:`~repro.relational.iterators.SortedListIterator` pairs through
  the classic per-element :func:`~repro.relational.leapfrog.
  leapfrog_intersect`. Same triangles out of both, and the batch side
  must win by :data:`SPEEDUP_TARGET` — the kernels are single-threaded,
  so the gate holds on any core count.
* :func:`spawn_twig_scenario` — the transport gate. Twig matching over
  an XMark document through a spawn-mode worker pool on the ``shm``
  transport: the columnar buffers publish once, workers attach
  zero-copy, and *nothing* instance-sized is pickled per worker —
  :class:`~repro.xml.columnar.ColumnarDocument` refuses to pickle
  outright, so a run that completes proves the attach-only property
  structurally. Parity with the serial matcher is asserted; wall time
  is reported ungated (a pool cannot beat serial on one core).
"""

from __future__ import annotations

import glob
import pickle
import time
from dataclasses import dataclass

from repro.buffers.kernels import intersect_many
from repro.buffers.layout import pack

#: The kernel gate: batch galloping intersection must beat the
#: list-based per-element leapfrog by this factor on the dense triangle.
SPEEDUP_TARGET = 2.0


@dataclass(frozen=True)
class KernelTiming:
    """One workload's foil vs batch-kernel wall time (ms)."""

    label: str
    list_ms: float
    buffer_ms: float
    #: Whether the speedup target applies (False = reported only, e.g.
    #: pool-based workloads on machines without spare cores).
    gated: bool = True

    @property
    def speedup(self) -> float:
        """Foil wall time over batch-kernel wall time."""
        return self.list_ms / max(self.buffer_ms, 1e-9)

    @property
    def meets_target(self) -> bool:
        """Gated timings must reach :data:`SPEEDUP_TARGET`."""
        return not self.gated or self.speedup >= SPEEDUP_TARGET


@dataclass(frozen=True)
class ScenarioResult:
    """All timings of one scenario plus its correctness checks."""

    title: str
    timings: tuple[KernelTiming, ...]
    consistent: bool
    #: True when the scenario structurally verified that no worker ever
    #: receives a pickled instance (shm scenarios; trivially true else).
    attach_only: bool = True
    #: Shared-memory segments still present after the run (must be none).
    leaked: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Parity, attach-only and no leaks always; then the gates."""
        return (self.consistent and self.attach_only and not self.leaked
                and all(timing.meets_target for timing in self.timings))


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best wall ms, last result) over *repeats* runs of *fn*."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best, result


def leaked_segments() -> tuple[str, ...]:
    """Arena segments still visible in ``/dev/shm`` (leak check)."""
    from repro.buffers.shm import SEGMENT_PREFIX

    return tuple(sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")))


def intersection_scenario(n: int = 3000, *, edges_per_node: int = 16,
                          repeats: int = 2) -> ScenarioResult:
    """Race batch ``intersect_many`` against list-based leapfrog.

    Counts the triangles of the dense random digraph both ways: for
    every edge ``(a, b)``, the successors common to ``a`` and ``b``
    close a triangle. The foil walks each pair with
    :func:`~repro.relational.leapfrog.leapfrog_intersect` over plain
    sorted lists; the batch side intersects the pre-packed typed
    buffers.
    """
    from repro.parallel.bench import dense_triangle
    from repro.relational.iterators import SortedListIterator
    from repro.relational.leapfrog import leapfrog_intersect

    relations = dense_triangle(n, edges_per_node=edges_per_node)
    edges = sorted(relations[0].rows)
    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    for successors in adjacency.values():
        successors.sort()
    packed = {a: pack(successors, hi=n - 1)
              for a, successors in adjacency.items()}
    empty_list: list[int] = []
    empty_packed = pack(empty_list, hi=n - 1)

    def count_with_lists() -> int:
        total = 0
        for a, b in edges:
            iterators = [
                SortedListIterator(adjacency.get(a, empty_list),
                                   presorted=True),
                SortedListIterator(adjacency.get(b, empty_list),
                                   presorted=True),
            ]
            total += sum(1 for _ in leapfrog_intersect(iterators))
        return total

    def count_with_buffers() -> int:
        total = 0
        for a, b in edges:
            common, _probes = intersect_many(
                [packed.get(a, empty_packed), packed.get(b, empty_packed)])
            total += len(common)
        return total

    list_ms, list_count = _best_of(count_with_lists, repeats)
    buffer_ms, buffer_count = _best_of(count_with_buffers, repeats)
    return ScenarioResult(
        title=f"dense triangle intersections (n={n}, {len(edges)} edges, "
              f"{list_count} triangles)",
        timings=(KernelTiming("adj(a) ∩ adj(b) per edge",
                              list_ms, buffer_ms),),
        consistent=list_count == buffer_count)


def spawn_twig_scenario(factor: float = 4.0, *, workers: int = 2,
                        repeats: int = 2) -> ScenarioResult:
    """Race serial twig matching against a spawn-mode shm worker pool.

    The parent publishes the XMark document's columnar buffers into one
    shared-memory arena; ``workers`` spawn-started processes attach
    zero-copy and match their root-posting slices. Attach-only shipping
    is verified structurally (the columnar view refuses to pickle) and
    the arena must be gone from ``/dev/shm`` afterwards.
    """
    from repro.parallel.executor import ParallelExecutor
    from repro.xml.columnar import columnar
    from repro.xml.interface import get_twig_algorithm
    from repro.xml.twig_parser import parse_twig
    from repro.xml.xmark import xmark_document

    document = xmark_document(factor, seed=7)
    twig = parse_twig("p=person(/nm=name, //i=interest)")
    matcher = get_twig_algorithm("twigstack")
    executor = ParallelExecutor(workers, transport="shm")

    serial_ms, serial = _best_of(
        lambda: matcher.run(document, twig), repeats)
    shm_ms, parallel = _best_of(
        lambda: executor.run_twig(document, twig, "twigstack"), repeats)

    try:
        pickle.dumps(columnar(document))
        attach_only = False  # a pickled view would ship per worker
    except TypeError:
        attach_only = True
    return ScenarioResult(
        title=f"XMark factor {factor:g} twig over spawn+shm "
              f"({document.size()} nodes, {workers} workers)",
        timings=(KernelTiming("twigstack (spawn, attach-only)",
                              serial_ms, shm_ms, gated=False),),
        consistent=parallel == serial,
        attach_only=attach_only,
        leaked=leaked_segments())
