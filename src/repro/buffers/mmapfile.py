"""File-backed mmap arenas: build once on disk, attach zero-copy.

A :class:`FileArena` is the on-disk sibling of
:class:`~repro.buffers.shm.SharedArena` — byte-for-byte the same
layout::

    [8-byte little-endian header length]
    [pickled header: (meta object, directory)]
    [16-byte-aligned typed buffers, one per directory entry]

but the bytes live in an ordinary file instead of a ``/dev/shm``
segment. Attachers open a **read-only** ``mmap`` and cast typed
``memoryview`` windows over it, so a corpus larger than RAM serves
queries through the page cache: only the pages a query touches are
ever resident, and the mapping is exempt from ``RLIMIT_DATA`` (which
is how the CI smoke proves the build+query peak heap stays bounded).

The :class:`ArenaWriter` is the build-once half: a bump-allocating
writer that streams columns to per-column spill files as values are
appended (bounded tail buffers, never the whole column in memory),
supports backpatching already-appended slots (``set_at`` — the
streaming XML builder patches ``end`` labels when elements close), and
assembles the final header-first arena file on :meth:`finish`.

Lifecycle mirrors the shm arena: the publisher (the process that
called :meth:`ArenaWriter.finish` or :meth:`FileArena.publish`) owns
the file and must :meth:`close` + :meth:`unlink` it; attachers only
:meth:`close`. Every temporary path carries the ``repro-arena-``
prefix so leak checks can assert the temp directory is clean after a
run (:func:`leaked_arena_files`).
"""

from __future__ import annotations

import glob
import mmap
import os
import pickle
import secrets
import shutil
import tempfile
from array import array
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from typing import Any

from repro.buffers.layout import typecode_for
from repro.buffers.shm import _LEN, _aligned
from repro.errors import TransportError

#: Temp-name prefix for arena files and spill directories; the CI leak
#: check globs the temp directory for leftovers after every run.
ARENA_PREFIX = "repro-arena-"

#: Items buffered in a column's in-memory tail before a spill write.
DEFAULT_CHUNK_ITEMS = 16384


def arena_temp_path() -> str:
    """A fresh leak-checkable arena file path in the temp directory."""
    return os.path.join(tempfile.gettempdir(),
                        f"{ARENA_PREFIX}{os.getpid()}-"
                        f"{secrets.token_hex(4)}.arena")


def leaked_arena_files() -> list[str]:
    """Leftover ``repro-arena-`` paths in the temp directory."""
    return sorted(glob.glob(os.path.join(tempfile.gettempdir(),
                                         ARENA_PREFIX + "*")))


def _as_array(buf: Any) -> array:
    """*buf* as an ``array`` (publication needs typecode + bytes)."""
    if isinstance(buf, array):
        return buf
    if isinstance(buf, memoryview):
        out = array(buf.format)
        out.extend(buf)
        return out
    values = list(buf)
    hi = max(values, default=0)
    lo = min(min(values, default=0), 0)
    return array(typecode_for(hi, lo), values)


class FileArena:
    """One published (or attached) file-backed buffer pool."""

    __slots__ = ("path", "owner", "_file", "_mm", "_base", "_meta",
                 "_directory", "_views", "_data_start", "_closed")

    def __init__(self, path: str, file, mm: mmap.mmap, meta: Any,
                 directory: dict, *, owner: bool, data_start: int):
        self.path = path
        self.owner = owner
        self._file = file
        self._mm = mm
        self._base = memoryview(mm)
        self._meta = meta
        self._directory = directory
        self._views: dict[str, memoryview] = {}
        self._data_start = data_start
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def publish(cls, buffers: "Mapping[str, Sequence[int]]",
                meta: Any = None, path: str | None = None) -> "FileArena":
        """Write *buffers* + pickled *meta* to *path* and attach owning.

        The in-memory convenience constructor (mirrors
        :meth:`SharedArena.publish`); corpus-scale builds stream through
        :class:`ArenaWriter` instead. The caller must eventually
        :meth:`close` and :meth:`unlink` the returned arena.
        """
        writer = ArenaWriter(path=path)
        try:
            for key, buf in buffers.items():
                writer.add_buffer(key, buf)
            return writer.finish(meta)
        except BaseException:
            writer.abort()
            raise

    @classmethod
    def attach(cls, path: str, *, owner: bool = False) -> "FileArena":
        """Open *path* read-only and map it (zero-copy attachment).

        A vanished file, or one that is not an arena, raises
        :class:`~repro.errors.TransportError` naming the path and the
        owning transport (the error-routing contract of the shm layer).
        """
        try:
            file = open(path, "rb")
        except FileNotFoundError as exc:
            raise TransportError(
                f"file arena {path!r} has vanished or was never "
                f"published (mmap transport)") from exc
        try:
            mm = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
            header_len = _LEN.unpack_from(mm, 0)[0]
            meta, directory = pickle.loads(
                mm[_LEN.size:_LEN.size + header_len])
        except TransportError:
            file.close()
            raise
        except Exception as exc:
            file.close()
            raise TransportError(
                f"file {path!r} is not a readable arena "
                f"(mmap transport): {exc}") from exc
        return cls(path, file, mm, meta, directory, owner=owner,
                   data_start=_aligned(_LEN.size + header_len))

    # -- access ------------------------------------------------------------

    @property
    def meta(self) -> Any:
        """The meta object pickled into the arena (once, by the owner)."""
        return self._meta

    def keys(self) -> list[str]:
        """The published buffer names."""
        return list(self._directory)

    def buffer(self, key: str) -> memoryview:
        """A zero-copy typed ``memoryview`` of one published buffer."""
        if self._closed:
            raise TransportError(
                f"file arena {self.path!r} is closed (mmap transport)")
        view = self._views.get(key)
        if view is None:
            typecode, rel, count = self._directory[key]
            lo = self._data_start + rel
            itemsize = array(typecode).itemsize
            view = self._base[lo:lo + count * itemsize].cast(typecode)
            self._views[key] = view
        return view

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release every exported view and the process-local mapping."""
        if self._closed:
            return
        self._closed = True
        for view in self._views.values():
            view.release()
        self._views.clear()
        self._base.release()
        try:
            self._mm.close()
        except BufferError:
            # Straggler views exported from the mapping keep it alive;
            # the OS reclaims it at process exit (same discipline as
            # SharedArena.close).
            pass
        self._file.close()

    def unlink(self) -> None:
        """Delete the arena file (owner only; attachments just close)."""
        if self.owner:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "FileArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:
        return (f"FileArena({self.path!r}, {len(self._directory)} "
                f"buffers, owner={self.owner})")


class ColumnWriter:
    """One typed column streamed to a spill file as values arrive.

    Appends buffer into a bounded in-memory tail that flushes to the
    (unbuffered) spill file every ``chunk_items`` values, so building a
    column of N values holds O(chunk) values in memory. ``set_at``
    backpatches an already-appended slot — in the unflushed tail by
    mutation, in the flushed region by ``os.pwrite`` — which is how the
    streaming XML builder fills ``end`` labels on element close.
    """

    __slots__ = ("name", "typecode", "itemsize", "path", "_file",
                 "_tail", "_flushed", "_chunk")

    def __init__(self, name: str, typecode: str, spill_dir: str,
                 chunk_items: int = DEFAULT_CHUNK_ITEMS):
        self.name = name
        self.typecode = typecode
        self.itemsize = array(typecode).itemsize
        self.path = os.path.join(spill_dir, f"{name}.col")
        # Unbuffered: set_at's pwrite must never interleave with
        # buffered tail flushes.
        self._file = open(self.path, "w+b", buffering=0)
        self._tail = array(typecode)
        self._flushed = 0
        self._chunk = max(1, chunk_items)

    def __len__(self) -> int:
        return self._flushed + len(self._tail)

    def append(self, value: int) -> int:
        """Append *value*; returns its index in the column."""
        index = self._flushed + len(self._tail)
        self._tail.append(value)
        if len(self._tail) >= self._chunk:
            self.flush()
        return index

    def extend(self, values) -> None:
        """Append every value (flushing full tails as they fill)."""
        for value in values:
            self._tail.append(value)
            if len(self._tail) >= self._chunk:
                self.flush()

    def set_at(self, index: int, value: int) -> None:
        """Backpatch the value at *index* (appended earlier)."""
        if index >= self._flushed:
            self._tail[index - self._flushed] = value
        else:
            os.pwrite(self._file.fileno(),
                      array(self.typecode, [value]).tobytes(),
                      index * self.itemsize)

    def flush(self) -> None:
        """Spill the in-memory tail to the column file."""
        if self._tail:
            self._file.write(self._tail.tobytes())
            self._flushed += len(self._tail)
            del self._tail[:]

    @contextmanager
    def snapshot(self):
        """A read-only typed view over everything appended so far.

        Flushes, then maps the spill file — random access without
        loading the column on the heap (the finish-time posting gather
        reads ``starts``/``ends`` this way).
        """
        self.flush()
        if not self._flushed:
            yield memoryview(array(self.typecode))
            return
        mm = mmap.mmap(self._file.fileno(),
                       self._flushed * self.itemsize,
                       access=mmap.ACCESS_READ)
        view = memoryview(mm).cast(self.typecode)
        try:
            yield view
        finally:
            view.release()
            mm.close()

    def write_into(self, out) -> int:
        """Stream the whole column into *out*; returns bytes written."""
        self.flush()
        self._file.seek(0)
        shutil.copyfileobj(self._file, out, 1024 * 1024)
        return self._flushed * self.itemsize

    def discard(self) -> None:
        """Close and delete the spill file."""
        self._file.close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class _ConcatColumns:
    """A directory entry assembled from several spilled columns.

    The streaming builder spills one nid bucket per tag (or path) and
    registers their concatenation as the single CSR data buffer; parts
    are streamed back-to-back at finish, never joined in memory.
    """

    __slots__ = ("typecode", "parts")

    def __init__(self, typecode: str, parts: "list[ColumnWriter]"):
        self.typecode = typecode
        self.parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def write_into(self, out) -> int:
        total = 0
        for part in self.parts:
            total += part.write_into(out)
        return total


class ArenaWriter:
    """Bump-allocating, build-once writer for a :class:`FileArena`.

    Register streamed columns with :meth:`column` (spilled to a
    ``repro-arena-`` temp directory as they grow), small in-memory
    buffers with :meth:`add_buffer`, and CSR concatenations with
    :meth:`concat`; :meth:`finish` lays the header + every buffer into
    the final arena file in registration order, removes the spill
    directory, and returns the **owning** attached arena. On failure
    call :meth:`abort` to reclaim the spill space.
    """

    def __init__(self, path: str | None = None, *,
                 chunk_items: int = DEFAULT_CHUNK_ITEMS):
        self.path = path or arena_temp_path()
        self.chunk_items = chunk_items
        self._spill_dir = tempfile.mkdtemp(prefix=ARENA_PREFIX + "spill-")
        self._entries: "dict[str, Any]" = {}
        self._columns: "list[ColumnWriter]" = []
        self._finished = False

    def column(self, name: str, typecode: str, *,
               chunk_items: int | None = None,
               register: bool = True) -> ColumnWriter:
        """A new streamed column; registered as a buffer unless
        ``register=False`` (spill-only, e.g. posting buckets that only
        appear through a later :meth:`concat`)."""
        writer = ColumnWriter(name, typecode, self._spill_dir,
                              chunk_items or self.chunk_items)
        self._columns.append(writer)
        if register:
            self._register(name, writer)
        return writer

    def add_buffer(self, name: str, buf) -> None:
        """Register a small in-memory buffer (array/list/memoryview)."""
        self._register(name, _as_array(buf))

    def concat(self, name: str, typecode: str,
               parts: "list[ColumnWriter]") -> None:
        """Register the back-to-back concatenation of spilled columns."""
        self._register(name, _ConcatColumns(typecode, parts))

    def _register(self, name: str, entry) -> None:
        if name in self._entries:
            raise ValueError(f"duplicate arena buffer {name!r}")
        self._entries[name] = entry

    def finish(self, meta: Any = None) -> FileArena:
        """Assemble the arena file; returns the owning attached arena."""
        if self._finished:
            raise ValueError("ArenaWriter.finish called twice")
        directory: "dict[str, tuple[str, int, int]]" = {}
        offset = 0
        for name, entry in self._entries.items():
            typecode = entry.typecode
            count = len(entry)
            offset = _aligned(offset)
            directory[name] = (typecode, offset, count)
            offset += count * array(typecode).itemsize
        header = pickle.dumps((meta, directory),
                              protocol=pickle.HIGHEST_PROTOCOL)
        data_start = _aligned(_LEN.size + len(header))
        with open(self.path, "wb") as out:
            out.write(_LEN.pack(len(header)))
            out.write(header)
            position = _LEN.size + len(header)
            for name, entry in self._entries.items():
                _tc, rel, _count = directory[name]
                target = data_start + rel
                if target > position:
                    out.write(b"\0" * (target - position))
                    position = target
                if isinstance(entry, array):
                    data = memoryview(entry).cast("B")
                    out.write(data)
                    position += len(data)
                else:
                    position += entry.write_into(out)
        self._cleanup()
        self._finished = True
        return FileArena.attach(self.path, owner=True)

    def abort(self) -> None:
        """Discard the spill files and any partially written arena."""
        if self._finished:
            return
        self._cleanup()
        self._finished = True
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def _cleanup(self) -> None:
        for column in self._columns:
            column.discard()
        self._columns.clear()
        shutil.rmtree(self._spill_dir, ignore_errors=True)
