"""Width-adaptive typed buffers: packing, widening, splicing.

A *code buffer* is a sorted (or positionally indexed) sequence of ints
stored contiguously: an ``array.array`` whose typecode is the narrowest
unsigned (``B``/``H``/``I``/``Q``) or signed (``b``/``h``/``i``/``q``)
width that fits the values. All helpers here are **total over three
representations** — ``array``, ``memoryview`` (read-only zero-copy
views, e.g. shared-memory attachments) and plain ``list`` — because the
parity suite builds list-backed twins through the same call sites (see
:func:`list_backend`).

Mutating helpers (:func:`splice`, :func:`insert_code`,
:func:`shift_tail`, ...) follow one contract: they mutate in place when
the typecode still fits and **return the buffer to use afterwards** —
a widened copy when a value overflowed the current width. Callers must
always rebind (``buf = splice(buf, ...)``); growth inside one width
rides CPython's over-allocating ``array`` resize, so repeated splices
are amortized O(n) like list splices, and a widening copy happens at
most ``len(_UNSIGNED) - 1`` times over a buffer's life.
"""

from __future__ import annotations

import contextlib
from array import array
from bisect import bisect_left
from collections.abc import Iterator, Sequence

#: Width ladders, narrowest first. Bounds derive from the platform's
#: actual itemsizes (C guarantees minimums, not exact widths).
_UNSIGNED = ("B", "H", "I", "Q")
_SIGNED = ("b", "h", "i", "q")
_MAX = {tc: 2 ** (8 * array(tc).itemsize) - 1 for tc in _UNSIGNED}
_MAX.update({tc: 2 ** (8 * array(tc).itemsize - 1) - 1 for tc in _SIGNED})
_MIN = {tc: 0 for tc in _UNSIGNED}
_MIN.update({tc: -(2 ** (8 * array(tc).itemsize - 1)) for tc in _SIGNED})

#: When True (see :func:`list_backend`), :func:`pack` and :func:`make`
#: build plain lists so the whole engine runs list-backed for parity
#: testing without a second code path anywhere else.
_FORCE_LISTS = False


@contextlib.contextmanager
def list_backend() -> Iterator[None]:
    """Build list-backed structures through the buffer call sites.

    Within the context every :func:`pack`/:func:`make` call returns a
    plain list; all other helpers already accept lists. The parity suite
    builds one instance inside the context and one outside, then asserts
    byte-identical results.
    """
    global _FORCE_LISTS
    previous = _FORCE_LISTS
    _FORCE_LISTS = True
    try:
        yield
    finally:
        _FORCE_LISTS = previous


def is_buffer(buf: object) -> bool:
    """Is *buf* a typed buffer (array/memoryview) rather than a list?"""
    return isinstance(buf, (array, memoryview))


def typecode_for(hi: int, lo: int = 0) -> str:
    """The narrowest typecode whose range contains ``[lo, hi]``."""
    ladder = _UNSIGNED if lo >= 0 else _SIGNED
    for tc in ladder:
        if _MIN[tc] <= lo and hi <= _MAX[tc]:
            return tc
    raise OverflowError(f"no typecode fits [{lo}, {hi}]")


def make(typecode: str = "H") -> "array | list":
    """A fresh empty buffer of *typecode* (a list under the list backend)."""
    if _FORCE_LISTS:
        return []
    return array(typecode)


def pack(values: Sequence[int], *, hi: int | None = None,
         lo: int | None = None) -> "array | list":
    """Pack *values* into the narrowest typed buffer that fits them.

    ``hi``/``lo`` are optional known bounds; without them the values are
    scanned (C-speed ``min``/``max``). Under :func:`list_backend` this
    returns ``list(values)`` unchanged.
    """
    if _FORCE_LISTS:
        return list(values)
    if not values:
        return array(typecode_for(hi or 0, lo or 0))
    if hi is None:
        hi = max(values)
    if lo is None:
        lo = min(values)
        if lo > 0:
            lo = 0
    return array(typecode_for(hi, lo), values)


def as_list(buf: "Sequence[int]") -> list[int]:
    """The buffer's values as a plain list (tests, reprs, comparisons)."""
    return list(buf)


def _widened(buf: array, lo: int, hi: int) -> array:
    """A copy of *buf* in a typecode that also fits ``[lo, hi]``."""
    current = buf.typecode
    lo = min(lo, _MIN[current], min(buf) if len(buf) else 0)
    hi = max(hi, _MAX[current])
    return array(typecode_for(hi, lo), buf)


def _fit(buf: "array | list", values: Sequence[int]) -> "array | list":
    """*buf*, widened if any of *values* overflows its typecode."""
    if not isinstance(buf, array) or not values:
        return buf
    lo, hi = min(values), max(values)
    if _MIN[buf.typecode] <= lo and hi <= _MAX[buf.typecode]:
        return buf
    return _widened(buf, lo, hi)


def splice(buf: "array | list", lo: int, hi: int,
           values: Sequence[int]) -> "array | list":
    """Replace ``buf[lo:hi]`` with *values*; returns the live buffer.

    The workhorse of the update layer's delta maintenance: posting
    splices, column splices and block deletes all come through here.
    In-place when the typecode fits; otherwise the returned buffer is a
    widened copy and the caller must rebind.
    """
    if isinstance(buf, array):
        buf = _fit(buf, values)
        buf[lo:hi] = array(buf.typecode, values)
        return buf
    buf[lo:hi] = values
    return buf


def delete(buf: "array | list", lo: int, hi: int) -> "array | list":
    """Delete ``buf[lo:hi]`` in place; returns the buffer (for rebinds)."""
    del buf[lo:hi]
    return buf


def insert_code(buf: "array | list", code: int) -> "array | list":
    """Insert *code* at its sorted position; returns the live buffer."""
    buf = _fit(buf, (code,))
    buf.insert(bisect_left(buf, code), code)
    return buf


def remove_code(buf: "array | list", code: int) -> "array | list":
    """Remove one occurrence of *code* (which must be present)."""
    del buf[bisect_left(buf, code)]
    return buf


def shift_tail(buf: "array | list", start: int,
               delta: int) -> "array | list":
    """Add *delta* to every entry from index *start* on; returns the
    live buffer (widened when the shifted labels outgrow the width)."""
    if start >= len(buf):
        return buf
    shifted = [value + delta for value in buf[start:]]
    return splice(buf, start, len(buf), shifted)


def shift_from(buf: "array | list", start: int, threshold: int,
               delta: int) -> "array | list":
    """From index *start* on, add *delta* to entries ``>= threshold``.

    The parent-pointer fix-up: a block insert/delete at node id ``q``
    shifts only references to nodes at or past ``q``.
    """
    if start >= len(buf):
        return buf
    shifted = [value + delta if value >= threshold else value
               for value in buf[start:]]
    return splice(buf, start, len(buf), shifted)


def set_at(buf: "array | list", index: int, value: int) -> "array | list":
    """Assign ``buf[index] = value``; returns the live buffer."""
    buf = _fit(buf, (value,))
    buf[index] = value
    return buf
