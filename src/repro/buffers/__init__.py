"""Bytes-native buffer layout: typed code buffers and batch kernels.

The engine's hot structures — :class:`~repro.engine.encoded.EncodedTrie`
key lists, the parallel columns and per-tag postings of
:class:`~repro.xml.columnar.ColumnarDocument` — store sorted dense int
codes. This package repacks them as contiguous typed buffers
(``array.array`` with width-adaptive typecodes, ``memoryview`` for
zero-copy slices) and provides the kernels every consumer shares:

* :mod:`repro.buffers.layout` — typecode selection and widening, splice
  and shift helpers with amortized growth (the update layer's delta
  splices run on these), and the ``list_backend`` switch the parity
  suite uses to build genuinely list-backed twins through the same
  code paths;
* :mod:`repro.buffers.kernels` — galloping (exponential-probe + bisect)
  ``seek`` and the k-way batch intersection that replaces per-element
  leapfrog advancement at the innermost join level;
* :mod:`repro.buffers.frozen` — a CSR (keys + child-offset) trie layout
  whose node adapters satisfy the ``EncodedTrieNode`` surface, built for
  publication into shared memory;
* :mod:`repro.buffers.shm` — the :class:`SharedArena`: one
  ``multiprocessing.shared_memory`` segment holding a pickled meta blob
  plus aligned typed buffers, attached zero-copy by workers.

See ``docs/buffers.md`` for the layout and lifecycle story.
"""

from repro.buffers.kernels import gallop, intersect_many
from repro.buffers.layout import (
    as_list,
    is_buffer,
    list_backend,
    make,
    pack,
    typecode_for,
)
from repro.buffers.shm import SharedArena

__all__ = [
    "SharedArena",
    "as_list",
    "gallop",
    "intersect_many",
    "is_buffer",
    "list_backend",
    "make",
    "pack",
    "typecode_for",
]
