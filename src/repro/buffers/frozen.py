"""Frozen CSR tries: an EncodedTrie flattened into per-level buffers.

A trie of depth d flattens into ``d`` sorted key buffers plus ``d - 1``
child-offset buffers (classic CSR): ``levels[l]`` concatenates every
level-``l`` node's keys in global order, and ``offsets[l][g]`` /
``offsets[l][g + 1]`` bound the children (in ``levels[l]``) of the key
at *global* index ``g`` of level ``l - 1``. A node is then just
``(level, lo, hi)`` — three ints — and a child lookup is one
:func:`~repro.buffers.kernels.gallop` in the parent's span plus two
offset reads.

This is the layout the shared-memory transport publishes: flat buffers
copy into a segment verbatim, and workers rebuild the trie as
:class:`FrozenTrie` over zero-copy ``memoryview`` casts. The node
adapters (:class:`FrozenTrieNode`, whose ``children`` satisfies the
mapping surface the kernels probe) make a frozen trie a drop-in
``root`` for :class:`~repro.engine.encoded.EncodedTrie` shells: every
registered join kernel, the LFTJ iterator and the executor's slicing
run on them unchanged. Frozen tries are read-only — the update layer
splices the mutable owner and republishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.buffers.kernels import gallop
from repro.buffers.layout import pack

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedTrie


@dataclass
class FrozenTrieLayout:
    """The flat buffers of one frozen trie, ready for publication.

    ``levels[l]`` holds the concatenated keys of depth-``l`` nodes;
    ``offsets[l]`` (for ``l >= 1``; index 0 is ``None``) maps global key
    index at level ``l - 1`` to its child span in ``levels[l]`` and has
    ``len(levels[l - 1]) + 1`` entries.
    """

    name: str
    order: tuple[str, ...]
    size: int
    levels: "list[Sequence[int]]"
    offsets: "list[Sequence[int] | None]"


def freeze_trie(trie: "EncodedTrie") -> FrozenTrieLayout:
    """Flatten *trie* into the CSR buffers of a :class:`FrozenTrieLayout`.

    One breadth-first pass per level: the frontier at level ``l`` lists
    the nodes whose keys are level-``l`` codes, in the global key order
    of level ``l - 1`` — exactly the CSR invariant.
    """
    levels: list[Sequence[int]] = []
    offsets: "list[Sequence[int] | None]" = []
    frontier = [trie.root]
    for level in range(trie.depth):
        if level > 0:
            running = 0
            offs = [0]
            for node in frontier:
                running += len(node.keys)
                offs.append(running)
            offsets.append(pack(offs))
        else:
            offsets.append(None)
        keys: list[int] = []
        next_frontier = []
        for node in frontier:
            keys.extend(node.keys)
            children = node.children
            for code in node.keys:
                next_frontier.append(children[code])
        levels.append(pack(keys))
        frontier = next_frontier
    return FrozenTrieLayout(trie.name, trie.order, trie.size,
                            levels, offsets)


class FrozenTrie:
    """A read-only trie over CSR buffers (arrays or memoryviews)."""

    __slots__ = ("name", "order", "size", "levels", "offsets")

    def __init__(self, name: str, order: Sequence[str], size: int,
                 levels: "Sequence[Sequence[int]]",
                 offsets: "Sequence[Sequence[int] | None]"):
        self.name = name
        self.order = tuple(order)
        self.size = size
        self.levels = list(levels)
        self.offsets = list(offsets)

    @classmethod
    def from_layout(cls, layout: FrozenTrieLayout) -> "FrozenTrie":
        """Wrap a freshly frozen layout (local, non-shared use)."""
        return cls(layout.name, layout.order, layout.size,
                   layout.levels, layout.offsets)

    @property
    def depth(self) -> int:
        """The trie's level count (= the arity of its rows)."""
        return len(self.order)

    def root(self) -> "FrozenTrieNode":
        """The root adapter node (its keys are the level-0 buffer)."""
        top = self.levels[0] if self.levels else ()
        return FrozenTrieNode(self, 0, 0, len(top))


class FrozenTrieNode:
    """One CSR span presenting the ``EncodedTrieNode`` surface.

    ``keys`` is a zero-copy slice of the level buffer; ``children`` is a
    :class:`_FrozenChildren` lookup over the same span. ``(level, lo,
    hi)`` identify the span globally, which is what lets a child lookup
    read the offset buffer directly.
    """

    __slots__ = ("keys", "children", "level", "lo", "hi")

    def __init__(self, trie: FrozenTrie, level: int, lo: int, hi: int):
        buf = trie.levels[level] if level < len(trie.levels) else ()
        if isinstance(buf, memoryview):
            self.keys: Sequence[int] = buf[lo:hi]
        else:
            # arrays copy on slice; memoryview-wrap for zero-copy spans
            self.keys = memoryview(buf)[lo:hi] if lo or hi != len(buf) \
                else buf
        self.children = _FrozenChildren(trie, level, lo, hi)
        self.level = level
        self.lo = lo
        self.hi = hi

    def seek_index(self, code: int) -> int:
        """Index (within the span) of the first key >= *code*."""
        return gallop(self.keys, code)

    def __len__(self) -> int:
        return self.hi - self.lo


class _FrozenChildren:
    """The child-lookup mapping of one frozen span.

    Satisfies exactly the operations the kernels use on
    ``EncodedTrieNode.children``: ``get``, ``[]`` and ``in``, keyed by
    the span's own codes. Lookups gallop the span and follow the offset
    buffer; the terminal level (no deeper keys) maps every code to a
    shared empty node.
    """

    __slots__ = ("_trie", "_level", "_lo", "_hi")

    def __init__(self, trie: FrozenTrie, level: int, lo: int, hi: int):
        self._trie = trie
        self._level = level
        self._lo = lo
        self._hi = hi

    def _find(self, code: int) -> int:
        """Global index of *code* in the span, or -1 when absent."""
        trie = self._trie
        if self._level >= len(trie.levels):
            return -1
        keys = trie.levels[self._level]
        g = gallop(keys, code, self._lo, self._hi)
        if g >= self._hi or keys[g] != code:
            return -1
        return g

    def get(self, code: int, default=None):
        """The child node of *code*, or *default* when absent."""
        g = self._find(code)
        if g < 0:
            return default
        trie = self._trie
        below = self._level + 1
        if below >= len(trie.levels):
            return _terminal_node(trie)
        offs = trie.offsets[below]
        return FrozenTrieNode(trie, below, offs[g], offs[g + 1])

    def __getitem__(self, code: int):
        child = self.get(code)
        if child is None:
            raise KeyError(code)
        return child

    def __contains__(self, code: int) -> bool:
        return self._find(code) >= 0


def _terminal_node(trie: FrozenTrie) -> FrozenTrieNode:
    """The (shared-shape) empty node below a last-level key."""
    return FrozenTrieNode(trie, len(trie.levels), 0, 0)
