"""Linear iterators over sorted value sequences.

The leapfrog primitives operate on anything implementing the small
:class:`LinearIterator` protocol (``key``/``next``/``seek``/``at_end``).
Two implementations are provided: :class:`SortedListIterator` over a plain
sorted list, and :class:`TrieLevelIterator` adapting one level of a
:class:`~repro.relational.trie.TrieIterator`. The XML side contributes its
own implementations for virtual P-C relations.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.relational.schema import Value, sort_key
from repro.relational.trie import TrieIterator


@runtime_checkable
class LinearIterator(Protocol):
    """A forward iterator over values in :func:`sort_key` order."""

    def key(self) -> Value:
        """The current value; undefined once :meth:`at_end` is true."""

    def next(self) -> None:
        """Advance to the following value."""

    def seek(self, value: Value) -> None:
        """Advance to the first value >= *value* (never moves backwards)."""

    def at_end(self) -> bool:
        """True once the iterator is exhausted."""


class SortedListIterator:
    """A linear iterator over an explicit sorted list of distinct values."""

    __slots__ = ("_values", "_keys", "_index")

    def __init__(self, values: Iterable[Value], *, presorted: bool = False):
        values = list(values)
        if not presorted:
            values = sorted(set(values), key=sort_key)
        self._values: Sequence[Value] = values
        self._keys = [sort_key(v) for v in values]
        self._index = 0

    def key(self) -> Value:
        return self._values[self._index]

    def next(self) -> None:
        self._index += 1

    def seek(self, value: Value) -> None:
        index = bisect.bisect_left(self._keys, sort_key(value), lo=self._index)
        self._index = index

    def at_end(self) -> bool:
        return self._index >= len(self._values)

    def __len__(self) -> int:
        return len(self._values)


class TrieLevelIterator:
    """Adapt the current level of a :class:`TrieIterator` to the protocol."""

    __slots__ = ("_trie_iterator",)

    def __init__(self, trie_iterator: TrieIterator):
        self._trie_iterator = trie_iterator

    def key(self) -> Value:
        return self._trie_iterator.key()

    def next(self) -> None:
        self._trie_iterator.next()

    def seek(self, value: Value) -> None:
        self._trie_iterator.seek(value)

    def at_end(self) -> bool:
        return self._trie_iterator.at_end()


def materialize(iterator: LinearIterator) -> list[Value]:
    """Drain a linear iterator into a list (test helper)."""
    out = []
    while not iterator.at_end():
        out.append(iterator.key())
        iterator.next()
    return out
