"""Generic join (NPRR-style attribute-at-a-time worst-case optimal join).

This is the relational special case of the paper's Algorithm 1: expand one
attribute at a time, taking candidate values from the *smallest* candidate
set among the relations that contain the attribute and filtering against
the others. Worst-case optimality follows from the same argument as NPRR /
generic join (Ngo et al. 2012, 2014).

Unlike :mod:`repro.relational.leapfrog` this implementation uses hashed
trie descent instead of sorted seeks; the two are cross-checked in tests
and raced in the triangle benchmark. Both run through the shared
dictionary-encoded engine (:mod:`repro.engine`): this module is a thin
front-end that encodes the inputs into an
:class:`~repro.engine.encoded.EncodedInstance` and invokes the registered
``generic_join`` operator.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.algorithms import GENERIC_JOIN
from repro.engine.encoded import EncodedInstance
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def generic_join(relations: Sequence[Relation],
                 order: Sequence[str] | None = None, *,
                 name: str = "Q",
                 stats: JoinStats | None = None) -> Relation:
    """Worst-case optimal natural join by attribute-wise expansion."""
    stats = ensure_stats(stats)
    if not relations:
        return Relation(name, Schema(()), [()])
    with stats.phase("encode"):
        instance = EncodedInstance.from_relations(relations, order,
                                                  name=name)
    return GENERIC_JOIN.run(instance, stats=stats)
