"""Generic join (NPRR-style attribute-at-a-time worst-case optimal join).

This is the relational special case of the paper's Algorithm 1: expand one
attribute at a time, taking candidate values from the *smallest* candidate
set among the relations that contain the attribute and filtering against
the others. Worst-case optimality follows from the same argument as NPRR /
generic join (Ngo et al. 2012, 2014).

Unlike :mod:`repro.relational.leapfrog` this implementation uses hashed
trie descent instead of sorted seeks; the two are cross-checked in tests
and raced in the triangle benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value
from repro.relational.trie import Trie, TrieNode


def _global_order(relations: Sequence[Relation],
                  order: Sequence[str] | None) -> tuple[str, ...]:
    all_attrs: list[str] = []
    for relation in relations:
        for attribute in relation.schema:
            if attribute not in all_attrs:
                all_attrs.append(attribute)
    if order is None:
        return tuple(all_attrs)
    order = tuple(order)
    if sorted(order) != sorted(all_attrs):
        raise QueryError(
            f"attribute order {list(order)!r} must be a permutation of the "
            f"query attributes {sorted(all_attrs)!r}"
        )
    return order


def generic_join(relations: Sequence[Relation],
                 order: Sequence[str] | None = None, *,
                 name: str = "Q",
                 stats: JoinStats | None = None) -> Relation:
    """Worst-case optimal natural join by attribute-wise expansion."""
    stats = ensure_stats(stats)
    if not relations:
        return Relation(name, Schema(()), [()])
    order = _global_order(relations, order)
    depth = len(order)

    tries = [Trie(r, r.schema.restrict_order(order)) for r in relations]
    # participants[level] = list of trie indexes whose next own level is
    # this global level.
    participation: list[list[int]] = [[] for _ in order]
    for index, trie in enumerate(tries):
        for attribute in trie.order:
            participation[order.index(attribute)].append(index)

    stats.start_timer()
    rows: list[tuple[Value, ...]] = []
    binding: list[Value] = []
    # Current trie node per relation (None = relation not yet entered or
    # pruned); start at each root.
    nodes: list[TrieNode | None] = [t.root for t in tries]
    alive = [0] * depth

    def search(level: int) -> None:
        participants = participation[level]
        candidate_nodes = [nodes[i] for i in participants]
        # Choose the relation with the fewest continuations as the seed.
        seed_position = min(range(len(participants)),
                            key=lambda i: len(candidate_nodes[i].children))
        seed_node = candidate_nodes[seed_position]
        for value in seed_node.sorted_keys:
            children = []
            feasible = True
            for node in candidate_nodes:
                stats.count_seeks()
                child = node.children.get(value)
                if child is None:
                    feasible = False
                    break
                children.append(child)
            if not feasible:
                continue
            saved = [nodes[i] for i in participants]
            for participant, child in zip(participants, children):
                nodes[participant] = child
            binding.append(value)
            alive[level] += 1
            if level + 1 == depth:
                rows.append(tuple(binding))
                stats.count_emitted()
            else:
                search(level + 1)
            binding.pop()
            for participant, old in zip(participants, saved):
                nodes[participant] = old

    if depth == 0:
        rows.append(())
    else:
        search(0)
        for level, count in enumerate(alive):
            stats.record_stage(f"level {order[level]}", count)
    stats.stop_timer()
    return Relation(name, Schema(order), rows)
