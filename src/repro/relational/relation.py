"""In-memory relations: named sets of tuples over a schema.

A :class:`Relation` stores *distinct* tuples (set semantics, as the paper's
size bounds assume). Construction validates arity; most algebra lives in
:mod:`repro.relational.operators`, but the handful of methods used
pervasively (project, select, rename, natural join) are available directly
on the class for convenience.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.errors import RelationError
from repro.relational.schema import Schema, Value, tuple_sort_key


class Relation:
    """A named, immutable set of tuples over a :class:`Schema`.

    >>> r = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
    >>> len(r)
    2
    >>> sorted(r.project(["a"]))
    [(1,)]
    """

    # __weakref__ lets the engine's statistics cache hold relations
    # weakly (repro.engine.planner.cached_relation_stats).
    __slots__ = ("name", "schema", "_rows", "__weakref__")

    def __init__(self, name: str, schema: Schema | Sequence[str],
                 rows: Iterable[Sequence[Value]] = ()):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.name = name
        self.schema = schema
        frozen: set[tuple[Value, ...]] = set()
        arity = schema.arity
        for row in rows:
            tup = tuple(row)
            if len(tup) != arity:
                raise RelationError(
                    f"relation {name!r}: row {tup!r} has arity {len(tup)}, "
                    f"schema {schema.attributes!r} has arity {arity}"
                )
            frozen.add(tup)
        self._rows = frozenset(frozen)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    @property
    def rows(self) -> frozenset[tuple[Value, ...]]:
        """The tuple set (distinct rows)."""
        return self._rows

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        """Equality on schema + tuple set (name is a label, not identity)."""
        if isinstance(other, Relation):
            return self.schema == other.schema and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self._rows))

    def __repr__(self) -> str:
        return (f"Relation({self.name!r}, {list(self.schema.attributes)!r}, "
                f"{len(self._rows)} rows)")

    def sorted_rows(self) -> list[tuple[Value, ...]]:
        """Rows in deterministic (mixed-type lexicographic) order."""
        return sorted(self._rows, key=tuple_sort_key)

    # ------------------------------------------------------------------
    # core algebra (thin wrappers; heavy lifting in operators.py)
    # ------------------------------------------------------------------

    def with_name(self, name: str) -> "Relation":
        """Same contents under a different name (no copy of the row set)."""
        clone = Relation.__new__(Relation)
        clone.name = name
        clone.schema = self.schema
        clone._rows = self._rows
        return clone

    def with_row_changes(self, added: Iterable[Sequence[Value]] = (),
                         removed: Iterable[Sequence[Value]] = ()
                         ) -> "Relation":
        """A new relation with *removed* rows dropped and *added* rows
        inserted (applied in that order; set semantics).

        The delta constructor used by the update layer: only the added
        rows are arity-checked, so applying a single-tuple delta never
        re-validates the whole row set.
        """
        rows = set(self._rows)
        rows.difference_update(tuple(row) for row in removed)
        arity = self.schema.arity
        for row in added:
            tup = tuple(row)
            if len(tup) != arity:
                raise RelationError(
                    f"relation {self.name!r}: row {tup!r} has arity "
                    f"{len(tup)}, schema {self.schema.attributes!r} has "
                    f"arity {arity}"
                )
            rows.add(tup)
        clone = Relation.__new__(Relation)
        clone.name = self.name
        clone.schema = self.schema
        clone._rows = frozenset(rows)
        return clone

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection (with duplicate elimination) onto *attributes*."""
        positions = self.schema.positions(attributes)
        rows = {tuple(row[p] for p in positions) for row in self._rows}
        return Relation(name or self.name, Schema(attributes), rows)

    def select(self, predicate: Callable[[Mapping[str, Value]], Any],
               name: str | None = None) -> "Relation":
        """Selection by a predicate over an attribute->value mapping."""
        attrs = self.schema.attributes
        keep = [row for row in self._rows
                if predicate(dict(zip(attrs, row)))]
        return Relation(name or self.name, self.schema, keep)

    def select_eq(self, attribute: str, value: Value,
                  name: str | None = None) -> "Relation":
        """Selection on a single equality, the common fast path."""
        position = self.schema.index(attribute)
        keep = [row for row in self._rows if row[position] == value]
        return Relation(name or self.name, self.schema, keep)

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename attributes via *mapping* (absent attributes unchanged)."""
        return Relation(name or self.name, self.schema.rename(mapping), self._rows)

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join, implemented by hashing on the shared attributes.

        This is the reference implementation used as a correctness oracle;
        the planned/instrumented joins live in :mod:`repro.relational.joins`.
        """
        shared = self.schema.common(other.schema)
        left_pos = self.schema.positions(shared)
        right_pos = other.schema.positions(shared)
        extra = tuple(a for a in other.schema if a not in self.schema)
        extra_pos = other.schema.positions(extra)

        index: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
        for row in other._rows:
            index.setdefault(tuple(row[p] for p in right_pos), []).append(row)

        out_schema = Schema(self.schema.attributes + extra)
        out_rows = []
        for row in self._rows:
            key = tuple(row[p] for p in left_pos)
            for match in index.get(key, ()):
                out_rows.append(row + tuple(match[p] for p in extra_pos))
        return Relation(name or f"({self.name}⋈{other.name})", out_schema, out_rows)

    def distinct_values(self, attribute: str) -> set[Value]:
        """The active domain of one attribute."""
        position = self.schema.index(attribute)
        return {row[position] for row in self._rows}

    def to_dicts(self) -> list[dict[str, Value]]:
        """Rows as attribute->value dicts, in deterministic order."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self.sorted_rows()]

    @classmethod
    def from_dicts(cls, name: str, schema: Sequence[str],
                   dicts: Iterable[Mapping[str, Value]]) -> "Relation":
        """Build a relation from attribute->value mappings."""
        schema_obj = Schema(schema)
        rows = []
        for mapping in dicts:
            try:
                rows.append(tuple(mapping[a] for a in schema_obj))
            except KeyError as exc:
                raise RelationError(
                    f"relation {name!r}: mapping {dict(mapping)!r} missing "
                    f"attribute {exc.args[0]!r}"
                ) from None
        return cls(name, schema_obj, rows)
