"""Relational algebra operators beyond the Relation convenience methods.

All operators are pure functions from relations to a new relation; inputs
are never mutated. Set semantics throughout (the paper's bounds count
distinct tuples).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value


def _require_same_schema(left: Relation, right: Relation, op: str) -> None:
    if left.schema != right.schema:
        raise SchemaError(
            f"{op} requires identical schemas, got "
            f"{left.schema.attributes!r} and {right.schema.attributes!r}"
        )


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set union of two relations with identical schemas."""
    _require_same_schema(left, right, "union")
    return Relation(name or f"({left.name}∪{right.name})",
                    left.schema, left.rows | right.rows)


def difference(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set difference ``left - right`` over identical schemas."""
    _require_same_schema(left, right, "difference")
    return Relation(name or f"({left.name}-{right.name})",
                    left.schema, left.rows - right.rows)


def intersection(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set intersection over identical schemas."""
    _require_same_schema(left, right, "intersection")
    return Relation(name or f"({left.name}∩{right.name})",
                    left.schema, left.rows & right.rows)


def cartesian_product(left: Relation, right: Relation,
                      name: str | None = None) -> Relation:
    """Cartesian product; schemas must be attribute-disjoint."""
    overlap = left.schema.common(right.schema)
    if overlap:
        raise SchemaError(
            f"cartesian product requires disjoint schemas, shared: {overlap!r}"
        )
    schema = Schema(left.schema.attributes + right.schema.attributes)
    rows = [l + r for l in left.rows for r in right.rows]
    return Relation(name or f"({left.name}×{right.name})", schema, rows)


def semijoin(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Left semijoin: rows of *left* with a join partner in *right*."""
    shared = left.schema.common(right.schema)
    if not shared:
        # With no shared attributes the semijoin keeps everything iff the
        # right side is non-empty.
        rows = left.rows if len(right) else frozenset()
        return Relation(name or f"({left.name}⋉{right.name})", left.schema, rows)
    left_pos = left.schema.positions(shared)
    right_keys = {tuple(row[p] for p in right.schema.positions(shared))
                  for row in right.rows}
    rows = [row for row in left.rows
            if tuple(row[p] for p in left_pos) in right_keys]
    return Relation(name or f"({left.name}⋉{right.name})", left.schema, rows)


def antijoin(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Left antijoin: rows of *left* with no join partner in *right*."""
    shared = left.schema.common(right.schema)
    if not shared:
        rows = frozenset() if len(right) else left.rows
        return Relation(name or f"({left.name}▷{right.name})", left.schema, rows)
    left_pos = left.schema.positions(shared)
    right_keys = {tuple(row[p] for p in right.schema.positions(shared))
                  for row in right.rows}
    rows = [row for row in left.rows
            if tuple(row[p] for p in left_pos) not in right_keys]
    return Relation(name or f"({left.name}▷{right.name})", left.schema, rows)


def naive_multiway_join(relations: Sequence[Relation],
                        name: str = "Q") -> Relation:
    """Reference natural join of many relations, left to right.

    Used as the correctness oracle for every optimised join in the library.
    Joining zero relations yields the nullary relation with one empty tuple
    (the identity of natural join).
    """
    if not relations:
        return Relation(name, Schema(()), [()])
    result = relations[0]
    for relation in relations[1:]:
        result = result.natural_join(relation)
    return result.with_name(name)


def select_in(relation: Relation, attribute: str,
              values: set[Value], name: str | None = None) -> Relation:
    """Selection keeping rows whose *attribute* value is in *values*."""
    position = relation.schema.index(attribute)
    rows = [row for row in relation.rows if row[position] in values]
    return Relation(name or relation.name, relation.schema, rows)
