"""Relational substrate: schemas, relations, indexes and join algorithms.

The paper presumes a relational engine with both traditional binary join
plans (for the baseline) and worst-case optimal joins (Leapfrog Triejoin,
generic join). This package provides all of it, self-contained.
"""

from repro.relational.aggregates import (
    agg_avg,
    agg_count,
    agg_count_distinct,
    agg_max,
    agg_min,
    agg_sum,
    group_by,
    order_by,
    summarize,
    top_k,
)
from repro.relational.catalog import Database
from repro.relational.generic_join import generic_join
from repro.relational.joins import hash_join, sort_merge_join
from repro.relational.leapfrog import leapfrog_intersect, leapfrog_triejoin
from repro.relational.operators import (
    antijoin,
    cartesian_product,
    difference,
    intersection,
    naive_multiway_join,
    semijoin,
    union,
)
from repro.relational.plans import (
    PlanNode,
    dp_plan,
    execute_plan,
    greedy_plan,
    join_node,
    leaf,
    left_deep_plan,
)
from repro.relational.query import ConjunctiveQuery, parse_cq
from repro.relational.relation import Relation
from repro.relational.schema import Schema, sort_key, tuple_sort_key
from repro.relational.trie import Trie, TrieIterator

__all__ = [
    "ConjunctiveQuery",
    "Database",
    "PlanNode",
    "Relation",
    "Schema",
    "Trie",
    "TrieIterator",
    "agg_avg",
    "agg_count",
    "agg_count_distinct",
    "agg_max",
    "agg_min",
    "agg_sum",
    "group_by",
    "order_by",
    "parse_cq",
    "summarize",
    "top_k",
    "antijoin",
    "cartesian_product",
    "difference",
    "dp_plan",
    "execute_plan",
    "generic_join",
    "greedy_plan",
    "hash_join",
    "intersection",
    "join_node",
    "leaf",
    "leapfrog_intersect",
    "leapfrog_triejoin",
    "left_deep_plan",
    "naive_multiway_join",
    "semijoin",
    "sort_key",
    "sort_merge_join",
    "tuple_sort_key",
    "union",
]
