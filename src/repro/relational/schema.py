"""Relational schemas: ordered sequences of named attributes.

A :class:`Schema` is an immutable, ordered collection of distinct attribute
names. Tuples of a relation are plain Python tuples positionally aligned
with the schema. The module also provides :func:`sort_key`, a total order
over the mixed value domain (ints, floats, strings, ...) used everywhere a
deterministic order is needed (tries, leapfrog iterators, sorted output).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import SchemaError

#: The value domain of the library: any hashable scalar. Integers and
#: strings are what the paper's workloads use; floats appear in examples.
Value = Any

_TYPE_RANK = {bool: 0, int: 1, float: 1, str: 2, bytes: 3, tuple: 4}


def sort_key(value: Value) -> tuple[int, Value]:
    """Total order over mixed-type values.

    Numbers sort together by numeric value, then strings, then bytes, then
    tuples; any other type sorts last by its repr. This makes sorting a
    column containing e.g. both ints and strings well defined instead of
    raising ``TypeError``.
    """
    rank = _TYPE_RANK.get(type(value))
    if rank is None:
        return (9, repr(value))
    if rank == 0:  # bool is an int subclass; fold it into the numeric rank
        return (1, int(value))
    return (rank, value)


def tuple_sort_key(row: Sequence[Value]) -> tuple[tuple[int, Value], ...]:
    """Lexicographic extension of :func:`sort_key` to whole tuples."""
    return tuple(sort_key(v) for v in row)


class Schema:
    """An immutable ordered list of distinct attribute names.

    >>> s = Schema(["a", "b", "c"])
    >>> s.index("b")
    1
    >>> s.project(["c", "a"]).attributes
    ('c', 'a')
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        if not all(isinstance(a, str) and a for a in attrs):
            raise SchemaError(f"attribute names must be non-empty strings: {attrs!r}")
        index: dict[str, int] = {}
        for position, name in enumerate(attrs):
            if name in index:
                raise SchemaError(f"duplicate attribute {name!r} in schema {attrs!r}")
            index[name] = position
        self._attributes = attrs
        self._index = index

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names, in schema order."""
        return self._attributes

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def index(self, attribute: str) -> int:
        """Position of *attribute*, raising :class:`SchemaError` if absent."""
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self._attributes!r}"
            ) from None

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __getitem__(self, position: int) -> str:
        return self._attributes[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)!r})"

    def project(self, attributes: Iterable[str]) -> "Schema":
        """A new schema with the given attributes (order as requested)."""
        attrs = tuple(attributes)
        for name in attrs:
            self.index(name)  # validates membership
        return Schema(attrs)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with attributes renamed via *mapping*.

        Attributes absent from the mapping keep their names.
        """
        return Schema(mapping.get(a, a) for a in self._attributes)

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Positions of each requested attribute, in request order."""
        return tuple(self.index(a) for a in attributes)

    def common(self, other: "Schema") -> tuple[str, ...]:
        """Attributes shared with *other*, in this schema's order."""
        return tuple(a for a in self._attributes if a in other)

    def union(self, other: "Schema") -> "Schema":
        """This schema followed by *other*'s attributes not already present."""
        extra = tuple(a for a in other if a not in self)
        return Schema(self._attributes + extra)

    def restrict_order(self, order: Sequence[str]) -> tuple[str, ...]:
        """The subsequence of *order* consisting of this schema's attributes.

        Raises :class:`SchemaError` unless *order* covers the whole schema;
        used to derive per-relation trie orders from a global attribute
        order.
        """
        covered = tuple(a for a in order if a in self)
        if len(covered) != self.arity:
            missing = sorted(set(self._attributes) - set(covered))
            raise SchemaError(
                f"attribute order {list(order)!r} does not cover {missing!r}"
            )
        return covered
