"""Leapfrog Triejoin (Veldhuizen 2012), cited by the paper as a simple
worst-case optimal relational join.

Two layers: :func:`leapfrog_intersect`, the unary leapfrog over
:class:`~repro.relational.iterators.LinearIterator` instances, and
:func:`leapfrog_triejoin`, the full multiway join. The multiway join runs
through the shared dictionary-encoded engine (:mod:`repro.engine`): with
per-attribute domains encoded to dense ints in value order, the trie
seeks compare plain integers instead of materialising
:func:`~repro.relational.schema.sort_key` tuples per comparison.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.engine.algorithms import LEAPFROG
from repro.engine.encoded import EncodedInstance
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.iterators import LinearIterator
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value, sort_key


def leapfrog_intersect(iterators: Sequence[LinearIterator], *,
                       stats: JoinStats | None = None) -> Iterator[Value]:
    """Yield the intersection of the iterators' value sequences, in order.

    The classic leapfrog: repeatedly seek the lagging iterator to the
    current maximum until all iterators agree on a key. This standalone
    form works over raw (unencoded) values, hence the sort_key calls; the
    multiway join below leapfrogs over encoded ints instead.
    """
    stats = ensure_stats(stats)
    if not iterators:
        return
    if any(it.at_end() for it in iterators):
        return
    # Order the iterators by their current key; p points at the smallest.
    order = sorted(range(len(iterators)), key=lambda i: sort_key(iterators[i].key()))
    its = [iterators[i] for i in order]
    p = 0
    max_key = its[-1].key()
    while True:
        it = its[p]
        least = it.key()
        stats.count_comparisons()
        if sort_key(least) == sort_key(max_key):
            yield least
            it.next()
            stats.count_seeks()
            if it.at_end():
                return
            max_key = it.key()
        else:
            it.seek(max_key)
            stats.count_seeks()
            if it.at_end():
                return
            max_key = it.key()
        p = (p + 1) % len(its)


def leapfrog_triejoin(relations: Sequence[Relation],
                      order: Sequence[str] | None = None, *,
                      name: str = "Q",
                      stats: JoinStats | None = None) -> Relation:
    """Worst-case optimal natural join of *relations* via LFTJ.

    ``order`` is the global attribute order; it must cover the union of the
    schemas. Defaults to the attributes in first-appearance order.
    """
    stats = ensure_stats(stats)
    if not relations:
        return Relation(name, Schema(()), [()])
    with stats.phase("encode"):
        instance = EncodedInstance.from_relations(relations, order,
                                                  name=name)
    return LEAPFROG.run(instance, stats=stats)
