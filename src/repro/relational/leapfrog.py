"""Leapfrog Triejoin (Veldhuizen 2012), cited by the paper as a simple
worst-case optimal relational join.

Two layers: :func:`leapfrog_intersect`, the unary leapfrog over
:class:`~repro.relational.iterators.LinearIterator` instances, and
:func:`leapfrog_triejoin`, the full multiway join driving one
:class:`~repro.relational.trie.TrieIterator` per relation through a global
attribute order.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import QueryError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.iterators import LinearIterator
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value, sort_key
from repro.relational.trie import Trie, TrieIterator


def leapfrog_intersect(iterators: Sequence[LinearIterator], *,
                       stats: JoinStats | None = None) -> Iterator[Value]:
    """Yield the intersection of the iterators' value sequences, in order.

    The classic leapfrog: repeatedly seek the lagging iterator to the
    current maximum until all iterators agree on a key.
    """
    stats = ensure_stats(stats)
    if not iterators:
        return
    if any(it.at_end() for it in iterators):
        return
    # Order the iterators by their current key; p points at the smallest.
    order = sorted(range(len(iterators)), key=lambda i: sort_key(iterators[i].key()))
    its = [iterators[i] for i in order]
    p = 0
    max_key = its[-1].key()
    while True:
        it = its[p]
        least = it.key()
        stats.count_comparisons()
        if sort_key(least) == sort_key(max_key):
            yield least
            it.next()
            stats.count_seeks()
            if it.at_end():
                return
            max_key = it.key()
        else:
            it.seek(max_key)
            stats.count_seeks()
            if it.at_end():
                return
            max_key = it.key()
        p = (p + 1) % len(its)


def leapfrog_triejoin(relations: Sequence[Relation],
                      order: Sequence[str] | None = None, *,
                      name: str = "Q",
                      stats: JoinStats | None = None) -> Relation:
    """Worst-case optimal natural join of *relations* via LFTJ.

    ``order`` is the global attribute order; it must cover the union of the
    schemas. Defaults to the attributes in first-appearance order.
    """
    stats = ensure_stats(stats)
    if not relations:
        return Relation(name, Schema(()), [()])

    all_attrs: list[str] = []
    for relation in relations:
        for attribute in relation.schema:
            if attribute not in all_attrs:
                all_attrs.append(attribute)
    if order is None:
        order = tuple(all_attrs)
    else:
        order = tuple(order)
        if sorted(order) != sorted(all_attrs):
            raise QueryError(
                f"attribute order {list(order)!r} must be a permutation of "
                f"the query attributes {sorted(all_attrs)!r}"
            )

    tries = [Trie(r, r.schema.restrict_order(order)) for r in relations]
    iterators = [TrieIterator(t) for t in tries]
    # Which trie iterators participate at each attribute level, and at
    # which of their own levels.
    participants: list[list[TrieIterator]] = [[] for _ in order]
    for trie, it in zip(tries, iterators):
        for attribute in trie.order:
            participants[order.index(attribute)].append(it)

    stats.start_timer()
    rows: list[tuple[Value, ...]] = []
    binding: list[Value] = []
    depth = len(order)

    def search(level: int, alive_at_level: list[int]) -> None:
        its = participants[level]
        for it in its:
            it.open()
        produced = 0
        if not any(it.at_end() for it in its):
            # Leapfrog across the participants of this level.
            its_sorted = sorted(its, key=lambda i: sort_key(i.key()))
            p = 0
            max_key = its_sorted[-1].key()
            while True:
                it = its_sorted[p]
                least = it.key()
                stats.count_comparisons()
                if sort_key(least) == sort_key(max_key):
                    binding.append(least)
                    produced += 1
                    if level + 1 == depth:
                        rows.append(tuple(binding))
                        stats.count_emitted()
                    else:
                        search(level + 1, alive_at_level)
                    binding.pop()
                    it.next()
                    stats.count_seeks()
                    if it.at_end():
                        break
                    max_key = it.key()
                else:
                    it.seek(max_key)
                    stats.count_seeks()
                    if it.at_end():
                        break
                    max_key = it.key()
                p = (p + 1) % len(its_sorted)
        alive_at_level[level] += produced
        for it in its:
            it.up()

    if depth == 0:
        rows.append(())
    else:
        alive = [0] * depth
        search(0, alive)
        for level, count in enumerate(alive):
            stats.record_stage(f"level {order[level]}", count)
    stats.stop_timer()
    result = Relation(name, Schema(order), rows)
    return result
