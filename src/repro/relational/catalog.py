"""A tiny relational catalog: named relations plus cached statistics."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import QueryError
from repro.relational.csvio import read_csv
from repro.relational.relation import Relation
from repro.relational.statistics import RelationStats, relation_stats


class Database:
    """A named collection of relations with lazily computed statistics.

    >>> db = Database()
    >>> _ = db.add(Relation("R", ("a", "b"), [(1, 2)]))
    >>> db["R"].schema.attributes
    ('a', 'b')
    """

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._stats: dict[str, RelationStats] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation, *, replace: bool = False) -> Relation:
        """Register a relation under its name."""
        if relation.name in self._relations and not replace:
            raise QueryError(f"relation {relation.name!r} already exists "
                             f"(pass replace=True to overwrite)")
        self._relations[relation.name] = relation
        self._stats.pop(relation.name, None)
        return relation

    def remove(self, name: str) -> None:
        if name not in self._relations:
            raise QueryError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._stats.pop(name, None)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def stats(self, name: str) -> RelationStats:
        """Statistics for one relation, computed once and cached."""
        if name not in self._stats:
            self._stats[name] = relation_stats(self[name])
        return self._stats[name]

    def load_csv(self, name: str, path: str | Path) -> Relation:
        """Read a CSV file and register it as relation *name*."""
        return self.add(read_csv(name, path))

    def relations(self, names: Iterable[str] | None = None) -> list[Relation]:
        """Look up several relations (all of them when *names* is None)."""
        if names is None:
            return list(self._relations.values())
        return [self[name] for name in names]
