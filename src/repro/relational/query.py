"""A datalog-style conjunctive query front-end for the relational engine.

Grammar::

    query := HEAD '(' vars ')' ':-' atom (',' atom)*
    atom  := NAME '(' terms ')'
    term  := variable | constant        # constants: int, float, 'string'

Example::

    q = parse_cq("Q(x, z) :- R(x, y), S(y, z), T(x, z)")
    result = q.evaluate(database)                  # leapfrog triejoin
    result = q.evaluate(database, algorithm="binary")  # hash-join plan

Constants compile to selections; repeated variables within one atom
compile to equality selections; the head projects the join. This is the
front-end the relational substrate deserves — and it doubles as a test
vehicle for the WCOJ joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.instrumentation import JoinStats
from repro.relational.catalog import Database
from repro.relational.generic_join import generic_join
from repro.relational.leapfrog import leapfrog_triejoin
from repro.relational.plans import execute_plan, greedy_plan
from repro.relational.relation import Relation
from repro.relational.schema import Value

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


@dataclass(frozen=True)
class Term:
    """One argument of an atom: a variable or a constant."""

    is_variable: bool
    value: Value  # variable name (str) or the constant itself


@dataclass(frozen=True)
class Atom:
    """One body atom: a relation name applied to terms."""

    relation: str
    terms: tuple[Term, ...]

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(t.value for t in self.terms if t.is_variable)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A parsed conjunctive query."""

    name: str
    head: tuple[str, ...]
    body: tuple[Atom, ...]

    def variables(self) -> tuple[str, ...]:
        seen: list[str] = []
        for atom in self.body:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def validate(self) -> None:
        body_vars = set(self.variables())
        for variable in self.head:
            if variable not in body_vars:
                raise QueryError(
                    f"head variable {variable!r} not bound in the body")
        if not self.body:
            raise QueryError("a conjunctive query needs at least one atom")

    def _prepared_inputs(self, database: Database) -> list[Relation]:
        """One relation per atom: constants/repeats selected out, columns
        renamed to the atom's variables."""
        prepared = []
        for index, atom in enumerate(self.body):
            relation = database[atom.relation]
            if relation.schema.arity != len(atom.terms):
                raise QueryError(
                    f"atom {atom.relation}/{len(atom.terms)} does not match "
                    f"relation arity {relation.schema.arity}")
            rows = []
            keep_positions: list[int] = []
            variable_names: list[str] = []
            first_position: dict[str, int] = {}
            for position, term in enumerate(atom.terms):
                if term.is_variable and term.value not in first_position:
                    first_position[term.value] = position
                    keep_positions.append(position)
                    variable_names.append(term.value)
            for row in relation.rows:
                ok = True
                for position, term in enumerate(atom.terms):
                    if term.is_variable:
                        if row[position] != row[first_position[term.value]]:
                            ok = False
                            break
                    elif row[position] != term.value:
                        ok = False
                        break
                if ok:
                    rows.append(tuple(row[p] for p in keep_positions))
            prepared.append(Relation(f"{atom.relation}#{index}",
                                     tuple(variable_names), rows))
        return prepared

    def evaluate(self, database: Database, *,
                 algorithm: str = "leapfrog",
                 stats: JoinStats | None = None) -> Relation:
        """Evaluate against *database*; algorithms: leapfrog (WCOJ,
        default), generic (WCOJ), binary (greedy hash-join plan)."""
        self.validate()
        inputs = self._prepared_inputs(database)
        order = self.variables()
        if algorithm == "leapfrog":
            joined = leapfrog_triejoin(inputs, order, stats=stats)
        elif algorithm == "generic":
            joined = generic_join(inputs, order, stats=stats)
        elif algorithm == "binary":
            named = {r.name: r for r in inputs}
            joined = execute_plan(greedy_plan(named), named, stats=stats)
        else:
            raise QueryError(f"unknown algorithm {algorithm!r}")
        return joined.project(self.head, name=self.name)


class _Scanner:
    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> QueryError:
        return QueryError(f"{message} at offset {self.pos} in {self.text!r}")

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_space()
        return self.text[self.pos: self.pos + 1]

    def expect(self, token: str) -> None:
        self.skip_space()
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def name(self) -> str:
        self.skip_space()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start: self.pos]

    def term(self) -> Term:
        self.skip_space()
        ch = self.peek()
        if ch == "'":
            self.pos += 1
            end = self.text.find("'", self.pos)
            if end < 0:
                raise self.error("unterminated string constant")
            value = self.text[self.pos: end]
            self.pos = end + 1
            return Term(is_variable=False, value=value)
        if ch.isdigit() or ch == "-":
            start = self.pos
            self.pos += 1
            while (self.pos < len(self.text)
                   and (self.text[self.pos].isdigit()
                        or self.text[self.pos] == ".")):
                self.pos += 1
            raw = self.text[start: self.pos]
            return Term(is_variable=False,
                        value=float(raw) if "." in raw else int(raw))
        return Term(is_variable=True, value=self.name())

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos >= len(self.text)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse ``Head(x, y) :- R(x, z), S(z, y)`` into a query object."""
    scanner = _Scanner(text)
    name = scanner.name()
    scanner.expect("(")
    head: list[str] = []
    if scanner.peek() != ")":
        while True:
            term = scanner.term()
            if not term.is_variable:
                raise scanner.error("head terms must be variables")
            head.append(term.value)
            if scanner.peek() == ",":
                scanner.expect(",")
                continue
            break
    scanner.expect(")")
    scanner.expect(":-")
    atoms: list[Atom] = []
    while True:
        relation = scanner.name()
        scanner.expect("(")
        terms: list[Term] = []
        if scanner.peek() != ")":
            while True:
                terms.append(scanner.term())
                if scanner.peek() == ",":
                    scanner.expect(",")
                    continue
                break
        scanner.expect(")")
        atoms.append(Atom(relation=relation, terms=tuple(terms)))
        if scanner.peek() == ",":
            scanner.expect(",")
            continue
        break
    if not scanner.at_end():
        raise scanner.error("trailing input after query")
    query = ConjunctiveQuery(name=name, head=tuple(head), body=tuple(atoms))
    query.validate()
    return query
