"""Grouping and aggregation over relations.

The examples' analytics queries (counts per category, top-k prices) need
a small aggregation layer on top of the join algebra. Set semantics:
grouping keys are attribute subsets; aggregates are named functions over
the group's rows.

>>> r = Relation("R", ("cat", "price"), [("a", 10), ("a", 20), ("b", 5)])
>>> out = group_by(r, ["cat"], {"total": agg_sum("price")})
>>> sorted(out)
[('a', 30), ('b', 5)]
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value, sort_key, tuple_sort_key

#: An aggregate: a function from the group's rows (as attr->value dicts)
#: to a single value.
Aggregate = Callable[[list[dict[str, Value]]], Value]


def agg_count() -> Aggregate:
    """COUNT(*) over the group."""
    return lambda rows: len(rows)


def agg_count_distinct(attribute: str) -> Aggregate:
    """COUNT(DISTINCT attribute)."""
    return lambda rows: len({row[attribute] for row in rows})


def agg_sum(attribute: str) -> Aggregate:
    """SUM(attribute)."""
    return lambda rows: sum(row[attribute] for row in rows)


def agg_min(attribute: str) -> Aggregate:
    """MIN(attribute) under the library's total order."""
    return lambda rows: min((row[attribute] for row in rows),
                            key=sort_key)


def agg_max(attribute: str) -> Aggregate:
    """MAX(attribute) under the library's total order."""
    return lambda rows: max((row[attribute] for row in rows),
                            key=sort_key)


def agg_avg(attribute: str) -> Aggregate:
    """AVG(attribute) as a float."""

    def compute(rows: list[dict[str, Value]]) -> Value:
        return sum(row[attribute] for row in rows) / len(rows)

    return compute


def group_by(relation: Relation, keys: Sequence[str],
             aggregates: Mapping[str, Aggregate], *,
             name: str | None = None) -> Relation:
    """Group *relation* by *keys* and compute the named aggregates.

    The output schema is ``keys + aggregate names``; grouping an empty
    relation yields an empty relation (and, with no keys, no global row —
    use :func:`summarize` for SQL's always-one-row behaviour).
    """
    schema = Schema(tuple(keys) + tuple(aggregates))
    key_positions = relation.schema.positions(keys)
    attrs = relation.schema.attributes
    groups: dict[tuple[Value, ...], list[dict[str, Value]]] = {}
    for row in relation.rows:
        group_key = tuple(row[p] for p in key_positions)
        groups.setdefault(group_key, []).append(dict(zip(attrs, row)))
    out_rows = []
    for group_key, members in groups.items():
        out_rows.append(group_key + tuple(
            aggregate(members) for aggregate in aggregates.values()))
    return Relation(name or f"γ({relation.name})", schema, out_rows)


def summarize(relation: Relation,
              aggregates: Mapping[str, Aggregate], *,
              name: str | None = None) -> Relation:
    """Whole-relation aggregation producing exactly one row.

    Empty input yields one row of aggregate values over zero rows for
    aggregates that support it (count -> 0); aggregates that need rows
    (min/max/avg) raise ``ValueError``/``ZeroDivisionError`` as Python
    naturally would — an empty min has no meaningful value.
    """
    attrs = relation.schema.attributes
    members = [dict(zip(attrs, row)) for row in relation.rows]
    row = tuple(aggregate(members) for aggregate in aggregates.values())
    return Relation(name or f"γ({relation.name})",
                    Schema(tuple(aggregates)), [row])


def order_by(relation: Relation, keys: Sequence[str], *,
             descending: bool = False,
             limit: int | None = None) -> list[tuple[Value, ...]]:
    """Rows sorted by *keys* (then by the full tuple, for determinism).

    Returns a list — ordering is presentation, not algebra, so the result
    is not a Relation.
    """
    positions = relation.schema.positions(keys)

    def sort_value(row: tuple[Value, ...]):
        return (tuple_sort_key(tuple(row[p] for p in positions)),
                tuple_sort_key(row))

    ordered = sorted(relation.rows, key=sort_value, reverse=descending)
    return ordered[:limit] if limit is not None else ordered


def top_k(relation: Relation, attribute: str, k: int) -> list[tuple[Value, ...]]:
    """The k rows with the largest values of *attribute*."""
    if k < 0:
        raise SchemaError("top_k requires k >= 0")
    return order_by(relation, [attribute], descending=True, limit=k)
