"""CSV persistence for relations.

The first row is the header (the schema). Values are written as text; on
read, each cell is revived with :func:`parse_value`, which restores ints
and floats and leaves everything else as strings — matching how the
synthetic workloads of the paper encode their domains.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Value


def parse_value(text: str) -> Value:
    """Revive a CSV cell: int if it looks like an int, else float, else str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def relation_to_csv(relation: Relation) -> str:
    """Serialise a relation to CSV text (header + sorted rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(relation.schema.attributes)
    for row in relation.sorted_rows():
        writer.writerow(row)
    return buffer.getvalue()


def relation_from_csv(name: str, text: str) -> Relation:
    """Parse CSV text (header + rows) into a relation."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise RelationError(f"relation {name!r}: CSV input is empty") from None
    rows = [tuple(parse_value(cell) for cell in record)
            for record in reader if record]
    return Relation(name, tuple(header), rows)


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to *path* as CSV."""
    Path(path).write_text(relation_to_csv(relation), encoding="utf-8")


def read_csv(name: str, path: str | Path) -> Relation:
    """Read a relation from a CSV file at *path*."""
    return relation_from_csv(name, Path(path).read_text(encoding="utf-8"))
