"""Sorted trie indexes over relations, the storage layout behind LFTJ.

A :class:`Trie` indexes a relation by a fixed attribute order. Each node
maps a value to its child node; every node caches its keys in sorted order
(the mixed-type total order of :func:`repro.relational.schema.sort_key`) so
leapfrog iterators can binary-search them.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator, Sequence

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Value, sort_key


class TrieNode:
    """One level of a trie: sorted keys plus child pointers."""

    __slots__ = ("children", "sorted_keys", "_sort_keys")

    def __init__(self) -> None:
        self.children: dict[Value, "TrieNode"] = {}
        self.sorted_keys: list[Value] = []
        self._sort_keys: list[tuple[int, Value]] = []

    def freeze(self) -> None:
        """Sort the key cache; called once after building."""
        self.sorted_keys = sorted(self.children, key=sort_key)
        self._sort_keys = [sort_key(k) for k in self.sorted_keys]
        for child in self.children.values():
            child.freeze()

    def seek_index(self, value: Value) -> int:
        """Index of the first key >= *value* in the sorted order."""
        return bisect.bisect_left(self._sort_keys, sort_key(value))

    def __len__(self) -> int:
        return len(self.children)


class Trie:
    """A relation indexed as a trie over ``order`` (a permutation of its schema).

    >>> r = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 2)])
    >>> t = Trie(r, ("a", "b"))
    >>> t.root.sorted_keys
    [1, 2]
    >>> sorted(t.tuples())
    [(1, 2), (1, 3), (2, 2)]
    """

    def __init__(self, relation: Relation, order: Sequence[str] | None = None):
        if order is None:
            order = relation.schema.attributes
        order = tuple(order)
        if sorted(order) != sorted(relation.schema.attributes):
            raise RelationError(
                f"trie order {order!r} is not a permutation of schema "
                f"{relation.schema.attributes!r}"
            )
        self.relation = relation
        self.order = order
        positions = relation.schema.positions(order)
        self.root = self._build(relation.rows, positions)
        self.size = len(relation)

    @staticmethod
    def _build(rows, positions) -> TrieNode:
        root = TrieNode()
        for row in rows:
            node = root
            for position in positions:
                value = row[position]
                child = node.children.get(value)
                if child is None:
                    child = TrieNode()
                    node.children[value] = child
                node = child
        root.freeze()
        return root

    @classmethod
    def from_rows(cls, name: str, attributes: Sequence[str], rows,
                  order: Sequence[str] | None = None) -> "Trie":
        """Build a trie directly from an iterable of rows.

        Rows are consumed once and deduplicated by the trie structure
        itself — no intermediate relation is materialised. (The encoded
        engine's :class:`repro.engine.encoded.EncodedTrie` supersedes
        this on XJoin's hot path; this value-keyed variant remains the
        reference index used by the iterator/operator tests.)
        """
        attributes = tuple(attributes)
        if order is None:
            order = attributes
        order = tuple(order)
        if sorted(order) != sorted(attributes):
            raise RelationError(
                f"trie order {order!r} is not a permutation of "
                f"{attributes!r}")
        trie = cls.__new__(cls)
        trie.relation = None
        trie.order = order
        positions = tuple(attributes.index(a) for a in order)
        trie.root = cls._build(rows, positions)
        trie.size = sum(1 for _ in trie.tuples())
        return trie

    @property
    def depth(self) -> int:
        return len(self.order)

    def tuples(self) -> Iterator[tuple[Value, ...]]:
        """Enumerate stored tuples (in ``order`` attribute order), sorted."""

        def recurse(node: TrieNode, prefix: tuple[Value, ...],
                    level: int) -> Iterator[tuple[Value, ...]]:
            if level == self.depth:
                yield prefix
                return
            for key in node.sorted_keys:
                yield from recurse(node.children[key], prefix + (key,), level + 1)

        yield from recurse(self.root, (), 0)

    def descend(self, prefix: Sequence[Value]) -> TrieNode | None:
        """The node reached by following *prefix* from the root, or None."""
        node = self.root
        for value in prefix:
            node = node.children.get(value)
            if node is None:
                return None
        return node

    def contains_prefix(self, prefix: Sequence[Value]) -> bool:
        return self.descend(prefix) is not None


class TrieIterator:
    """The LFTJ trie-iterator interface: open / up / next / seek / key.

    The iterator is positioned *at* a key on some level (or at-end on that
    level). Level -1 is the virtual root position before any ``open``.
    """

    __slots__ = ("_trie", "_path", "_positions")

    def __init__(self, trie: Trie):
        self._trie = trie
        self._path: list[TrieNode] = [trie.root]
        self._positions: list[int] = []

    @property
    def level(self) -> int:
        """Current depth: -1 at the root, 0..depth-1 when positioned."""
        return len(self._positions) - 1

    def _current_node(self) -> TrieNode:
        return self._path[-1]

    def at_end(self) -> bool:
        """True when positioned past the last key of the current level."""
        node = self._path[len(self._positions) - 1]
        return self._positions[-1] >= len(node.sorted_keys)

    def key(self) -> Value:
        """The key at the current position (undefined when at_end)."""
        node = self._path[len(self._positions) - 1]
        return node.sorted_keys[self._positions[-1]]

    def open(self) -> None:
        """Descend to the first key of the next level."""
        node = self._path[len(self._positions) - 1]
        if self._positions:
            node = node.children[self.key()]
            self._path.append(node)
        self._positions.append(0)

    def up(self) -> None:
        """Return to the parent level."""
        self._positions.pop()
        while len(self._path) > max(len(self._positions), 1):
            self._path.pop()

    def next(self) -> None:
        """Advance to the next key on the current level."""
        self._positions[-1] += 1

    def seek(self, value: Value) -> None:
        """Advance to the first key >= *value* on the current level."""
        node = self._path[len(self._positions) - 1]
        index = node.seek_index(value)
        if index > self._positions[-1]:
            self._positions[-1] = index
