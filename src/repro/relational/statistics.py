"""Per-relation statistics used by planners and size estimators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.relation import Relation
from repro.relational.schema import Value, sort_key


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one attribute of a relation."""

    attribute: str
    distinct: int
    minimum: Value | None
    maximum: Value | None
    max_frequency: int

    @property
    def selectivity(self) -> float:
        """Fraction of the domain an equality predicate keeps (1/distinct).

        An empty column carries no information, so its selectivity is the
        *unknown* estimate 1.0 (keep everything) rather than 0.0 — a zero
        would make cost models silently drop whole plan subtrees.
        """
        return 1.0 / self.distinct if self.distinct else 1.0


@dataclass(frozen=True)
class RelationStats:
    """Cardinality plus per-column statistics of a relation."""

    name: str
    cardinality: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def distinct(self, attribute: str) -> int:
        return self.columns[attribute].distinct


def column_stats_from_frequencies(attribute: str,
                                  frequency: "dict[Value, int]"
                                  ) -> ColumnStats:
    """:class:`ColumnStats` from a value -> occurrence-count map.

    Shared by the from-scratch scan below and the delta-maintained
    frequency maps of :mod:`repro.updates.relations`, so incrementally
    maintained statistics are equal (not merely equivalent) to a rescan.
    """
    if not frequency:
        return ColumnStats(attribute, 0, None, None, 0)
    return ColumnStats(
        attribute=attribute,
        distinct=len(frequency),
        minimum=min(frequency, key=sort_key),
        maximum=max(frequency, key=sort_key),
        max_frequency=max(frequency.values()),
    )


def column_stats(relation: Relation, attribute: str) -> ColumnStats:
    """Compute distinct count, min/max and the heaviest-hitter frequency."""
    position = relation.schema.index(attribute)
    frequency: dict[Value, int] = {}
    for row in relation.rows:
        value = row[position]
        frequency[value] = frequency.get(value, 0) + 1
    return column_stats_from_frequencies(attribute, frequency)


def relation_stats(relation: Relation) -> RelationStats:
    """Compute full statistics for a relation."""
    return RelationStats(
        name=relation.name,
        cardinality=len(relation),
        columns={a: column_stats(relation, a) for a in relation.schema},
    )


def stats_from_frequencies(name: str, cardinality: int,
                           frequencies: "dict[str, dict[Value, int]]"
                           ) -> RelationStats:
    """Full statistics from per-column frequency maps (the update layer's
    delta-maintained state), identical to a :func:`relation_stats` rescan."""
    return RelationStats(
        name=name,
        cardinality=cardinality,
        columns={a: column_stats_from_frequencies(a, freq)
                 for a, freq in frequencies.items()},
    )
