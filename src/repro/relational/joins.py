"""Binary join algorithms: hash join and sort-merge join.

These are the building blocks of the *baseline* evaluator (the paper's Q1:
a tree of binary joins over the relational tables). Both record the size
of every produced intermediate in a :class:`~repro.instrumentation.JoinStats`
so benchmarks can compare against XJoin's intermediates.
"""

from __future__ import annotations

from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value, tuple_sort_key


def hash_join(left: Relation, right: Relation, *,
              name: str | None = None,
              stats: JoinStats | None = None) -> Relation:
    """Natural hash join; builds on the smaller input.

    With no shared attributes this degrades to a counted cartesian product,
    which is exactly the behaviour the baseline needs for Q1 ⋈ Q2 when the
    sub-queries share nothing.
    """
    stats = ensure_stats(stats)
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    shared = build.schema.common(probe.schema)
    build_pos = build.schema.positions(shared)
    probe_pos = probe.schema.positions(shared)

    index: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
    for row in build.rows:
        index.setdefault(tuple(row[p] for p in build_pos), []).append(row)

    extra = tuple(a for a in build.schema if a not in probe.schema)
    extra_pos = build.schema.positions(extra)
    out_schema = Schema(probe.schema.attributes + extra)

    out_rows = []
    for row in probe.rows:
        key = tuple(row[p] for p in probe_pos)
        stats.count_seeks()
        for match in index.get(key, ()):
            out_rows.append(row + tuple(match[p] for p in extra_pos))
            stats.count_emitted()

    result = Relation(name or f"({left.name}⋈{right.name})", out_schema, out_rows)
    # Reorder columns so the left input's attributes come first regardless
    # of which side was chosen as build; callers rely on a deterministic
    # output schema.
    target = tuple(left.schema.attributes) + tuple(
        a for a in right.schema if a not in left.schema)
    if result.schema.attributes != target:
        result = result.project(target, name=result.name)
    stats.record_stage(result.name, len(result))
    return result


def sort_merge_join(left: Relation, right: Relation, *,
                    name: str | None = None,
                    stats: JoinStats | None = None) -> Relation:
    """Natural sort-merge join on the shared attributes."""
    stats = ensure_stats(stats)
    shared = left.schema.common(right.schema)
    if not shared:
        # No sort keys: fall back to the counted product via hash_join.
        return hash_join(left, right, name=name, stats=stats)

    left_pos = left.schema.positions(shared)
    right_pos = right.schema.positions(shared)

    def left_key(row: tuple[Value, ...]):
        return tuple_sort_key(tuple(row[p] for p in left_pos))

    def right_key(row: tuple[Value, ...]):
        return tuple_sort_key(tuple(row[p] for p in right_pos))

    left_sorted = sorted(left.rows, key=left_key)
    right_sorted = sorted(right.rows, key=right_key)

    extra = tuple(a for a in right.schema if a not in left.schema)
    extra_pos = right.schema.positions(extra)
    out_schema = Schema(left.schema.attributes + extra)

    out_rows = []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        ki = left_key(left_sorted[i])
        kj = right_key(right_sorted[j])
        stats.count_comparisons()
        if ki < kj:
            i += 1
        elif ki > kj:
            j += 1
        else:
            # Gather the equal-key runs on both sides and emit their product.
            i_end = i
            while i_end < len(left_sorted) and left_key(left_sorted[i_end]) == ki:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and right_key(right_sorted[j_end]) == kj:
                j_end += 1
            for li in range(i, i_end):
                lrow = left_sorted[li]
                for rj in range(j, j_end):
                    rrow = right_sorted[rj]
                    out_rows.append(lrow + tuple(rrow[p] for p in extra_pos))
                    stats.count_emitted()
            i, j = i_end, j_end

    result = Relation(name or f"({left.name}⋈{right.name})", out_schema, out_rows)
    stats.record_stage(result.name, len(result))
    return result
