"""Binary join plans: the traditional evaluator the paper's baseline uses.

A plan is a binary tree whose leaves are relation names and whose inner
nodes are natural joins. :func:`left_deep_plan` builds the textbook
left-deep chain; :func:`greedy_plan` picks, at each step, the join with the
smallest estimated output (a classic System-R-flavoured heuristic without
dynamic programming). :func:`execute_plan` evaluates a plan with the hash
join, recording every intermediate size.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import PlanError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.joins import hash_join
from repro.relational.relation import Relation


@dataclass(frozen=True)
class PlanNode:
    """A node of a binary join plan.

    Leaves carry a relation name; inner nodes carry two children.
    """

    relation: str | None = None
    left: "PlanNode | None" = None
    right: "PlanNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    def leaves(self) -> list[str]:
        if self.is_leaf:
            return [self.relation]  # type: ignore[list-item]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()

    def __str__(self) -> str:
        if self.is_leaf:
            return str(self.relation)
        return f"({self.left} ⋈ {self.right})"


def leaf(relation: str) -> PlanNode:
    return PlanNode(relation=relation)


def join_node(left: PlanNode, right: PlanNode) -> PlanNode:
    return PlanNode(left=left, right=right)


def left_deep_plan(order: Sequence[str]) -> PlanNode:
    """The left-deep chain ((R1 ⋈ R2) ⋈ R3) ⋈ ... in the given order."""
    if not order:
        raise PlanError("cannot build a plan over zero relations")
    node = leaf(order[0])
    for name in order[1:]:
        node = join_node(node, leaf(name))
    return node


def estimate_join_size(left: Relation, right: Relation) -> int:
    """Textbook independence estimate of |left ⋈ right|.

    |L|·|R| divided by the product over shared attributes of the larger
    distinct count — the standard System-R formula.
    """
    estimate = len(left) * len(right)
    for attribute in left.schema.common(right.schema):
        distinct = max(len(left.distinct_values(attribute)),
                       len(right.distinct_values(attribute)), 1)
        estimate //= distinct
    return max(estimate, 0)


def greedy_plan(relations: Mapping[str, Relation]) -> PlanNode:
    """Greedy smallest-estimated-output join ordering.

    Starts from the smallest relation and repeatedly joins in whichever
    remaining relation minimises the estimated intermediate size, preferring
    connected (attribute-sharing) joins over cartesian products.
    """
    if not relations:
        raise PlanError("cannot build a plan over zero relations")
    remaining = dict(relations)
    start = min(remaining, key=lambda name: len(remaining[name]))
    node = leaf(start)
    current = remaining.pop(start)
    while remaining:
        def score(name: str) -> tuple[int, int]:
            candidate = remaining[name]
            connected = 0 if current.schema.common(candidate.schema) else 1
            return (connected, estimate_join_size(current, candidate))

        best = min(remaining, key=score)
        node = join_node(node, leaf(best))
        current = current.natural_join(remaining.pop(best))
    return node


def dp_plan(relations: Mapping[str, Relation]) -> PlanNode:
    """Selinger-style dynamic programming over connected subsets.

    Finds the bushy plan minimising the sum of estimated intermediate
    sizes (DPsize enumeration). Exponential in the number of relations —
    fine for the handful of inputs the baseline's Q1 ever sees; the
    greedy planner remains the default for larger inputs.
    """
    if not relations:
        raise PlanError("cannot build a plan over zero relations")
    names = tuple(relations)
    # best[subset] = (cost, estimated_result, PlanNode, result_relation)
    best: dict[frozenset[str], tuple[int, int, PlanNode, Relation]] = {}
    for name in names:
        relation = relations[name]
        best[frozenset([name])] = (0, len(relation), leaf(name), relation)

    for size in range(2, len(names) + 1):
        for subset in _subsets(names, size):
            candidates = []
            subset_set = frozenset(subset)
            for left_set in _proper_nonempty_subsets(subset):
                right_set = subset_set - left_set
                if left_set not in best or right_set not in best:
                    continue
                lcost, _lsize, lplan, lrel = best[left_set]
                rcost, _rsize, rplan, rrel = best[right_set]
                estimate = estimate_join_size(lrel, rrel)
                # Prefer connected joins: a cartesian product is costed
                # with a heavy penalty rather than forbidden (queries can
                # be genuinely disconnected).
                connected = bool(lrel.schema.common(rrel.schema))
                penalty = 0 if connected else estimate * 10
                cost = lcost + rcost + estimate + penalty
                candidates.append(
                    (cost, estimate,
                     join_node(lplan, rplan), lrel.natural_join(rrel)))
            if candidates:
                best[subset_set] = min(candidates, key=lambda c: c[0])

    full = frozenset(names)
    if full not in best:
        raise PlanError("dynamic programming failed to cover all relations")
    return best[full][2]


def _subsets(names: Sequence[str], size: int):
    import itertools

    return itertools.combinations(names, size)


def _proper_nonempty_subsets(subset: Sequence[str]):
    import itertools

    out = []
    for size in range(1, len(subset)):
        for combo in itertools.combinations(subset, size):
            out.append(frozenset(combo))
    return out


def execute_plan(plan: PlanNode, relations: Mapping[str, Relation], *,
                 stats: JoinStats | None = None) -> Relation:
    """Evaluate *plan* bottom-up with hash joins, counting intermediates."""
    stats = ensure_stats(stats)

    def recurse(node: PlanNode) -> Relation:
        if node.is_leaf:
            try:
                return relations[node.relation]  # type: ignore[index]
            except KeyError:
                raise PlanError(f"plan references unknown relation "
                                f"{node.relation!r}") from None
        assert node.left is not None and node.right is not None
        return hash_join(recurse(node.left), recurse(node.right), stats=stats)

    return recurse(plan)
