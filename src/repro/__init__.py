"""repro — Worst-Case Optimal Joins on Relational and XML Data.

A complete reproduction of Yuxing Chen's SIGMOD 2018 paper: a relational
engine, an XML engine (parser, labelling schemes, twig matching), the AGM
bound machinery over combined relational+twig hypergraphs, and the XJoin
worst-case optimal multi-model join algorithm with its baseline.

All join algorithms execute through the shared dictionary-encoded engine
(:mod:`repro.engine`); :func:`repro.engine.run_query` is the planned
one-call entry point, and ``docs/architecture.md`` maps the layers.

Quickstart::

    from repro import (MultiModelQuery, Relation, TwigBinding,
                       parse_document, parse_twig, xjoin)

    orders = Relation("R", ("orderID", "userID"),
                      [(10963, "jack"), (20134, "tom")])
    invoices = parse_document("<invoices>...</invoices>")
    twig = parse_twig("orderLine(/orderID, /ISBN, /price)")
    query = MultiModelQuery([orders], [TwigBinding(twig, invoices)])
    result = xjoin(query)

See examples/ for runnable end-to-end scripts and DESIGN.md for the
system inventory.
"""

from repro.core import (
    AGMBound,
    Hypergraph,
    MultiModelQuery,
    TwigBinding,
    agm_bound,
    baseline_join,
    decompose,
    fractional_edge_cover,
    symbolic_exponent,
    vertex_packing,
    xjoin,
)
from repro.engine import EncodedInstance, plan_query, run_query
from repro.instrumentation import JoinStats
from repro.relational import (
    Database,
    Relation,
    Schema,
    generic_join,
    hash_join,
    leapfrog_triejoin,
)
from repro.xml import (
    Axis,
    TwigQuery,
    XMLDocument,
    XMLNode,
    parse_document,
    parse_twig,
    parse_xpath,
    twig_stack,
)

__version__ = "1.1.0"

__all__ = [
    "AGMBound",
    "Axis",
    "Database",
    "EncodedInstance",
    "Hypergraph",
    "JoinStats",
    "MultiModelQuery",
    "Relation",
    "Schema",
    "TwigBinding",
    "TwigQuery",
    "XMLDocument",
    "XMLNode",
    "agm_bound",
    "baseline_join",
    "decompose",
    "fractional_edge_cover",
    "generic_join",
    "hash_join",
    "leapfrog_triejoin",
    "parse_document",
    "parse_twig",
    "parse_xpath",
    "plan_query",
    "run_query",
    "symbolic_exponent",
    "twig_stack",
    "vertex_packing",
    "xjoin",
]
