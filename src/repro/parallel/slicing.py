"""Slice views: the per-morsel restriction of encoded artifacts.

Three restriction families, all **shallow** — a slice view shares the
parent's arrays/dicts and re-points only the top of the structure, so
building one costs O(log n) bisects, not a rebuild:

* :func:`sliced_instance` — an :class:`~repro.engine.encoded.
  EncodedInstance` whose level-0 tries enumerate only the codes in
  ``[lo, hi)``. Kernels run unchanged: enumeration is driven by the
  (sliced) sorted key list, while hashed probes against the shared child
  maps can only be reached through enumerated keys.
* :class:`SlicedColumnarView` — a :class:`~repro.xml.columnar.
  ColumnarDocument` whose root query-node stream is cut to the slice's
  root candidates and every other stream to the slice's document region.
  Algorithms see a *superset* of the slice's embeddings (a region can
  also contain stragglers rooted in an earlier slice); the executor's
  final root-range filter makes the partition exact.
* :func:`baseline_subqueries` — decoded **value segments** for the
  unencoded ``baseline`` foil: each morsel evaluates the query with its
  relational inputs filtered to one segment of the partition attribute's
  active domain.

``detach=True`` turns a trie slice self-contained (children restricted
to the sliced keys), for callers that want to serialize or retain one
slice's encoded segment without dragging the whole trie along. The
executor itself never ships slices: slicing happens worker-side, and
the ``pickle`` transport serializes one stripped instance per worker.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.engine.encoded import EncodedInstance, EncodedTrie, EncodedTrieNode
from repro.xml.columnar import ColumnarDocument, TagPosting

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.xml.twig import TwigNode, TwigQuery


# ---------------------------------------------------------------------------
# encoded-trie slices (relational + multi-model kernels)
# ---------------------------------------------------------------------------

def sliced_trie(trie: EncodedTrie, lo: int, hi: int, *,
                detach: bool = False) -> EncodedTrie:
    """A view of *trie* whose root keys are restricted to ``[lo, hi)``.

    The root node is replaced; below it everything is shared with the
    parent trie (or, with ``detach``, restricted to the sliced keys so
    the view pickles as a self-contained segment).
    """
    keys = trie.root.keys
    i = bisect_left(keys, lo)
    j = bisect_left(keys, hi)
    root = EncodedTrieNode()
    root.keys = keys[i:j]
    if detach:
        children = trie.root.children
        root.children = {code: children[code] for code in root.keys}
    else:
        root.children = trie.root.children
    clone = EncodedTrie.__new__(EncodedTrie)
    clone.name = trie.name
    clone.order = trie.order
    clone.root = root
    clone._typecodes = getattr(trie, "_typecodes", None)
    # Kernels drive enumeration from the key lists and never read
    # ``size``; keep the parent's value as a documented upper bound.
    clone.size = trie.size if len(root.keys) else 0
    return clone


def sliced_instance(instance: EncodedInstance, lo: int, hi: int, *,
                    detach: bool = False) -> EncodedInstance:
    """A view of *instance* restricted to top-level codes in ``[lo, hi)``.

    Only the tries binding level 0 of the global order are sliced; all
    other structure (dictionaries, participation map, twig filters,
    decode tables) is shared. Running any kernel over the view yields
    exactly the serial result rows whose level-0 code falls in the
    range.
    """
    level0 = set(instance.participation[0]) if instance.order else set()
    clone = EncodedInstance.__new__(EncodedInstance)
    clone.name = instance.name
    clone.order = instance.order
    clone.dictionaries = instance.dictionaries
    clone.tries = [
        sliced_trie(trie, lo, hi, detach=detach) if index in level0 else trie
        for index, trie in enumerate(instance.tries)]
    clone.relations = instance.relations
    clone.query = instance.query
    clone.twig_filters = instance.twig_filters
    clone.erase_structural = instance.erase_structural
    clone.participation = instance.participation
    clone._level_values = instance._level_values
    return clone


# ---------------------------------------------------------------------------
# columnar region views (twig matchers)
# ---------------------------------------------------------------------------

class SlicedColumnarView(ColumnarDocument):
    """A columnar view restricted to one root-posting slice.

    The root query node's stream keeps only candidates whose ``start``
    lies in ``[root_lo, root_hi)``; every other stream keeps entries
    with ``start`` in ``[root_lo, region_hi]`` — the document region an
    embedding rooted in the slice can reach. TJFast's path-grouped node
    lists (``nids_by_path``) are restricted to the same region.

    The view over-approximates on purpose: embeddings rooted *before*
    the slice whose subtree spans into its region may still be matched;
    the executor filters them out by the root's start label, which is
    what makes the slice partition exact (see ``docs/parallelism.md``).
    """

    __slots__ = ("root_name", "root_lo", "root_hi", "region_hi",
                 "base_streams")

    def __init__(self, base: ColumnarDocument, twig: "TwigQuery",
                 root_lo: int, root_hi: int, region_hi: int, *,
                 base_streams: "dict[str, TagPosting] | None" = None):
        # Deliberately skips ColumnarDocument.__init__: all parallel
        # arrays are shared with *base*; only the stream accessors and
        # the per-path node lists apply the restriction. ``base_streams``
        # (optional) shares predicate-filtered postings computed once
        # per job, so per-morsel views never rescan the full posting.
        for slot in ColumnarDocument.__slots__:
            setattr(self, slot, getattr(base, slot))
        self.root_name = twig.nodes()[0].name
        self.root_lo = root_lo
        self.root_hi = root_hi
        self.region_hi = region_hi
        self.base_streams = base_streams
        starts = base.starts
        self.nids_by_path = [
            nids[bisect_left(nids, root_lo, key=starts.__getitem__):
                 bisect_right(nids, region_hi, key=starts.__getitem__)]
            for nids in base.nids_by_path]

    def stream(self, query_node: "TwigNode") -> TagPosting:
        """The slice-restricted posting cursor for one twig query node."""
        posting = None
        if self.base_streams is not None:
            posting = self.base_streams.get(query_node.name)
        if posting is None:
            posting = ColumnarDocument.stream(self, query_node)
        if query_node.name == self.root_name:
            i = bisect_left(posting.starts, self.root_lo)
            j = bisect_left(posting.starts, self.root_hi)
        else:
            i = bisect_left(posting.starts, self.root_lo)
            j = bisect_right(posting.starts, self.region_hi)
        return TagPosting(posting.nids[i:j], posting.starts[i:j],
                          posting.ends[i:j], label=posting.label)


# ---------------------------------------------------------------------------
# baseline value segments (the unencoded foil)
# ---------------------------------------------------------------------------

def baseline_partition_attribute(query: "MultiModelQuery") -> str | None:
    """The attribute the baseline foil partitions on: the first query
    attribute bound by at least one relational input (None for twig-only
    queries, which run as a single morsel)."""
    for attribute in query.attributes:
        if any(attribute in relation.schema.attributes
               for relation in query.relations):
            return attribute
    return None


def baseline_subquery(query: "MultiModelQuery", attribute: str,
                      segment: "frozenset") -> "MultiModelQuery":
    """The query with every relation binding *attribute* filtered to the
    rows whose value falls in *segment* (twig inputs are untouched).

    Each result row binds exactly one value of *attribute*, so the
    per-segment results are disjoint and union to the serial answer.
    """
    from repro.core.multimodel import MultiModelQuery

    relations = []
    for relation in query.relations:
        if attribute in relation.schema.attributes:
            position = relation.schema.index(attribute)
            relations.append(relation.with_row_changes(
                removed=[row for row in relation.rows
                         if row[position] not in segment]))
        else:
            relations.append(relation)
    return MultiModelQuery(relations, query.twigs, name=query.name)
