"""The partition-parallel executor: every algorithm, across workers.

:class:`ParallelExecutor` runs any registered
:class:`~repro.engine.interface.JoinAlgorithm` over an
:class:`~repro.engine.encoded.EncodedInstance` and any registered
:class:`~repro.xml.interface.TwigAlgorithm` over a document, split into
the slice kinds of :mod:`repro.parallel.partition` and scheduled by the
work-stealing queue of :mod:`repro.parallel.morsels`:

* encoded joins (``generic_join``, ``leapfrog``, ``xjoin``) — top-level
  code ranges; slice results concatenate, ordered by slice index (=
  ascending code range), into exactly the serial row set;
* the ``baseline`` foil — decoded value segments of the first
  relational attribute;
* twig matchers — root-posting ranges, with each worker's answer
  filtered to the embeddings rooted in its own slice.

``workers <= 1`` everywhere degrades to the serial algorithm call, so
callers can thread a ``workers`` knob through unconditionally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import TransportError
from repro.instrumentation import JoinStats, ensure_stats
from repro.parallel.morsels import fork_available, run_morsels
from repro.parallel.partition import (
    DEFAULT_MORSEL_FACTOR,
    choose_morsel_count,
    code_slices,
    posting_slices,
    top_level_weights,
    value_segments,
)
from repro.parallel.slicing import baseline_partition_attribute
from repro.relational.relation import Relation
from repro.relational.schema import Schema, sort_key

if TYPE_CHECKING:
    from repro.core.multimodel import MultiModelQuery
    from repro.engine.encoded import EncodedInstance
    from repro.xml.model import XMLDocument
    from repro.xml.twig import TwigQuery


def available_transports() -> list[str]:
    """Transports usable on this platform, preferred first."""
    out = ["fork"] if fork_available() else []
    return out + ["shm", "mmap", "pickle", "serial"]


def default_transport(workers: int) -> str:
    """The transport a fresh executor picks for *workers* processes."""
    if workers <= 1:
        return "serial"
    return "fork" if fork_available() else "shm"


def _shipping_instance(instance: "EncodedInstance",
                       algorithm: str) -> "EncodedInstance":
    """A shallow clone of *instance* stripped for per-worker shipping."""
    from repro.engine.encoded import EncodedInstance

    clone = EncodedInstance.__new__(EncodedInstance)
    for slot in EncodedInstance.__slots__:
        setattr(clone, slot, getattr(instance, slot))
    clone.relations = []
    clone.dictionaries = {}
    if algorithm != "xjoin":
        clone.query = None
        clone.twig_filters = None
    return clone


class ParallelExecutor:
    """A reusable configuration for partition-parallel runs.

    ``workers`` is the pool size (0/1 = serial), ``morsel_factor`` the
    morsels cut per worker (more absorbs skew, fewer lowers overhead)
    and ``transport`` one of ``"fork"`` / ``"shm"`` / ``"mmap"`` /
    ``"pickle"`` / ``"serial"`` (default: the platform's best, see
    :func:`default_transport`).
    """

    def __init__(self, workers: int, *,
                 morsel_factor: int = DEFAULT_MORSEL_FACTOR,
                 transport: str | None = None):
        self.workers = max(0, int(workers))
        self.morsel_factor = morsel_factor
        self.transport = transport or default_transport(self.workers)

    # -- encoded joins -----------------------------------------------------

    def run_join(self, instance: "EncodedInstance",
                 algorithm: str = "generic_join", *,
                 stats: JoinStats | None = None,
                 morsels: int | None = None) -> Relation:
        """Run a registered join algorithm over *instance* in parallel.

        Result equality with the serial ``get_algorithm(name).run`` is
        exact for every registered algorithm; with ``workers <= 1`` the
        serial call *is* what runs.
        """
        from repro.engine.interface import get_algorithm

        stats = ensure_stats(stats)
        if algorithm == "baseline":
            return self._run_baseline_instance(instance, stats=stats)
        # Degenerate runs (serial executor, planner said 1 partition)
        # short-circuit before any partitioning work — in particular
        # before the O(rows) weight walk over the level-0 tries.
        if self.workers <= 1 or (morsels is not None and morsels <= 1):
            return get_algorithm(algorithm).run(instance, stats=stats)
        weights = top_level_weights(instance)
        count = morsels if morsels is not None else choose_morsel_count(
            self.workers, len(weights), morsel_factor=self.morsel_factor)
        if count <= 1 or len(weights) <= 1:
            return get_algorithm(algorithm).run(instance, stats=stats)
        transport = self.transport
        has_twigs = instance.query is not None and bool(instance.query.twigs)
        if transport in ("pickle", "shm", "mmap") and has_twigs:
            raise TransportError(
                f"the {transport!r} transport ships the encoded instance "
                "across processes and cannot carry twig-bearing instances "
                "(structure validators pin live documents); use the 'fork' "
                "transport (or workers=1)")
        slices = code_slices(instance, count, weights=weights)

        payloads = [(piece.lo, piece.hi) for piece in slices]
        arena = None
        if transport == "shm":
            # The tries freeze into one published arena; workers attach
            # zero-copy and only the descriptor tuple is ever pickled.
            from repro.parallel.shm import publish_instance

            arena = publish_instance(instance, algorithm)
            shared = ("join_shm", arena.name, algorithm)
        elif transport == "mmap":
            # Same frozen-trie publication, file-backed: workers mmap
            # the arena read-only by path.
            from repro.parallel.mmapfile import publish_instance

            arena = publish_instance(instance, algorithm)
            shared = ("join_mmap", arena.path, algorithm)
        elif transport == "pickle":
            # The job state is serialized once per worker (not per
            # morsel); strip what workers never read — source relations,
            # the value->code maps (decode runs on ``_level_values``)
            # and, for the relational kernels, the query object itself.
            shared = ("join", _shipping_instance(instance, algorithm),
                      algorithm)
        else:
            shared = ("join", instance, algorithm)

        stats.start_timer()
        try:
            outcomes = run_morsels("join", payloads, workers=self.workers,
                                   shared=shared, transport=transport)
        finally:
            if arena is not None:
                arena.close()
                arena.unlink()
        rows: list[tuple] = []
        for piece, (counters, slice_rows) in zip(slices, outcomes):
            stats.absorb(counters,
                         stage_label=f"morsel [{piece.lo},{piece.hi})")
            rows.extend(slice_rows)
        stats.stop_timer()
        if algorithm == "xjoin" and instance.query is not None:
            # xjoin already projects (and surrogate-erases) per slice.
            schema = Schema(instance.query.attributes)
            name = instance.query.name
        else:
            # The relational kernels emit rows over the full order.
            schema = Schema(instance.order)
            name = instance.name
        return Relation(name, schema, rows)

    # -- twig matching -----------------------------------------------------

    def run_twig(self, document: "XMLDocument", twig: "TwigQuery",
                 algorithm: str | None = None, *,
                 name: str | None = None,
                 stats: JoinStats | None = None) -> Relation:
        """Run a registered twig matcher over *document* in parallel.

        Partitioned by the root query node's posting ranges; each
        morsel's answer is the value projection of the embeddings rooted
        in its slice, so the union is exactly the serial ``run`` answer.
        """
        from repro.xml.columnar import columnar
        from repro.xml.interface import get_twig_algorithm

        stats = ensure_stats(stats)
        if algorithm is None:
            from repro.engine.planner import choose_twig_algorithm

            algorithm = choose_twig_algorithm(document, twig)
        matcher = get_twig_algorithm(algorithm)
        base = columnar(document)
        if algorithm == "accel":
            # The accelerator compiles the twig to a purely relational
            # instance, so it rides the *join* partitioner instead of
            # the root-posting slicing below: the instance's top-level
            # attribute is the twig root and code order == start-label
            # order, so the join slicer's top-level code ranges are
            # exactly the root tag's pre-ranges. The compiled instance
            # carries no query or documents, which is what lets every
            # join transport — fork, pickle, shm, mmap — ship it.
            return self._run_twig_accel(base, twig, name=name, stats=stats)
        posting = base.stream(twig.nodes()[0])
        count = choose_morsel_count(self.workers, len(posting.nids),
                                    morsel_factor=self.morsel_factor)
        if self.workers <= 1 or count <= 1:
            return matcher.run(document, twig, name=name, stats=stats)
        slices = posting_slices(posting, count)
        # Documents are never *pickled* across the pool: twig morsels
        # ride fork (copy-on-write), shm (the columnar buffers publish
        # once and workers attach zero-copy), mmap (the buffers lay in
        # a file arena that workers map read-only by path — this is how
        # larger-than-RAM streamed corpora parallelize) or the
        # in-process loop. A pickle-configured executor routes through
        # shm — same spawn start method, no per-worker document
        # serialization — so twig parallelism works on every platform.
        # The navigational ``naive`` oracle walks real node objects
        # under fork; attached, it walks the mmap view's memoised node
        # stubs — only the shm attachment (a bare cache-key handle)
        # cannot serve it.
        if self.transport == "serial":
            transport = "serial"
        elif self.transport == "mmap":
            transport = "mmap"
        elif self.transport == "fork" and fork_available():
            transport = "fork"
        elif algorithm == "naive":
            if not fork_available():
                raise TransportError(
                    "the 'naive' twig matcher walks live XMLNode objects "
                    "and cannot attach a shared-memory view; it needs the "
                    "'fork' start method — use transport='mmap', "
                    "'serial', workers=1 or a columnar matcher on this "
                    "platform")
            transport = "fork"
        else:
            transport = "shm"

        payloads = [(piece.lo, piece.hi, piece.region_hi)
                    for piece in slices]
        arena = None
        if transport == "shm":
            from repro.parallel.shm import publish_document

            arena = publish_document(base)
            shared: tuple = ("twig_shm", arena.name, twig, algorithm)
        elif transport == "mmap":
            from repro.buffers.mmapfile import FileArena
            from repro.parallel.mmapfile import publish_document as publish_file

            source = getattr(document, "arena", None)
            if isinstance(source, FileArena):
                # The corpus is already a file arena (streamed build or
                # prior attachment): re-publish by path, zero copying.
                # The caller owns that arena — nothing to unlink here.
                shared = ("twig_mmap", source.path, twig, algorithm)
            else:
                arena = publish_file(base)
                shared = ("twig_mmap", arena.path, twig, algorithm)
        else:
            shared = ("twig", document, twig, algorithm, base)

        stats.start_timer()
        try:
            outcomes = run_morsels("twig", payloads, workers=self.workers,
                                   shared=shared, transport=transport)
        finally:
            if arena is not None:
                arena.close()
                arena.unlink()
        rows: list[tuple] = []
        for piece, (counters, slice_rows) in zip(slices, outcomes):
            stats.absorb(counters,
                         stage_label=f"roots [{piece.lo},{piece.hi})")
            rows.extend(slice_rows)
        stats.stop_timer()
        return Relation(name or twig.name, Schema(twig.attributes), rows)

    def _run_twig_accel(self, view, twig: "TwigQuery", *,
                        name: str | None,
                        stats: JoinStats) -> Relation:
        """Partition-parallel accelerator run: lower once, join in morsels.

        The twig is lowered and encoded once in the parent (the same
        build the serial path performs), handed to :meth:`run_join` —
        which slices the root attribute's code range across the pool —
        and the emitted pre-label rows are decoded back to the twig's
        value tuples here. ``workers <= 1`` degrades inside
        :meth:`run_join` to the serial kernel call.
        """
        from repro.xml.accel import ACCEL_KERNEL, compile_twig, project_starts

        instance = compile_twig(view, twig, name=name or twig.name,
                                stats=stats)
        if instance.has_empty_input():
            return Relation(name or twig.name, Schema(twig.attributes), [])
        result = self.run_join(instance, ACCEL_KERNEL, stats=stats)
        return project_starts(view, twig, result.rows, name=name)

    # -- whole queries -----------------------------------------------------

    def run_query(self, query: "MultiModelQuery", *,
                  order=None, algorithm: str | None = None,
                  stats: JoinStats | None = None) -> Relation:
        """Plan and evaluate *query* with partition-parallel execution.

        The planner chooses the partition axis (the resolved order's
        first attribute) and morsel count from cached statistics; the
        encoded instance is built once and shared with the pool.
        """
        from repro.engine.encoded import EncodedInstance
        from repro.engine.planner import plan_query

        stats = ensure_stats(stats)
        plan = plan_query(query, order=order, algorithm=algorithm,
                          workers=self.workers,
                          morsel_factor=self.morsel_factor)
        if plan.algorithm == "baseline":
            return self._run_baseline(query, stats=stats)
        with stats.phase("encode"):
            instance = EncodedInstance.from_query(query, plan.order)
        result = self.run_join(instance, plan.algorithm, stats=stats,
                               morsels=plan.partitions)
        if result.schema.attributes != query.attributes:
            result = result.project(query.attributes, name=query.name)
        return result

    # -- the baseline foil -------------------------------------------------

    def _run_baseline_instance(self, instance: "EncodedInstance", *,
                               stats: JoinStats) -> Relation:
        """Adapter: baseline over an instance (mirrors the serial one)."""
        from repro.core.multimodel import MultiModelQuery

        query = instance.query
        if query is None:
            query = MultiModelQuery(instance.relations, name=instance.name)
        return self._run_baseline(query, stats=stats)

    def _run_baseline(self, query: "MultiModelQuery", *,
                      stats: JoinStats) -> Relation:
        """The unencoded foil, partitioned on decoded value segments."""
        from repro.core.baseline import baseline_join

        attribute = baseline_partition_attribute(query)
        domain: set = set()
        if attribute is not None:
            for relation in query.relations:
                if attribute in relation.schema.attributes:
                    domain.update(relation.distinct_values(attribute))
        count = choose_morsel_count(self.workers, len(domain),
                                    morsel_factor=self.morsel_factor)
        if self.workers <= 1 or attribute is None or count <= 1:
            return baseline_join(query, stats=stats)
        segments = value_segments(sorted(domain, key=sort_key), count)
        if self.transport == "serial":
            transport = "serial"
        elif fork_available():
            transport = "fork"
        elif not query.twigs:
            transport = "pickle"  # the query ships once per worker
        else:
            raise TransportError(
                "the parallel baseline needs the 'fork' start method for "
                "twig-bearing queries (it re-walks the source documents, "
                "which are never shipped); use transport='serial' or "
                "workers=1 on this platform")

        stats.start_timer()
        outcomes = run_morsels(
            "baseline", [(frozenset(segment),) for segment in segments],
            workers=self.workers,
            shared=("baseline", query, attribute),
            transport=transport)
        rows: list[tuple] = []
        for index, (counters, slice_rows) in enumerate(outcomes):
            stats.absorb(counters, stage_label=f"segment {index}")
            rows.extend(slice_rows)
        stats.stop_timer()
        return Relation(query.name, Schema(query.attributes), rows)


def parallel_run_query(query: "MultiModelQuery", *, workers: int,
                       order=None, algorithm: str | None = None,
                       morsel_factor: int = DEFAULT_MORSEL_FACTOR,
                       transport: str | None = None,
                       stats: JoinStats | None = None) -> Relation:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(workers, morsel_factor=morsel_factor,
                                transport=transport)
    return executor.run_query(query, order=order, algorithm=algorithm,
                              stats=stats)
