"""Shared scenarios for the parallel benchmark.

Both front-ends — ``python -m repro bench --suite parallel`` and
``benchmarks/bench_parallel.py`` — time the same code through this
module, so the CLI table, the pytest gate and CI can never drift apart
on what they measure. Each scenario races the serial path against the
partition-parallel executor over identical inputs and checks
byte-parity of the answers. The triangle scenario prebuilds its encoded
instance (pure kernel time on both sides); the XMark scenario times the
whole ``run_query`` on both sides, so planning + encode are included
equally (sub-percent of its multi-second join).

Speedup targets only bind where they physically can: a pool of *w*
workers cannot beat serial on fewer than *w* cores, so
:attr:`ScenarioResult.ok` gates the target on
:func:`available_cores` — parity is asserted unconditionally.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.engine.planner import run_query
from repro.parallel.executor import ParallelExecutor
from repro.relational.relation import Relation
from repro.xml.interface import get_twig_algorithm
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

#: The acceptance target: parallel execution at 4 workers must beat the
#: serial run by this factor on both scenarios (given >= 4 cores).
SPEEDUP_TARGET = 2.0


def available_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelTiming:
    """One workload's serial vs parallel wall time (ms)."""

    label: str
    serial_ms: float
    parallel_ms: float
    #: Whether the speedup target applies (False = reported only, e.g.
    #: sub-millisecond twig matches that can never amortize a pool).
    gated: bool = True

    @property
    def speedup(self) -> float:
        """Serial wall time over parallel wall time."""
        return self.serial_ms / max(self.parallel_ms, 1e-9)

    @property
    def meets_target(self) -> bool:
        """Gated timings must reach :data:`SPEEDUP_TARGET`."""
        return not self.gated or self.speedup >= SPEEDUP_TARGET


@dataclass(frozen=True)
class ScenarioResult:
    """All timings of one scenario plus the serial/parallel agreement."""

    title: str
    workers: int
    timings: tuple[ParallelTiming, ...]
    consistent: bool

    @property
    def cores_sufficient(self) -> bool:
        """Can this machine physically host the worker pool?"""
        return available_cores() >= self.workers

    @property
    def ok(self) -> bool:
        """Parity always; the speedup target only with enough cores."""
        if not self.consistent:
            return False
        if not self.cores_sufficient:
            return True
        return all(timing.meets_target for timing in self.timings)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best wall ms, last result) over *repeats* runs of *fn*."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best, result


def dense_triangle(n: int, *, edges_per_node: int = 16,
                   seed: int = 42) -> list[Relation]:
    """A uniform random triangle instance (R ⋈ S ⋈ T on a digraph).

    Unlike :func:`~repro.data.synthetic.agm_tight_triangle` — whose
    star shape funnels half the tuples under one top-level code, the
    worst case for key-granular partitioning — the uniform instance
    spreads work across the whole code domain, which is what a speedup
    measurement should isolate. The skewed instance is covered by the
    partition-boundary tests instead.
    """
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n))
             for _ in range(edges_per_node * n)}
    return [Relation("R", ("a", "b"), edges),
            Relation("S", ("b", "c"), edges),
            Relation("T", ("a", "c"), edges)]


def triangle_scenario(n: int = 8000, *, workers: int = 4,
                      repeats: int = 2) -> ScenarioResult:
    """Race serial vs parallel kernels on the dense triangle join.

    One shared encoded instance; both generic join and leapfrog run
    over it, partitioned on attribute ``a``'s code range.
    """
    relations = dense_triangle(n)
    instance = EncodedInstance.from_relations(relations, ("a", "b", "c"))
    executor = ParallelExecutor(workers)
    timings = []
    consistent = True
    for algorithm in ("generic_join", "leapfrog"):
        serial_ms, serial = _best_of(
            lambda a=algorithm: get_algorithm(a).run(instance), repeats)
        parallel_ms, parallel = _best_of(
            lambda a=algorithm: executor.run_join(instance, a), repeats)
        consistent = consistent and parallel == serial
        timings.append(ParallelTiming(algorithm, serial_ms, parallel_ms))
    return ScenarioResult(
        title=f"dense triangle (n={n}, {len(relations[0])} edges, "
              f"{workers} workers)",
        workers=workers, timings=tuple(timings), consistent=consistent)


def xmark_scenario(factor: float = 4.0, *, workers: int = 4,
                   fanout: int = 40,
                   repeats: int = 2) -> ScenarioResult:
    """Race serial vs parallel on an XMark multi-model join + twig match.

    The gated workload is the paper's own: XJoin over an XMark document
    joined with a relation fanning each interest category out to
    ``fanout`` extra values — per-tuple structure validation dominates
    and partitions on the relational attribute's code range. The pure
    twig-matcher race (root-posting partitioning) is reported alongside
    but ungated: single-document matching is millisecond-scale, below
    any process pool's break-even point.
    """
    document = xmark_document(factor, seed=7)
    twig = parse_twig("p=person(/nm=name, //i=interest)")
    categories = sorted({node.value for node in document.nodes("interest")})
    relation = Relation("R", ("x", "i"),
                        [(x, category) for x in range(fanout)
                         for category in categories])
    query = MultiModelQuery([relation], [TwigBinding(twig, document)],
                            name="XQ")
    # The partition axis must lead the expansion, so pin the order: the
    # relational fan-out attribute has the widest domain.
    order = ("x", "i", "p", "nm")
    executor = ParallelExecutor(workers)

    serial_ms, serial = _best_of(
        lambda: run_query(query, order=order), repeats)
    parallel_ms, parallel = _best_of(
        lambda: executor.run_query(query, order=order), repeats)
    consistent = parallel == serial
    timings = [ParallelTiming("xjoin multi-model", serial_ms, parallel_ms)]

    matcher = get_twig_algorithm("twigstack")
    twig_serial_ms, twig_result = _best_of(
        lambda: matcher.run(document, twig), max(repeats, 3))
    twig_parallel_ms, twig_parallel = _best_of(
        lambda: executor.run_twig(document, twig, "twigstack"),
        max(repeats, 3))
    consistent = consistent and twig_parallel == twig_result
    timings.append(ParallelTiming("twigstack (per-document)",
                                  twig_serial_ms, twig_parallel_ms,
                                  gated=False))
    return ScenarioResult(
        title=f"XMark factor {factor:g} ({document.size()} nodes, "
              f"fanout {fanout}, {workers} workers)",
        workers=workers, timings=tuple(timings), consistent=consistent)
