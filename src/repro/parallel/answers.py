"""Partitioned maintained answers: delta routing for query sessions.

A :class:`PartitionedAnswer` holds a materialized query answer as *P*
disjoint row buckets, owned by a stable hash of the row's **partition
attribute** (the query's first attribute — the same axis the parallel
executor slices). :class:`~repro.updates.session.QuerySession` routes
each delta to the buckets that can own affected rows:

* a delete of input tuple *t* from an input that **binds** the partition
  attribute touches exactly one bucket — the owner of *t*'s value; an
  input that does not bind it broadcasts to all buckets;
* an insert contributes join rows that each carry their own partition
  value, so every new row is appended to its owner.

Ownership uses Python's ``hash``: the one function guaranteed
consistent with the value equality the row sets themselves use (e.g.
``1 == 1.0 == True`` share a hash, so equal-but-differently-typed
partition values always route to the same bucket). Buckets are
process-local state, so hash randomization across runs is irrelevant —
routing only ever has to agree with itself and with ``set`` membership
within one session.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any


def owner_of(value: Any, buckets: int) -> int:
    """The bucket index owning one partition-attribute value.

    Consistent with ``==`` (hash-based), which
    :meth:`PartitionedAnswer.discard_restricting` relies on: a dead
    tuple's value must name the same bucket as the equal value stored
    in the result rows, whatever their concrete types.
    """
    if buckets <= 1:
        return 0
    return hash(value) % buckets


class PartitionedAnswer:
    """A set of result rows, bucketed by the first attribute's value."""

    __slots__ = ("buckets", "_parts")

    def __init__(self, rows: Iterable[tuple] = (), *, partitions: int = 1):
        self._parts = max(1, int(partitions))
        self.buckets: list[set[tuple]] = [set()
                                          for _ in range(self._parts)]
        for row in rows:
            self.add(row)

    @property
    def partitions(self) -> int:
        """The number of buckets rows are routed across."""
        return self._parts

    def owner(self, value: Any) -> int:
        """The bucket index owning rows whose first attribute is *value*."""
        return owner_of(value, self._parts)

    def add(self, row: tuple) -> None:
        """Insert one result row into its owner bucket."""
        bucket = self.buckets[self.owner(row[0]) if row else 0]
        bucket.add(row)

    def update(self, rows: Iterable[tuple]) -> None:
        """Insert many result rows, each routed to its owner."""
        for row in rows:
            self.add(row)

    def discard_restricting(self, positions: Sequence[int],
                            dead: "set[tuple]", *,
                            owner_values: "Iterable[Any] | None" = None
                            ) -> None:
        """Drop rows whose projection onto *positions* is in *dead*.

        With *owner_values* (the dead tuples' partition-attribute
        values, known when the updated input binds the partition
        attribute) only the owning buckets are scanned — the routed
        fast path; without it every bucket is scanned.
        """
        if owner_values is None:
            indexes: Iterable[int] = range(self._parts)
        else:
            indexes = {self.owner(value) for value in owner_values}
        for index in indexes:
            bucket = self.buckets[index]
            doomed = [row for row in bucket
                      if tuple(row[p] for p in positions) in dead]
            bucket.difference_update(doomed)

    def rows(self) -> Iterator[tuple]:
        """All rows, bucket by bucket (ascending bucket index)."""
        for bucket in self.buckets:
            yield from bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple):
            return False
        return row in self.buckets[self.owner(row[0]) if row else 0]

    def __repr__(self) -> str:
        sizes = [len(bucket) for bucket in self.buckets]
        return f"PartitionedAnswer({sum(sizes)} rows over {sizes})"
