"""The work-stealing morsel queue: self-scheduling over a process pool.

Morsel-driven scheduling (Leis et al.'s morsel model adapted to
processes): the partitioner cuts more morsels than there are workers,
all morsels go onto one shared queue, and each worker pulls its next
morsel the moment it finishes the previous one. An idle worker
therefore "steals" whatever remains — a skewed morsel delays only the
worker that drew it, while the rest of the pool drains the tail. The
parent reassembles results **by morsel index**, so concatenation order
is independent of completion order.

:func:`run_morsels` is the one entry point; ``workers <= 1`` (or a
single morsel) degrades to an in-process loop over the same code path,
which is also what keeps the subsystem fully testable on one core.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from collections.abc import Sequence

from repro.errors import EngineError
from repro.parallel import worker as worker_module
from repro.parallel.worker import (
    MORSEL_RUNNERS,
    release_shared,
    set_shared,
    worker_loop,
)


def fork_available() -> bool:
    """Is the copy-on-write ``fork`` start method usable here?"""
    return "fork" in multiprocessing.get_all_start_methods()


def run_morsels(kind: str, payloads: Sequence[tuple], *,
                workers: int,
                shared: tuple | None = None,
                transport: str = "fork"
                ) -> list[tuple[dict, list]]:
    """Execute *payloads* (one morsel each) and return results in order.

    ``shared`` is the job state workers receive at startup — by
    copy-on-write inheritance under ``"fork"``, serialized once per
    worker under ``"pickle"``, attached zero-copy from a published
    shared-memory arena under ``"shm"`` or a file-backed mmap arena
    under ``"mmap"`` (the descriptor tuple is all that ships),
    installed in-process under ``"serial"`` (see
    :mod:`repro.parallel.worker`). The returned list is indexed like
    *payloads* regardless of which worker finished which morsel first.
    """
    if kind not in MORSEL_RUNNERS:
        raise EngineError(f"unknown morsel kind {kind!r}; "
                          f"choose from {sorted(MORSEL_RUNNERS)!r}")
    if not payloads:
        return []
    pool_size = min(workers, len(payloads))
    if transport == "serial" or pool_size <= 1:
        return _run_inline(kind, payloads, shared)
    if transport not in ("fork", "pickle", "shm", "mmap"):
        raise EngineError(f"unknown transport {transport!r}; choose from "
                          "['fork', 'mmap', 'pickle', 'shm', 'serial']")
    if transport == "fork" and not fork_available():
        raise EngineError(
            "the 'fork' transport is unavailable on this platform; use "
            "transport='shm' or 'serial'")

    if transport in ("pickle", "shm", "mmap"):
        # Spawn even where fork exists: these transports' whole point is
        # explicitly shipped job state (a serialized instance, or a
        # shared-memory / file-arena descriptor workers attach), and
        # riding fork here would let unpicklable additions to the
        # shipped artifacts pass every Linux test and first break on
        # spawn-only platforms.
        context = multiprocessing.get_context("spawn")
    else:
        context = multiprocessing.get_context("fork")
    # Queue (not SimpleQueue): its feeder thread keeps parent-side puts
    # from blocking on the pipe buffer, and get() takes a timeout so a
    # dead worker is detected instead of deadlocking the parent.
    tasks = context.Queue()
    results = context.Queue()

    processes = []
    try:
        for _ in range(pool_size):
            # Job state rides the Process args: inherited (not
            # serialized) under a fork start method, pickled exactly
            # once per worker under spawn.
            process = context.Process(target=worker_loop,
                                      args=(kind, tasks, results, shared),
                                      daemon=True)
            process.start()
            processes.append(process)
        for index, payload in enumerate(payloads):
            tasks.put((index, payload))
        for _ in range(pool_size):
            tasks.put(None)  # one stop sentinel per worker
        collected: dict[int, tuple[dict, list]] = {}
        while len(collected) < len(payloads):
            try:
                index, counters, rows = results.get(timeout=1.0)
            except queue_module.Empty:
                if not any(process.is_alive() for process in processes):
                    raise EngineError(
                        "parallel workers died without reporting "
                        f"{len(payloads) - len(collected)} morsel(s); "
                        "see stderr for worker tracebacks") from None
                continue
            if counters is None:
                raise EngineError(
                    f"parallel morsel {index} failed in a worker:\n{rows}")
            collected[index] = (counters, rows)
    finally:
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        # cancel_join_thread: never let interpreter shutdown block on a
        # feeder thread flushing into a pipe no worker drains anymore.
        tasks.cancel_join_thread()
        results.cancel_join_thread()
        tasks.close()
        results.close()
    return [collected[index] for index in range(len(payloads))]


def _run_inline(kind: str, payloads: Sequence[tuple],
                shared: tuple | None) -> list[tuple[dict, list]]:
    """The serial fallback: same runners, same contract, no processes.

    A ``*_shm`` / ``*_mmap`` descriptor materializes in-process (the
    attachment maps the parent's own segment or file) and its views are
    released before the previous job state is restored.
    """
    runner = MORSEL_RUNNERS[kind]
    previous = worker_module._SHARED
    set_shared(shared)
    try:
        return [runner(payload) for payload in payloads]
    finally:
        release_shared(worker_module._SHARED)
        set_shared(previous)
