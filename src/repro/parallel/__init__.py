"""Partition-parallel execution: morsel-driven workers over slices.

The parallel subsystem runs every registered
:class:`~repro.engine.interface.JoinAlgorithm` and
:class:`~repro.xml.interface.TwigAlgorithm` across worker processes by
splitting the work into independent **partitions**:

* relational (and multi-model) joins are sliced on the top-level
  attribute's code range in each input's
  :class:`~repro.engine.encoded.EncodedTrie` — every slice is a complete
  sub-join over a disjoint code interval, so the results concatenate
  (order-preserved by ascending slice index) into exactly the serial
  answer;
* twig matching is sliced by document and by the root query node's
  posting ranges in the :class:`~repro.xml.columnar.ColumnarDocument` —
  every slice owns the embeddings rooted at its posting interval;
* the traditional ``baseline`` foil, which evaluates unencoded source
  inputs, is sliced on decoded *value* segments of its first relational
  attribute.

Slices travel to a ``multiprocessing`` pool as morsels on a shared
work-stealing queue (:mod:`repro.parallel.morsels`): idle workers pull
the next morsel the moment they finish one, so a skewed partition delays
only the worker holding it. Under the default ``fork`` transport the
encoded artifacts are shared copy-on-write; the portable ``pickle``
transport spawns fresh workers and serializes a stripped instance once
per worker instead.

See ``docs/parallelism.md`` for the partitioning model, the correctness
argument and tuning guidance.
"""

from typing import Any

#: Public name -> defining submodule. Resolution is lazy (PEP 562):
#: importing ``repro.parallel.answers`` (as the serial update layer
#: does for :class:`PartitionedAnswer`) must not drag the executor and
#: its multiprocessing machinery into the process — the parallel layer
#: sits on top of the stack, never underneath a serial import.
_EXPORTS = {
    "PartitionedAnswer": "answers",
    "ParallelExecutor": "executor",
    "available_transports": "executor",
    "default_transport": "executor",
    "parallel_run_query": "executor",
    "CodeSlice": "partition",
    "PostingSlice": "partition",
    "choose_morsel_count": "partition",
    "code_slices": "partition",
    "posting_slices": "partition",
    "top_level_weights": "partition",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    """Resolve a public name from its submodule on first access."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value
