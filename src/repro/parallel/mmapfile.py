"""Zero-copy job publication over file-backed mmap arenas.

The ``mmap`` transport is the disk-backed sibling of ``shm``: the
parent lays the job's typed buffers into one
:class:`~repro.buffers.mmapfile.FileArena` (same layout, same
``(buffers, meta)`` publication shape from :mod:`repro.parallel.shm`)
and ships workers only a ``(kind, path, ...)`` descriptor; each worker
opens a **read-only** ``mmap`` over the same file and casts
``memoryview`` windows. Beyond spawn-safety this buys what ``/dev/shm``
cannot: the corpus never has to fit in memory — pages fault in through
the page cache as queries touch them, so a streamed-build
:class:`FileArena` larger than RAM serves partition-parallel twig
matching directly (see :mod:`repro.xml.streaming`).

A document job whose arena was built by the streaming path is
published **by path** with zero copying (the file already is the
publication); in-memory views are flattened through
:func:`~repro.parallel.shm.document_buffers` first. Lifecycle mirrors
shm: the executor owns close + unlink of arenas it published (it never
unlinks a caller-owned streamed arena); workers only close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.buffers.mmapfile import FileArena
from repro.parallel.shm import (
    document_buffers,
    instance_buffers,
    instance_from_arena,
)

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedInstance
    from repro.xml.columnar import ColumnarDocument


def publish_document(view: "ColumnarDocument",
                     path: str | None = None) -> FileArena:
    """Publish a columnar view into a file arena; returns the owner."""
    buffers, meta = document_buffers(view)
    return FileArena.publish(buffers, meta, path=path)


def attach_document(path: str):
    """Attach a published document file; returns (arena, handle, view).

    Accepts arenas published here *and* arenas written directly by the
    streaming builder (typed value columns instead of meta values) —
    :func:`~repro.xml.arenaview.view_from_arena` handles both. The
    handle is an :class:`~repro.xml.arenaview.ArenaDocument` (full
    navigational surface, so even the ``naive`` oracle runs attached);
    the view installs in the columnar cache under it. The caller owns
    closing the arena when the job ends.
    """
    from repro.xml.arenaview import attach_arena_document

    arena = FileArena.attach(path)
    handle, view = attach_arena_document(arena)
    return arena, handle, view


def publish_instance(instance: "EncodedInstance", algorithm: str,
                     path: str | None = None) -> FileArena:
    """Publish an encoded instance's frozen tries into a file arena."""
    buffers, meta = instance_buffers(instance, algorithm)
    return FileArena.publish(buffers, meta, path=path)


def attach_instance(path: str) -> "tuple[FileArena, EncodedInstance]":
    """Attach a published instance file; returns (arena, shell)."""
    arena = FileArena.attach(path)
    return arena, instance_from_arena(arena)
