"""Zero-copy job publication over shared memory.

The ``shm`` transport is the spawn-safe counterpart of ``fork``: the
parent lays the job's typed buffers into one
:class:`~repro.buffers.shm.SharedArena` segment **once**, ships workers
only a tiny ``(kind, arena_name, ...)`` descriptor, and each worker
attaches ``memoryview`` windows over the same physical pages. Nothing
heavy is pickled per worker — the decode tables and vocabularies ride
the arena's single pickled meta block — which is what unlocks parallel
twig matching on platforms without ``fork``.

Two job families publish here:

* **documents** — :func:`publish_document` flattens a
  :class:`~repro.xml.columnar.ColumnarDocument` (node columns verbatim;
  the per-tag and per-path posting lists as concatenated data + offset
  buffers, classic CSR). :func:`attach_document` rebuilds a read-only
  view via :func:`repro.xml.arenaview.view_from_arena` — zero-copy
  column casts, memoised node stubs and a bisect-backed nid index
  (real :class:`~repro.xml.model.XMLNode` objects never cross
  processes) — and installs it in the columnar cache under a fresh
  :class:`DocumentHandle`, so every registered twig matcher runs
  unchanged. Dewey labels are not shipped — no matcher reads them; the
  update layer owns the mutable original. The file-backed ``mmap``
  transport (:mod:`repro.parallel.mmapfile`) publishes the same
  (buffers, meta) shape through :func:`document_buffers`.
* **encoded instances** — :func:`publish_instance` freezes each
  :class:`~repro.engine.encoded.EncodedTrie` into CSR level/offset
  buffers (:func:`~repro.buffers.frozen.freeze_trie`);
  :func:`attach_instance` rebuilds trie shells rooted in
  :class:`~repro.buffers.frozen.FrozenTrieNode` adapters, which every
  registered join kernel and the executor's slicing consume as-is.

Lifecycle: the publisher (the executor) owns the segment and closes +
unlinks it when the job's morsels drain; attachers only close. See
:mod:`repro.buffers.shm` for the resource-tracker discipline and the
``repro-buf`` leak-check prefix.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.buffers.frozen import FrozenTrie, freeze_trie
from repro.buffers.layout import typecode_for
from repro.buffers.shm import SharedArena

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedInstance
    from repro.xml.columnar import ColumnarDocument


def _as_array(buf: Sequence[int]) -> array:
    """*buf* as an ``array`` (publication needs the buffer protocol).

    Typed buffers pass through; lists (e.g. under the parity suite's
    list backend) pack into the narrowest fitting typecode here, outside
    the :func:`~repro.buffers.layout.pack` switch.
    """
    if isinstance(buf, array):
        return buf
    if isinstance(buf, memoryview):
        out = array(buf.format)
        out.extend(buf)
        return out
    values = list(buf)
    hi = max(values, default=0)
    lo = min(min(values, default=0), 0)
    return array(typecode_for(hi, lo), values)


# ---------------------------------------------------------------------------
# documents
# ---------------------------------------------------------------------------

class DocumentHandle:
    """A worker-side stand-in for the publisher's ``XMLDocument``.

    The matchers only ever use the document as a cache key for
    :func:`~repro.xml.columnar.columnar`; the handle provides exactly
    that — a weakref-able identity with a ``version`` — so the attached
    view installs into the regular columnar cache and every algorithm
    resolves it transparently.
    """

    __slots__ = ("version", "__weakref__")

    def __init__(self) -> None:
        self.version = 0

    def __repr__(self) -> str:
        return "DocumentHandle(shared-memory attachment)"


def document_buffers(view: "ColumnarDocument"
                     ) -> "tuple[dict[str, array], dict]":
    """A columnar view flattened to (buffers, meta) for publication.

    The shared publication shape of the ``shm`` and ``mmap``
    transports: node columns verbatim, per-tag and per-path postings as
    concatenated CSR data + offset buffers, vocabularies and values in
    the pickled meta block.
    """
    buffers: dict[str, array] = {
        "starts": _as_array(view.starts),
        "ends": _as_array(view.ends),
        "levels": _as_array(view.levels),
        "parents": _as_array(view.parents),
        "tag_ids": _as_array(view.tag_ids),
        "path_ids": _as_array(view.path_ids),
    }
    tag_offsets = [0]
    tag_nids: list[int] = []
    tag_starts: list[int] = []
    tag_ends: list[int] = []
    for tid in range(len(view.tags)):
        tag_nids.extend(view.tag_nids[tid])
        tag_starts.extend(view.tag_starts[tid])
        tag_ends.extend(view.tag_ends[tid])
        tag_offsets.append(len(tag_nids))
    buffers["tag_nids"] = _as_array(tag_nids)
    buffers["tag_starts"] = _as_array(tag_starts)
    buffers["tag_ends"] = _as_array(tag_ends)
    buffers["tag_offsets"] = _as_array(tag_offsets)
    path_offsets = [0]
    path_nids: list[int] = []
    for nids in view.nids_by_path:
        path_nids.extend(nids)
        path_offsets.append(len(path_nids))
    buffers["path_nids"] = _as_array(path_nids)
    buffers["path_offsets"] = _as_array(path_offsets)
    meta = {
        "kind": "document",
        "size": view.size,
        "tags": list(view.tags),
        "tag_index": dict(view.tag_index),
        "paths": list(view.paths),
        "values": list(view.values),
        "pids_by_last_tag": {tid: list(pids) for tid, pids
                             in view.pids_by_last_tag.items()},
    }
    return buffers, meta


def publish_document(view: "ColumnarDocument") -> SharedArena:
    """Publish a columnar view's buffers; returns the owning arena."""
    buffers, meta = document_buffers(view)
    return SharedArena.publish(buffers, meta)


def attach_document(name: str
                    ) -> "tuple[SharedArena, DocumentHandle, ColumnarDocument]":
    """Attach a published document; returns (arena, handle, view).

    The view (rebuilt by :func:`repro.xml.arenaview.view_from_arena`:
    zero-copy casts plus lazy node/index adapters) is installed in the
    columnar cache under the returned handle, so matchers called with
    the handle resolve it like any document. The caller owns closing
    the arena when the job ends.
    """
    from repro.xml.arenaview import view_from_arena
    from repro.xml.columnar import install_columnar

    arena = SharedArena.attach(name)
    view = view_from_arena(arena)
    handle = DocumentHandle()
    install_columnar(handle, view)
    return arena, handle, view


# ---------------------------------------------------------------------------
# encoded instances
# ---------------------------------------------------------------------------

def instance_buffers(instance: "EncodedInstance", algorithm: str
                     ) -> "tuple[dict[str, array], dict]":
    """An encoded instance frozen to (buffers, meta) for publication.

    Each trie freezes to CSR level/offset buffers
    (``t{i}.l{level}`` / ``t{i}.o{level}``); the meta block carries the
    decode tables and participation map once, and for ``xjoin`` the
    query and twig-filter objects (callers guarantee the instance is
    twig-free — validators pin live documents and never serialize).
    Shared by the ``shm`` and ``mmap`` transports.
    """
    buffers: dict[str, array] = {}
    descriptors: list[dict[str, Any]] = []
    for index, trie in enumerate(instance.tries):
        layout = freeze_trie(trie)
        for level, keys in enumerate(layout.levels):
            buffers[f"t{index}.l{level}"] = _as_array(keys)
        for level, offsets in enumerate(layout.offsets):
            if offsets is not None:
                buffers[f"t{index}.o{level}"] = _as_array(offsets)
        descriptors.append({"name": trie.name, "order": trie.order,
                            "size": trie.size, "depth": trie.depth})
    meta: dict[str, Any] = {
        "kind": "instance",
        "name": instance.name,
        "order": instance.order,
        "participation": instance.participation,
        "level_values": instance._level_values,
        "tries": descriptors,
    }
    if algorithm == "xjoin":
        meta["query"] = instance.query
        meta["twig_filters"] = instance.twig_filters
        meta["erase_structural"] = instance.erase_structural
    return buffers, meta


def publish_instance(instance: "EncodedInstance",
                     algorithm: str) -> SharedArena:
    """Publish an encoded instance's tries as frozen CSR buffers."""
    buffers, meta = instance_buffers(instance, algorithm)
    return SharedArena.publish(buffers, meta)


def instance_from_arena(arena) -> "EncodedInstance":
    """Rebuild an instance shell over an attached arena (shm or mmap).

    Each trie shell's root is a :class:`FrozenTrieNode` over the zero-
    copy level buffers; the kernels and
    :func:`~repro.parallel.slicing.sliced_instance` consume it through
    the same node surface as a built trie.
    """
    from repro.engine.encoded import EncodedInstance, EncodedTrie

    meta = arena.meta
    tries = []
    for index, descriptor in enumerate(meta["tries"]):
        depth = descriptor["depth"]
        levels = [arena.buffer(f"t{index}.l{level}")
                  for level in range(depth)]
        offsets: "list[Sequence[int] | None]" = [None] + [
            arena.buffer(f"t{index}.o{level}")
            for level in range(1, depth)]
        frozen = FrozenTrie(descriptor["name"], descriptor["order"],
                            descriptor["size"], levels, offsets)
        trie = EncodedTrie.__new__(EncodedTrie)
        trie.name = descriptor["name"]
        trie.order = tuple(descriptor["order"])
        trie.size = descriptor["size"]
        trie.root = frozen.root()
        trie._typecodes = None  # frozen shells never insert/remove
        tries.append(trie)
    instance = EncodedInstance.__new__(EncodedInstance)
    instance.name = meta["name"]
    instance.order = tuple(meta["order"])
    instance.dictionaries = {}
    instance.tries = tries
    instance.relations = []
    instance.query = meta.get("query")
    instance.twig_filters = meta.get("twig_filters")
    instance.erase_structural = meta.get("erase_structural", False)
    instance.participation = meta["participation"]
    instance._level_values = meta["level_values"]
    return instance


def attach_instance(name: str) -> "tuple[SharedArena, EncodedInstance]":
    """Attach a published instance; returns (arena, instance shell)."""
    arena = SharedArena.attach(name)
    return arena, instance_from_arena(arena)
