"""Partition planning: slicing the top-level domain into weighted morsels.

Two slicers share one greedy chunking core:

* :func:`code_slices` — half-open **code ranges** over the first join
  variable of an :class:`~repro.engine.encoded.EncodedInstance`. Every
  trie binding level 0 enumerates its top-level keys in sorted code
  order, so a range ``[lo, hi)`` of codes names an independent sub-join:
  no result row of one slice can ever be produced by another (a row's
  level-0 code lies in exactly one range), and the ranges jointly cover
  the whole domain.
* :func:`posting_slices` — ranges over the twig root's posting list in a
  :class:`~repro.xml.columnar.ColumnarDocument`. Each slice owns the
  embeddings whose root match falls in its ``start``-label interval, and
  carries the document region (``region_hi``) its subtrees span, so
  workers can restrict *every* stream to the slice's region.

Both weight their elements (rows under a top-level code; subtree extent
under a root candidate) and chunk greedily toward equal weight, so a
skewed domain — one code holding most of the tuples — does not silently
produce one giant morsel and many empty ones beyond what the key
granularity forces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.engine.encoded import EncodedInstance
    from repro.xml.columnar import TagPosting

#: Morsels issued per worker by default: enough granularity for the
#: work-stealing queue to absorb moderate skew without drowning the pool
#: in per-morsel overhead.
DEFAULT_MORSEL_FACTOR = 4


@dataclass(frozen=True)
class CodeSlice:
    """One half-open code range ``[lo, hi)`` of the top-level attribute."""

    index: int
    lo: int
    hi: int
    weight: int

    def __repr__(self) -> str:
        return f"CodeSlice({self.index}, [{self.lo},{self.hi}), w={self.weight})"


@dataclass(frozen=True)
class PostingSlice:
    """One slice of the twig root's posting list.

    ``lo``/``hi`` bound the root candidates' ``start`` labels (half-open:
    a root match belongs to this slice iff ``lo <= start < hi``);
    ``region_hi`` is the largest ``end`` label among them, i.e. the
    document region any embedding rooted in this slice can reach.
    """

    index: int
    lo: int
    hi: int
    region_hi: int
    weight: int

    def __repr__(self) -> str:
        return (f"PostingSlice({self.index}, starts=[{self.lo},{self.hi}), "
                f"region_hi={self.region_hi}, w={self.weight})")


def choose_morsel_count(workers: int, domain: int, *,
                        morsel_factor: int = DEFAULT_MORSEL_FACTOR) -> int:
    """How many morsels to cut for *workers* over a *domain*-sized axis.

    More morsels than workers lets the work-stealing queue rebalance
    skew; the count never exceeds the domain (a slice needs at least one
    key) and collapses to 1 when parallelism cannot pay off.
    """
    if workers <= 1 or domain <= 1:
        return 1
    return max(1, min(morsel_factor * workers, domain))


def _subtree_rows(node) -> int:
    """Number of full rows stored beneath one trie node (iterative)."""
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if not current.keys:
            total += 1  # a terminal node closes exactly one row
        else:
            children = current.children
            for code in current.keys:
                stack.append(children[code])
    return total


def top_level_weights(instance: "EncodedInstance") -> dict[int, int]:
    """Per top-level code: total rows beneath it across level-0 tries.

    The weight map drives :func:`code_slices`; its keys are the union of
    the level-0 key lists, so every code any kernel can enumerate at the
    top level is covered.
    """
    weights: dict[int, int] = {}
    if not instance.order:
        return weights
    for trie_index in instance.participation[0]:
        root = instance.tries[trie_index].root
        for code in root.keys:
            weights[code] = weights.get(code, 0) \
                + _subtree_rows(root.children[code])
    return weights


def _greedy_chunks(weights: Sequence[int], parts: int
                   ) -> list[tuple[int, int]]:
    """Chunk ``weights`` into at most ``parts`` contiguous index ranges
    of near-equal total weight (greedy; no chunk is ever empty)."""
    n = len(weights)
    parts = max(1, min(parts, n))
    chunks: list[tuple[int, int]] = []
    start = 0
    remaining = float(sum(weights))
    for part in range(parts):
        left = parts - part
        if n - start <= left:
            # One element per remaining chunk.
            chunks.extend((k, k + 1) for k in range(start, n))
            return chunks
        if left == 1:
            chunks.append((start, n))
            return chunks
        target = remaining / left
        end = start
        acc = 0.0
        # Take at least one element, stop at the fair share, and always
        # leave at least one element for each later chunk.
        while acc < target and n - end > left - 1:
            acc += weights[end]
            end += 1
        chunks.append((start, end))
        remaining -= acc
        start = end
    return chunks


def code_slices(instance: "EncodedInstance", morsels: int, *,
                weights: "dict[int, int] | None" = None
                ) -> list[CodeSlice]:
    """Cut the instance's top-level code domain into weighted ranges.

    Returns at most *morsels* half-open, contiguous, jointly covering
    ``[min_code, max_code + 1)`` ranges; an instance with an empty or
    unit top-level domain yields at most one slice. Codes between two
    keys fall into the earlier range — harmless, since no input holds
    them.
    """
    if weights is None:
        weights = top_level_weights(instance)
    if not weights:
        return []
    codes = sorted(weights)
    if morsels <= 1 or len(codes) == 1:
        return [CodeSlice(0, codes[0], codes[-1] + 1,
                          sum(weights.values()))]
    per_code = [weights[code] for code in codes]
    chunks = _greedy_chunks(per_code, morsels)
    slices: list[CodeSlice] = []
    for index, (i, j) in enumerate(chunks):
        hi = codes[j] if j < len(codes) else codes[-1] + 1
        slices.append(CodeSlice(index, codes[i], hi,
                                sum(per_code[i:j])))
    return slices


def posting_slices(posting: "TagPosting", morsels: int
                   ) -> list[PostingSlice]:
    """Cut a root-candidate posting into weighted start-label ranges.

    *posting* must be the twig root's (predicate-filtered) stream; the
    per-candidate weight is its region extent ``end - start``, a proxy
    for the matching work its subtree can generate. ``region_hi`` is the
    running maximum ``end`` so nested root candidates keep the full
    region visible to their slice.
    """
    n = len(posting.nids)
    if n == 0:
        return []
    starts, ends = posting.starts, posting.ends
    if morsels <= 1 or n == 1:
        return [PostingSlice(0, starts[0], ends[-1] + 1, max(ends),
                             sum(ends[i] - starts[i] for i in range(n)))]
    weights = [max(1, ends[i] - starts[i]) for i in range(n)]
    chunks = _greedy_chunks(weights, morsels)
    slices: list[PostingSlice] = []
    for index, (i, j) in enumerate(chunks):
        lo = starts[i]
        hi = starts[j] if j < n else max(ends) + 1
        region_hi = max(ends[i:j])
        slices.append(PostingSlice(index, lo, hi, region_hi,
                                   sum(weights[i:j])))
    return slices


def value_segments(values: Sequence, morsels: int) -> list[list]:
    """Split a sorted value list into at most *morsels* contiguous
    segments of near-equal length (the ``baseline`` foil's partition
    axis: decoded values, one segment per morsel)."""
    n = len(values)
    if n == 0:
        return []
    parts = max(1, min(morsels, n))
    size = math.ceil(n / parts)
    return [list(values[i:i + size]) for i in range(0, n, size)]
