"""Worker-process entry points for the morsel pool.

A worker executes **morsels** — slice descriptors produced by
:mod:`repro.parallel.partition`, just a few ints each — against the
job state installed in :data:`_SHARED` when the worker starts. How the
job state travels is the pool's *transport*:

* ``fork`` — children inherit the encoded instance / document
  copy-on-write through the forked address space; nothing heavy is
  ever serialized;
* ``pickle`` — the job state is serialized **once per worker** (as
  ``Process`` args under a spawn start method; a stripped instance
  with no source relations or value->code maps). The portable path for
  relational jobs on platforms without ``fork``; twig jobs are
  excluded — documents are never shipped;
* ``shm`` — the parent publishes the job's typed buffers into one
  shared-memory arena (:mod:`repro.parallel.shm`) and the ``Process``
  args carry only a ``("twig_shm" | "join_shm", arena_name, ...)``
  descriptor. :func:`set_shared` materializes the descriptor on
  arrival: it attaches the arena zero-copy and rewrites the job into
  the standard ``("twig", ...)`` / ``("join", ...)`` shape, so the
  morsel runners below never distinguish transports. Zero instance or
  document pickling per worker, under a spawn start method.

Workers return ``(index, counters, rows)`` per morsel — plain value
rows, never node objects or tries, so result pickles stay proportional
to the answer. Failures travel back as ``(index, None, traceback)`` and
re-raise in the parent.
"""

from __future__ import annotations

import traceback
from typing import Any

from repro.instrumentation import JoinStats

#: The fork-transport job, set by the parent immediately before the pool
#: forks and cleared after the run. Tuple layout is job-kind specific;
#: see the ``_run_*`` functions.
_SHARED: tuple | None = None

#: Per-job memo of the twig's base streams (name -> TagPosting):
#: predicate filtering scans the full posting, so it runs once per
#: worker per job, not once per morsel. Cleared by :func:`set_shared`,
#: the only way a worker ever changes jobs.
_TWIG_STREAMS: "dict | None" = None

#: id(materialized job) -> shared-memory arenas the job attached, so
#: :func:`release_shared` closes exactly the attachments belonging to
#: one job (inline runs nest jobs; a global close would release an
#: outer job's views).
_JOB_ARENAS: "dict[int, list]" = {}


def _materialize(job: tuple) -> tuple:
    """Resolve a shared-memory descriptor into standard job state.

    Attaches the arena(s) zero-copy and rewrites the descriptor into
    the plain job tuple the morsel runners dispatch on. ``*_shm``
    descriptors carry a segment name, ``*_mmap`` descriptors a file
    path (:mod:`repro.parallel.mmapfile`); both funnel into identical
    job shapes. The attachments are recorded for
    :func:`release_shared`.
    """
    from repro.parallel import mmapfile, shm

    kind = job[0]
    if kind == "twig_shm":
        _kind, arena_name, twig, algorithm = job
        arena, handle, view = shm.attach_document(arena_name)
        materialized = ("twig", handle, twig, algorithm, view)
    elif kind == "join_shm":
        _kind, arena_name, algorithm = job
        arena, instance = shm.attach_instance(arena_name)
        materialized = ("join", instance, algorithm)
    elif kind == "twig_mmap":
        _kind, path, twig, algorithm = job
        arena, handle, view = mmapfile.attach_document(path)
        materialized = ("twig", handle, twig, algorithm, view)
    elif kind == "join_mmap":
        _kind, path, algorithm = job
        arena, instance = mmapfile.attach_instance(path)
        materialized = ("join", instance, algorithm)
    else:  # pragma: no cover - guarded by the caller
        return job
    _JOB_ARENAS[id(materialized)] = [arena]
    return materialized


def release_shared(job: tuple | None) -> None:
    """Close the shared-memory attachments of one materialized job."""
    for arena in _JOB_ARENAS.pop(id(job), ()):
        arena.close()


def set_shared(job: tuple | None) -> None:
    """Install (or clear) the current job state (and its memos).

    Shared-arena descriptors (``*_shm`` / ``*_mmap`` kinds) are
    materialized here — the one place every transport funnels through —
    so the runners only ever see plain job tuples.
    """
    global _SHARED, _TWIG_STREAMS
    if job is not None and isinstance(job[0], str) \
            and job[0].endswith(("_shm", "_mmap")):
        job = _materialize(job)
    _SHARED = job
    _TWIG_STREAMS = None


def _base_streams(shared: tuple) -> dict:
    """The job's per-query-node base streams, memoised per job."""
    global _TWIG_STREAMS
    if _TWIG_STREAMS is None:
        _kind, _document, twig, _algorithm, base = shared
        _TWIG_STREAMS = {q.name: base.stream(q) for q in twig.nodes()}
    return _TWIG_STREAMS


def _counters(stats: JoinStats) -> dict[str, int | float]:
    """The picklable counter summary a morsel reports back."""
    return stats.summary()


def run_join_morsel(task: tuple) -> tuple[dict, list]:
    """Evaluate one code-range slice ``(lo, hi)`` of an encoded join.

    The instance comes from :data:`_SHARED` (``("join", instance,
    algorithm_name)``) — inherited copy-on-write under fork, shipped
    once per worker under pickle. Returns the slice's *decoded* result
    rows.
    """
    from repro.engine.interface import get_algorithm
    from repro.parallel.slicing import sliced_instance

    stats = JoinStats()
    assert _SHARED is not None and _SHARED[0] == "join"
    _kind, instance, algorithm = _SHARED
    view = sliced_instance(instance, task[0], task[1])
    result = get_algorithm(algorithm).run(view, stats=stats)
    return _counters(stats), list(result.rows)


def run_twig_morsel(task: tuple) -> tuple[dict, list]:
    """Evaluate one root-posting slice of a twig match.

    ``task`` is ``(lo, hi, region_hi)``; the document, twig, algorithm
    name and base columnar view come from :data:`_SHARED` as
    ``("twig", document, twig, algorithm_name, base_view)`` (twig morsels
    always ride the fork or serial transport — documents are never
    shipped). Returns the slice's value rows: the projection of every
    embedding whose root match starts in ``[lo, hi)``.
    """
    from bisect import bisect_left
    from repro.xml.columnar import install_columnar
    from repro.xml.interface import get_twig_algorithm
    from repro.xml.navigation import match_embeddings
    from repro.parallel.slicing import SlicedColumnarView

    assert _SHARED is not None and _SHARED[0] == "twig"
    _kind, document, twig, algorithm, base = _SHARED
    lo, hi, region_hi = task
    stats = JoinStats()
    attrs = twig.attributes
    root = twig.nodes()[0]

    streams = _base_streams(_SHARED)
    if algorithm == "naive":
        # The navigational oracle walks node objects, not postings: pin
        # the twig root to each candidate in the slice instead.
        embeddings = []
        posting = streams[root.name]
        i = bisect_left(posting.starts, lo)
        j = bisect_left(posting.starts, hi)
        for position in range(i, j):
            node = base.nodes[posting.nids[position]]
            embeddings.extend(
                match_embeddings(document, twig, root=node, stats=stats))
        rows = {tuple(emb[a].value for a in attrs) for emb in embeddings}
        return _counters(stats), list(rows)

    view = SlicedColumnarView(base, twig, lo, hi, region_hi,
                              base_streams=streams)
    # Algorithms resolve the document through the columnar cache; point
    # it at the slice view for the duration of this morsel. Workers are
    # forked per job (and the serial transport restores in-line), so the
    # parent's cache is never left poisoned.
    install_columnar(document, view)
    try:
        embeddings = get_twig_algorithm(algorithm).embeddings(
            document, twig, stats=stats)
    finally:
        install_columnar(document, base)
    root_name = root.name
    rows = {tuple(emb[a].value for a in attrs) for emb in embeddings
            if lo <= emb[root_name].start < hi}
    return _counters(stats), list(rows)


def run_baseline_morsel(task: tuple) -> tuple[dict, list]:
    """Evaluate the baseline foil over one value segment.

    ``task`` is ``(segment,)`` — a frozenset of the partition
    attribute's values; the query and attribute come from :data:`_SHARED`
    as ``("baseline", query, attribute)``. A ``None`` attribute (twig-only
    query) means the single morsel evaluates the whole query.
    """
    from repro.core.baseline import baseline_join
    from repro.parallel.slicing import baseline_subquery

    assert _SHARED is not None and _SHARED[0] == "baseline"
    _kind, query, attribute = _SHARED
    (segment,) = task
    stats = JoinStats()
    if attribute is None:
        result = baseline_join(query, stats=stats)
    else:
        result = baseline_join(
            baseline_subquery(query, attribute, segment), stats=stats)
    return _counters(stats), list(result.rows)


#: Morsel kind -> executor function (also the worker loop's dispatch).
MORSEL_RUNNERS = {
    "join": run_join_morsel,
    "twig": run_twig_morsel,
    "baseline": run_baseline_morsel,
}


def worker_loop(kind: str, tasks: Any, results: Any,
                shared: tuple | None = None) -> None:
    """The pool worker main: pull morsels until the ``None`` sentinel.

    ``shared`` is the job state, passed through ``Process`` args: under
    a ``fork`` start method it arrives by copy-on-write inheritance
    (nothing is serialized); under ``spawn`` it is pickled exactly once
    per worker. Each task on the queue is ``(index, payload)``; results
    are pushed as ``(index, counters, rows)`` or ``(index, None,
    traceback_text)`` on failure.
    """
    set_shared(shared)
    runner = MORSEL_RUNNERS[kind]
    try:
        while True:
            item = tasks.get()
            if item is None:
                break
            index, payload = item
            try:
                counters, rows = runner(payload)
                results.put((index, counters, rows))
            except BaseException:  # noqa: BLE001 - re-raised in the parent
                results.put((index, None, traceback.format_exc()))
    finally:
        release_shared(_SHARED)
        set_shared(None)
