"""XJoin — the paper's Algorithm 1: worst-case optimal multi-model join.

XJoin evaluates a :class:`~repro.core.multimodel.MultiModelQuery` one
attribute at a time (the expansion priority ``PA``). At each step the
candidate values for the attribute are intersected across *every* input
that binds it — relational tables and the twig's decomposed root-leaf
path relations alike — so no partial tuple ever violates an already-seen
input. By the AGM argument over the combined hypergraph, the number of
partial tuples at any stage never exceeds the worst-case size bound of
the whole query (Lemma 3.5; property-tested in the suite).

Since the engine refactor this module is the multi-model *front-end*: it
resolves the expansion order (:mod:`repro.core.planner`), builds one
dictionary-encoded :class:`~repro.engine.encoded.EncodedInstance` —
relations and path relations indexed as int-coded tries over shared
per-attribute dictionaries, path rows gathered from the document's
P-C chains without ever materialising a relation (the paper's "we do
not physically transform them into relational tables"; only a transient
distinct-row set feeds the dictionary and trie build) — and invokes the
registered ``xjoin`` operator
(:class:`repro.engine.algorithms.XJoinAlgorithm`). The A-D edges and
cross-path branching are enforced by the final structure-validation
filter (Algorithm 1's last line).

The paper's "on-going work" extensions are implemented as optional modes:

* ``ad_prefilter`` — filter candidate values through lazily built
  ancestor/descendant value-pair indexes of the twig's A-D edges
  ("filtering infeasible intermediate results");
* ``partial_validation`` — prune a partial tuple as soon as its bound twig
  attributes cannot be embedded ("partially validating the twig structure
  during the joining").

Both modes only shrink intermediate results, so Lemma 3.5 still holds.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.multimodel import MultiModelQuery
from repro.core.planner import attribute_order
from repro.engine.algorithms import XJOIN
from repro.engine.encoded import EncodedInstance
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation


def xjoin(query: MultiModelQuery,
          order: "str | Sequence[str] | None" = None, *,
          stats: JoinStats | None = None,
          validate_structure: bool = True,
          ad_prefilter: bool = False,
          partial_validation: bool = False) -> Relation:
    """Evaluate *query* with the worst-case optimal XJoin algorithm.

    ``order`` is Algorithm 1's expansion priority ``PA``: an explicit
    attribute sequence or a planner policy name (see
    :mod:`repro.core.planner`). ``validate_structure=False`` skips the
    final twig filter, returning the relaxed value join (ablation only).
    """
    stats = ensure_stats(stats)
    expansion = attribute_order(query, order)
    with stats.phase("encode"):
        instance = EncodedInstance.from_query(
            query, expansion,
            validate_structure=validate_structure,
            ad_prefilter=ad_prefilter,
            partial_validation=partial_validation)
    return XJOIN.run(instance, stats=stats)
