"""XJoin — the paper's Algorithm 1: worst-case optimal multi-model join.

XJoin evaluates a :class:`~repro.core.multimodel.MultiModelQuery` one
attribute at a time (the expansion priority ``PA``). At each step the
candidate values for the attribute are intersected across *every* input
that binds it — relational tables and the twig's decomposed root-leaf
path relations alike — so no partial tuple ever violates an already-seen
input. By the AGM argument over the combined hypergraph, the number of
partial tuples at any stage never exceeds the worst-case size bound of
the whole query (Lemma 3.5; property-tested in the suite).

Inputs are indexed as tries: relations directly, path relations straight
from the document's P-C chains (:meth:`Trie.from_rows` over a generator —
the paper's "we do not physically transform them into relational
tables"). The A-D edges and cross-path branching are enforced by the
final structure-validation filter (Algorithm 1's last line).

The paper's "on-going work" extensions are implemented as optional modes:

* ``ad_prefilter`` — filter candidate values through lazily built
  ancestor/descendant value-pair indexes of the twig's A-D edges
  ("filtering infeasible intermediate results");
* ``partial_validation`` — prune a partial tuple as soon as its bound twig
  attributes cannot be embedded ("partially validating the twig structure
  during the joining").

Both modes only shrink intermediate results, so Lemma 3.5 still holds.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.decomposition import iter_path_value_rows
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.planner import attribute_order
from repro.core.surrogate import erase_surrogates
from repro.core.validation import PartialStructureValidator, StructureValidator
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.relation import Relation
from repro.relational.schema import Schema, Value
from repro.relational.trie import Trie, TrieNode


class _ADValueIndex:
    """Lazily built value-pair index for one A-D twig edge.

    Maps upper-node values to the set of lower-node values reachable via
    the ancestor-descendant axis (and the reverse direction), restricted
    to nodes matching the query nodes' tags and predicates.
    """

    def __init__(self, binding: TwigBinding, upper_name: str,
                 lower_name: str, structural: frozenset[str] = frozenset()):
        self._binding = binding
        self._upper = binding.twig.node(upper_name)
        self._lower = binding.twig.node(lower_name)
        self._upper_structural = upper_name in structural
        self._lower_structural = lower_name in structural
        self._down: dict[Value, set[Value]] | None = None
        self._up: dict[Value, set[Value]] | None = None

    def _build(self) -> None:
        from repro.core.surrogate import node_representation

        down: dict[Value, set[Value]] = {}
        up: dict[Value, set[Value]] = {}
        document = self._binding.document
        lower_tag = self._lower.tag
        for upper_node in document.nodes(self._upper.tag):
            if not self._upper.matches_value(upper_node.value):
                continue
            upper_key = node_representation(upper_node,
                                            self._upper_structural)
            for descendant in upper_node.descendants():
                if descendant.tag != lower_tag:
                    continue
                if not self._lower.matches_value(descendant.value):
                    continue
                lower_key = node_representation(descendant,
                                                self._lower_structural)
                down.setdefault(upper_key, set()).add(lower_key)
                up.setdefault(lower_key, set()).add(upper_key)
        self._down, self._up = down, up

    def lower_values_for(self, upper_value: Value) -> set[Value]:
        if self._down is None:
            self._build()
        assert self._down is not None
        return self._down.get(upper_value, set())

    def upper_values_for(self, lower_value: Value) -> set[Value]:
        if self._up is None:
            self._build()
        assert self._up is not None
        return self._up.get(lower_value, set())


def xjoin(query: MultiModelQuery,
          order: "str | Sequence[str] | None" = None, *,
          stats: JoinStats | None = None,
          validate_structure: bool = True,
          ad_prefilter: bool = False,
          partial_validation: bool = False) -> Relation:
    """Evaluate *query* with the worst-case optimal XJoin algorithm.

    ``order`` is Algorithm 1's expansion priority ``PA``: an explicit
    attribute sequence or a planner policy name (see
    :mod:`repro.core.planner`). ``validate_structure=False`` skips the
    final twig filter, returning the relaxed value join (ablation only).
    """
    stats = ensure_stats(stats)
    expansion = attribute_order(query, order)
    depth = len(expansion)

    # ---- index construction (inputs only; no intermediate results) ------
    tries: list[Trie] = []
    for relation in query.relations:
        tries.append(
            Trie(relation, relation.schema.restrict_order(expansion)))
    structural = {binding.name: query.structural_attributes(binding)
                  for binding in query.twigs}
    for binding in query.twigs:
        for path in query.decompositions[binding.name].paths:
            restricted = Schema(path.attributes).restrict_order(expansion)
            tries.append(Trie.from_rows(
                path.name, path.attributes,
                iter_path_value_rows(binding.document, path,
                                     structural[binding.name]),
                order=restricted))

    # Any empty input empties the whole join; bail out before expanding
    # (this also keeps Lemma 3.5 exact when the AGM bound is zero —
    # otherwise early attributes could briefly accumulate partial tuples
    # that a later, empty input would discard).
    if any(not trie.root.children and trie.depth > 0 for trie in tries):
        stats.record_stage("empty input", 0)
        return Relation(query.name, Schema(query.attributes))

    participation: list[list[int]] = [[] for _ in expansion]
    for trie_index, trie in enumerate(tries):
        for attribute in trie.order:
            participation[expansion.index(attribute)].append(trie_index)

    # ---- twig-side filters ----------------------------------------------
    validators = {binding.name: StructureValidator(binding.document,
                                                   binding.twig)
                  for binding in query.twigs} if validate_structure else {}
    partial_validators = (
        {binding.name: PartialStructureValidator(binding.document,
                                                 binding.twig)
         for binding in query.twigs} if partial_validation else {})
    twig_attrs = {binding.name: set(binding.twig.attributes)
                  for binding in query.twigs}

    ad_indexes: list[tuple[str, str, str, _ADValueIndex]] = []
    if ad_prefilter:
        for binding in query.twigs:
            for upper, lower in binding.twig.ad_edges():
                ad_indexes.append(
                    (binding.name, upper.name, lower.name,
                     _ADValueIndex(binding, upper.name, lower.name,
                                   structural[binding.name])))

    # ---- the attribute-at-a-time expansion -------------------------------
    stats.start_timer()
    binding_values: dict[str, Value] = {}
    nodes: list[TrieNode] = [trie.root for trie in tries]
    rows: list[tuple[Value, ...]] = []
    alive = [0] * depth

    def ad_feasible(attribute: str, value: Value) -> bool:
        """Candidate pruning through the A-D value-pair indexes."""
        for _twig, upper_name, lower_name, index in ad_indexes:
            if attribute == lower_name and upper_name in binding_values:
                if value not in index.lower_values_for(
                        binding_values[upper_name]):
                    return False
            if attribute == upper_name and lower_name in binding_values:
                if value not in index.upper_values_for(
                        binding_values[lower_name]):
                    return False
        return True

    def partially_valid(attribute: str) -> bool:
        """Prune via embeddability of the bound twig attributes."""
        for binding in query.twigs:
            attrs = twig_attrs[binding.name]
            if attribute not in attrs:
                continue
            bound = {a: v for a, v in binding_values.items() if a in attrs}
            if not partial_validators[binding.name].validate_subset(bound):
                return False
        return True

    def structure_valid() -> bool:
        """Algorithm 1's final filter, applied as each tuple completes."""
        for binding in query.twigs:
            values = {a: binding_values[a] for a in twig_attrs[binding.name]}
            if not validators[binding.name].validate(values, stats=stats):
                return False
        return True

    def search(level: int) -> None:
        attribute = expansion[level]
        participants = participation[level]
        participant_nodes = [nodes[i] for i in participants]
        seed = min(participant_nodes, key=lambda node: len(node.children))
        for value in seed.sorted_keys:
            children = []
            feasible = True
            for node in participant_nodes:
                stats.count_seeks()
                child = node.children.get(value)
                if child is None:
                    feasible = False
                    break
                children.append(child)
            if not feasible:
                continue
            if ad_indexes and not ad_feasible(attribute, value):
                stats.count_filtered()
                continue
            binding_values[attribute] = value
            if partial_validators and not partially_valid(attribute):
                del binding_values[attribute]
                stats.count_filtered()
                continue
            alive[level] += 1
            saved = [nodes[i] for i in participants]
            for participant, child in zip(participants, children):
                nodes[participant] = child
            if level + 1 == depth:
                if not validators or structure_valid():
                    rows.append(tuple(binding_values[a] for a in expansion))
                    stats.count_emitted()
            else:
                search(level + 1)
            for participant, old in zip(participants, saved):
                nodes[participant] = old
            del binding_values[attribute]

    if depth == 0:
        rows.append(())
    else:
        search(0)
        for level, count in enumerate(alive):
            stats.record_stage(f"expand {expansion[level]}", count)
    stats.stop_timer()
    # Erase node surrogates: the query's answer is value-level.
    if any(structural.values()):
        rows = [erase_surrogates(row) for row in rows]
    result = Relation(query.name, Schema(expansion), rows)
    return result.project(query.attributes, name=query.name)
