"""The baseline multi-model join (Example 3.4, left side of Figure 3).

The traditional way to answer a cross-model query: evaluate the relational
sub-query Q1 and the twig sub-query Q2 *independently*, each with its own
engine, then join the two result sets. Each sub-query is evaluated
optimally for its own model — binary join plans for Q1, a planner-chosen
holistic twig matcher for Q2 (TwigStack/TJFast/PathStack, see
:func:`repro.engine.planner.choose_twig_algorithm`) —
but the combination is not worst-case optimal for the whole query: Q2 can
be as large as its own bound (n^5 in the running example) even when the
combined query's bound is much smaller (n^2).

All intermediate results (every binary-join output, every twig path
solution and embedding, and the final combination steps) are recorded in
the shared :class:`~repro.instrumentation.JoinStats`, which is what the
Figure 3 benchmark compares against XJoin.

The baseline is also registered with the unified engine interface as the
``"baseline"`` :class:`~repro.engine.interface.JoinAlgorithm`
(:class:`repro.engine.algorithms.BaselineJoinAlgorithm`), so planners and
benchmarks can race it against the encoded operators over one
:class:`~repro.engine.encoded.EncodedInstance`. It intentionally does not
execute on the encoded tries — being the unencoded dual-engine stack is
what makes it the paper's foil.
"""

from __future__ import annotations

from repro.core.multimodel import MultiModelQuery
from repro.errors import TwigError
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.joins import hash_join
from repro.relational.plans import (
    dp_plan,
    execute_plan,
    greedy_plan,
    left_deep_plan,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.xml.interface import get_twig_algorithm


def relational_subquery(query: MultiModelQuery, *,
                        plan: str = "greedy",
                        stats: JoinStats | None = None) -> Relation:
    """Q1: join of the relational tables only (binary join plans)."""
    stats = ensure_stats(stats)
    if not query.relations:
        return Relation("Q1", Schema(()), [()])
    relations = {r.name: r for r in query.relations}
    if plan == "greedy":
        tree = greedy_plan(relations)
    elif plan == "left_deep":
        tree = left_deep_plan(list(relations))
    elif plan == "dp":
        tree = dp_plan(relations)
    else:
        raise ValueError(f"unknown plan policy {plan!r}")
    return execute_plan(tree, relations, stats=stats).with_name("Q1")


def twig_subquery(query: MultiModelQuery, *,
                  twig_algorithm: str | None = None,
                  stats: JoinStats | None = None) -> Relation:
    """Q2: join of the per-twig answers.

    Each twig is evaluated by the matcher the engine planner picks from
    the document's cached statistics
    (:func:`repro.engine.planner.choose_twig_algorithm`), or by
    *twig_algorithm* when the caller forces one (the CLI's
    ``--twig-algorithm`` A/B override).
    """
    stats = ensure_stats(stats)
    if not query.twigs:
        return Relation("Q2", Schema(()), [()])
    # Imported lazily: the planner module imports nothing from core at
    # module level, but keep the boundary one-directional regardless.
    from repro.engine.planner import choose_twig_algorithm

    result: Relation | None = None
    for binding in query.twigs:
        name = twig_algorithm or choose_twig_algorithm(binding.document,
                                                       binding.twig)
        matcher = get_twig_algorithm(name)
        if not matcher.supports(binding.twig):
            raise TwigError(
                f"twig algorithm {name!r} cannot evaluate twig "
                f"{binding.name!r} ('pathstack' handles linear paths "
                f"only)")
        answer = matcher.run(binding.document, binding.twig, stats=stats)
        stats.record_stage(f"twig answer {binding.name}", len(answer))
        if result is None:
            result = answer
        else:
            result = hash_join(result, answer, stats=stats)
    assert result is not None
    return result.with_name("Q2")


def baseline_join(query: MultiModelQuery, *,
                  plan: str = "greedy",
                  twig_algorithm: str | None = None,
                  stats: JoinStats | None = None) -> Relation:
    """The full baseline: Q1 ⋈ Q2 (Example 3.4's "not optimal" plan)."""
    stats = ensure_stats(stats)
    stats.start_timer()
    q1 = relational_subquery(query, plan=plan, stats=stats)
    q2 = twig_subquery(query, twig_algorithm=twig_algorithm, stats=stats)
    if q1.schema.arity == 0:
        combined = q2 if len(q1) else Relation("Q", q2.schema)
    elif q2.schema.arity == 0:
        combined = q1 if len(q2) else Relation("Q", q1.schema)
    else:
        combined = hash_join(q1, q2, stats=stats)
    stats.stop_timer()
    return combined.project(query.attributes, name=query.name)
