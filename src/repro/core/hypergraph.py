"""Query hypergraphs: attributes as vertices, relation schemas as edges.

The AGM machinery works on this representation. For the paper's
multi-model queries the hypergraph contains one edge per relational table
plus one edge per *decomposed twig path relation* (Figure 2); the builder
for that combined graph lives in :mod:`repro.core.multimodel`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True)
class Hyperedge:
    """One edge: a named set of attributes with an optional cardinality."""

    name: str
    vertices: frozenset[str]
    cardinality: int | None = None

    def __post_init__(self):
        if not self.vertices:
            raise QueryError(f"hyperedge {self.name!r} has no vertices")

    def __repr__(self) -> str:
        size = "" if self.cardinality is None else f", |{self.cardinality}|"
        return f"Hyperedge({self.name}:{sorted(self.vertices)}{size})"


class Hypergraph:
    """An attribute hypergraph with named edges.

    >>> h = Hypergraph()
    >>> _ = h.add_edge("R", ["a", "b"], cardinality=10)
    >>> h.vertices
    ('a', 'b')
    """

    def __init__(self, edges: Iterable[Hyperedge] = ()):
        self._edges: dict[str, Hyperedge] = {}
        self._vertices: list[str] = []
        for edge in edges:
            self._register(edge)

    def _register(self, edge: Hyperedge) -> Hyperedge:
        if edge.name in self._edges:
            raise QueryError(f"duplicate hyperedge name {edge.name!r}")
        self._edges[edge.name] = edge
        for vertex in sorted(edge.vertices):
            if vertex not in self._vertices:
                self._vertices.append(vertex)
        return edge

    def add_edge(self, name: str, vertices: Iterable[str],
                 cardinality: int | None = None) -> Hyperedge:
        """Create and register an edge; returns it."""
        return self._register(
            Hyperedge(name, frozenset(vertices), cardinality))

    @property
    def vertices(self) -> tuple[str, ...]:
        """All attributes, in first-appearance order."""
        return tuple(self._vertices)

    @property
    def edges(self) -> tuple[Hyperedge, ...]:
        return tuple(self._edges.values())

    def edge(self, name: str) -> Hyperedge:
        try:
            return self._edges[name]
        except KeyError:
            raise QueryError(f"no hyperedge named {name!r}") from None

    def edges_covering(self, vertex: str) -> tuple[Hyperedge, ...]:
        """All edges containing *vertex*."""
        return tuple(e for e in self._edges.values() if vertex in e.vertices)

    def require_covered(self) -> None:
        """Raise unless every vertex is in at least one edge (always true
        by construction) and the graph is non-empty."""
        if not self._edges:
            raise QueryError("hypergraph has no edges")

    def with_cardinalities(self, cardinalities: Mapping[str, int]
                           ) -> "Hypergraph":
        """A copy with per-edge cardinalities overridden."""
        return Hypergraph(
            Hyperedge(e.name, e.vertices,
                      cardinalities.get(e.name, e.cardinality))
            for e in self._edges.values())

    def cardinalities(self) -> dict[str, int]:
        """Per-edge cardinalities; raises if any edge is missing one."""
        out = {}
        for edge in self._edges.values():
            if edge.cardinality is None:
                raise QueryError(
                    f"hyperedge {edge.name!r} has no cardinality")
            out[edge.name] = edge.cardinality
        return out

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return (f"Hypergraph({len(self._vertices)} vertices, "
                f"{len(self._edges)} edges)")
