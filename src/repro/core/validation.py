"""Twig structure validation for XJoin result tuples.

The value-level join over decomposed path relations is a *relaxation* of
the twig semantics: it enforces each root-leaf P-C chain but not the A-D
edges or the requirement that all chains share their branching nodes.
Algorithm 1 therefore ends with "Filter R by validating structure of Sx":
each candidate value tuple must admit an actual embedding of the whole
twig with exactly those values.

:class:`StructureValidator` performs that check, memoised on the tuple of
twig-attribute values (many result tuples share a twig projection, and
XJoin's partial-validation mode re-checks prefixes aggressively).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.surrogate import NodeSurrogate
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.schema import Value
from repro.xml.columnar import columnar
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery

if TYPE_CHECKING:
    from repro.core.multimodel import TwigBinding


def _node_matches(node: XMLNode, required: Value) -> bool:
    """Does *node* carry the required binding (value or surrogate)?"""
    if isinstance(required, NodeSurrogate):
        return node.start == required.start
    return node.value == required


class StructureValidator:
    """Memoised "does an embedding with these values exist?" oracle."""

    def __init__(self, document: XMLDocument, twig: TwigQuery):
        self.document = document
        self.twig = twig
        self._order = twig.nodes()  # pre-order: parents first
        self._cache: dict[tuple, bool] = {}
        # Per query node: candidate nodes grouped by value, read from the
        # columnar arrays (values pre-parsed once per document), so the
        # search below touches only nodes with the right value.
        view = columnar(document)
        values = view.values
        nodes_of = view.nodes
        self._candidates: dict[str, dict[Value, list[XMLNode]]] = {}
        for query_node in self._order:
            by_value: dict[Value, list[XMLNode]] = {}
            nids, _starts, _ends = view.postings(query_node.tag)
            for nid in nids:
                value = values[nid]
                if query_node.matches_value(value):
                    by_value.setdefault(value, []).append(nodes_of[nid])
            self._candidates[query_node.name] = by_value
        self._by_start: dict[int, XMLNode] = {
            start: nodes_of[nid]
            for nid, start in enumerate(view.starts)}

    def validate(self, values: dict[str, Value], *,
                 stats: JoinStats | None = None) -> bool:
        """True iff the twig embeds with node values equal to *values*."""
        stats = ensure_stats(stats)
        key = tuple(values[q.name] for q in self._order)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._search(values)
        self._cache[key] = result
        if not result:
            stats.count_filtered()
        return result

    def _search(self, values: dict[str, Value]) -> bool:
        binding: dict[str, XMLNode] = {}

        def candidates_for(query_node: TwigNode):
            """Axis-directed candidate generation: child-axis nodes come
            from the bound parent's children (cheap), descendant-axis
            nodes from the value index filtered by region containment —
            never a scan of all same-value nodes for child edges."""
            required = values[query_node.name]
            parent = query_node.parent
            if isinstance(required, NodeSurrogate):
                # Identity binding: exactly one candidate node exists.
                node = self._by_start.get(required.start)
                if node is None or node.tag != query_node.tag:
                    return
                if parent is not None:
                    upper = binding[parent.name]
                    if query_node.axis is Axis.CHILD:
                        if node.parent is not upper:
                            return
                    elif not (upper.start < node.start
                              and node.end < upper.end):
                        return
                yield node
                return
            if parent is None:
                base = self._candidates[query_node.name].get(required, ())
                # Container roots (e.g. an orderLine with value None) can
                # have thousands of same-value candidates; derive them
                # from the most selective child-axis child instead.
                if len(base) > 8:
                    for child_q in query_node.children:
                        if child_q.axis is not Axis.CHILD:
                            continue
                        child_required = values[child_q.name]
                        if isinstance(child_required, NodeSurrogate):
                            node = self._by_start.get(child_required.start)
                            child_candidates = ([node] if node is not None
                                                else [])
                        else:
                            child_candidates = self._candidates[
                                child_q.name].get(child_required, ())
                        if len(child_candidates) * 4 >= len(base):
                            continue
                        derived: list[XMLNode] = []
                        seen: set[int] = set()
                        for child_node in child_candidates:
                            upper = child_node.parent
                            if (upper is not None
                                    and id(upper) not in seen
                                    and upper.tag == query_node.tag
                                    and upper.value == required):
                                seen.add(id(upper))
                                derived.append(upper)
                        base = derived
                        break
                yield from base
                return
            upper = binding[parent.name]
            if query_node.axis is Axis.CHILD:
                for child in upper.children:
                    if child.tag == query_node.tag \
                            and _node_matches(child, required) \
                            and query_node.matches_value(child.value):
                        yield child
            else:
                for candidate in self._candidates[query_node.name].get(
                        required, ()):
                    if upper.start < candidate.start \
                            and candidate.end < upper.end:
                        yield candidate

        def extend(index: int) -> bool:
            if index == len(self._order):
                return True
            query_node = self._order[index]
            for candidate in candidates_for(query_node):
                binding[query_node.name] = candidate
                if extend(index + 1):
                    return True
                del binding[query_node.name]
            return False

        return extend(0)

    @property
    def cache_size(self) -> int:
        return len(self._cache)


class ADValueIndex:
    """Lazily built value-pair index for one A-D twig edge.

    Maps upper-node values to the set of lower-node values reachable via
    the ancestor-descendant axis (and the reverse direction), restricted
    to nodes matching the query nodes' tags and predicates. XJoin's
    ``ad_prefilter`` mode consults these to discard candidate values whose
    A-D counterpart cannot exist ("filtering infeasible intermediate
    results").
    """

    def __init__(self, binding: "TwigBinding", upper_name: str,
                 lower_name: str, structural: frozenset[str] = frozenset()):
        self._binding = binding
        self._upper = binding.twig.node(upper_name)
        self._lower = binding.twig.node(lower_name)
        self._upper_structural = upper_name in structural
        self._lower_structural = lower_name in structural
        self._down: dict[Value, set[Value]] | None = None
        self._up: dict[Value, set[Value]] | None = None

    def _build(self) -> None:
        # One parent-array ascent per lower-tag node (O(|lower| * depth))
        # on the columnar arrays, instead of scanning each upper node's
        # whole subtree for lower-tag descendants.
        down: dict[Value, set[Value]] = {}
        up: dict[Value, set[Value]] = {}
        view = columnar(self._binding.document)
        upper_tid = view.tag_index.get(self._upper.tag)
        lower_tid = view.tag_index.get(self._lower.tag)
        if upper_tid is None or lower_tid is None:
            self._down, self._up = down, up
            return
        values = view.values
        starts = view.starts
        parents = view.parents
        tag_ids = view.tag_ids
        for lower_nid in view.tag_nids[lower_tid]:
            lower_value = values[lower_nid]
            if not self._lower.matches_value(lower_value):
                continue
            lower_key: Value = (
                NodeSurrogate(starts[lower_nid])
                if lower_value is None and self._lower_structural
                else lower_value)
            ancestor = parents[lower_nid]
            while ancestor >= 0:
                if tag_ids[ancestor] == upper_tid:
                    upper_value = values[ancestor]
                    if self._upper.matches_value(upper_value):
                        upper_key: Value = (
                            NodeSurrogate(starts[ancestor])
                            if upper_value is None
                            and self._upper_structural
                            else upper_value)
                        down.setdefault(upper_key, set()).add(lower_key)
                        up.setdefault(lower_key, set()).add(upper_key)
                ancestor = parents[ancestor]
        self._down, self._up = down, up

    def lower_values_for(self, upper_value: Value) -> set[Value]:
        if self._down is None:
            self._build()
        assert self._down is not None
        return self._down.get(upper_value, set())

    def upper_values_for(self, lower_value: Value) -> set[Value]:
        if self._up is None:
            self._build()
        assert self._up is not None
        return self._up.get(lower_value, set())


class PartialStructureValidator:
    """Validators for *prefixes* of the twig's attribute set.

    XJoin's partial-validation extension prunes a partial value binding as
    soon as the bound attributes of a twig cannot be embedded consistently,
    rather than waiting for the final filter. For a bound subset S of twig
    attributes the check is: does an embedding of the *induced upward
    closure* of S (every bound node plus its query ancestors, with values
    enforced only on S) exist?
    """

    def __init__(self, document: XMLDocument, twig: TwigQuery):
        self.document = document
        self.twig = twig
        self._full = StructureValidator(document, twig)
        self._cache: dict[tuple, bool] = {}

    def validate_subset(self, values: dict[str, Value]) -> bool:
        """Check embeddability of the twig restricted to ``values.keys()``.

        Values absent from the dict are unconstrained. Sound (never prunes
        a tuple that could still succeed) because dropping constraints
        only enlarges the embedding space.
        """
        bound = frozenset(values)
        key = (bound, tuple(sorted(values.items(),
                                   key=lambda item: item[0])))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        order = self.twig.nodes()
        binding: dict[str, XMLNode] = {}

        def extend(index: int) -> bool:
            if index == len(order):
                return True
            query_node = order[index]
            required = values.get(query_node.name)
            nodes = self.document.nodes(query_node.tag)
            parent = query_node.parent
            for candidate in nodes:
                if required is not None and \
                        not _node_matches(candidate, required):
                    continue
                if not query_node.matches_value(candidate.value):
                    continue
                if parent is not None:
                    upper = binding[parent.name]
                    if query_node.axis is Axis.CHILD:
                        if candidate.parent is not upper:
                            continue
                    else:
                        if not (upper.start < candidate.start
                                and candidate.end < upper.end):
                            continue
                binding[query_node.name] = candidate
                if extend(index + 1):
                    return True
                del binding[query_node.name]
            return False

        result = extend(0)
        self._cache[key] = result
        return result
