"""Twig structure validation for XJoin result tuples.

The value-level join over decomposed path relations is a *relaxation* of
the twig semantics: it enforces each root-leaf P-C chain but not the A-D
edges or the requirement that all chains share their branching nodes.
Algorithm 1 therefore ends with "Filter R by validating structure of Sx":
each candidate value tuple must admit an actual embedding of the whole
twig with exactly those values.

:class:`StructureValidator` performs that check, memoised on the tuple of
twig-attribute values (many result tuples share a twig projection, and
XJoin's partial-validation mode re-checks prefixes aggressively).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.surrogate import NodeSurrogate
from repro.instrumentation import JoinStats, ensure_stats
from repro.relational.schema import Value
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery

if TYPE_CHECKING:
    from repro.core.multimodel import TwigBinding


def _node_matches(node: XMLNode, required: Value) -> bool:
    """Does *node* carry the required binding (value or surrogate)?"""
    if isinstance(required, NodeSurrogate):
        return node.start == required.start
    return node.value == required


class StructureValidator:
    """Memoised "does an embedding with these values exist?" oracle."""

    def __init__(self, document: XMLDocument, twig: TwigQuery):
        self.document = document
        self.twig = twig
        self._order = twig.nodes()  # pre-order: parents first
        self._cache: dict[tuple, bool] = {}
        # Per query node: candidate nodes grouped by value, so the search
        # below touches only nodes with the right value.
        self._candidates: dict[str, dict[Value, list[XMLNode]]] = {}
        for query_node in self._order:
            by_value: dict[Value, list[XMLNode]] = {}
            for node in document.nodes(query_node.tag):
                if query_node.matches_value(node.value):
                    by_value.setdefault(node.value, []).append(node)
            self._candidates[query_node.name] = by_value
        self._by_start: dict[int, XMLNode] = {
            node.start: node for node in document.nodes()}  # type: ignore

    def validate(self, values: dict[str, Value], *,
                 stats: JoinStats | None = None) -> bool:
        """True iff the twig embeds with node values equal to *values*."""
        stats = ensure_stats(stats)
        key = tuple(values[q.name] for q in self._order)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._search(values)
        self._cache[key] = result
        if not result:
            stats.count_filtered()
        return result

    def _search(self, values: dict[str, Value]) -> bool:
        binding: dict[str, XMLNode] = {}

        def candidates_for(query_node: TwigNode):
            """Axis-directed candidate generation: child-axis nodes come
            from the bound parent's children (cheap), descendant-axis
            nodes from the value index filtered by region containment —
            never a scan of all same-value nodes for child edges."""
            required = values[query_node.name]
            parent = query_node.parent
            if isinstance(required, NodeSurrogate):
                # Identity binding: exactly one candidate node exists.
                node = self._by_start.get(required.start)
                if node is None or node.tag != query_node.tag:
                    return
                if parent is not None:
                    upper = binding[parent.name]
                    if query_node.axis is Axis.CHILD:
                        if node.parent is not upper:
                            return
                    elif not (upper.start < node.start
                              and node.end < upper.end):
                        return
                yield node
                return
            if parent is None:
                base = self._candidates[query_node.name].get(required, ())
                # Container roots (e.g. an orderLine with value None) can
                # have thousands of same-value candidates; derive them
                # from the most selective child-axis child instead.
                if len(base) > 8:
                    for child_q in query_node.children:
                        if child_q.axis is not Axis.CHILD:
                            continue
                        child_required = values[child_q.name]
                        if isinstance(child_required, NodeSurrogate):
                            node = self._by_start.get(child_required.start)
                            child_candidates = ([node] if node is not None
                                                else [])
                        else:
                            child_candidates = self._candidates[
                                child_q.name].get(child_required, ())
                        if len(child_candidates) * 4 >= len(base):
                            continue
                        derived: list[XMLNode] = []
                        seen: set[int] = set()
                        for child_node in child_candidates:
                            upper = child_node.parent
                            if (upper is not None
                                    and id(upper) not in seen
                                    and upper.tag == query_node.tag
                                    and upper.value == required):
                                seen.add(id(upper))
                                derived.append(upper)
                        base = derived
                        break
                yield from base
                return
            upper = binding[parent.name]
            if query_node.axis is Axis.CHILD:
                for child in upper.children:
                    if child.tag == query_node.tag \
                            and _node_matches(child, required) \
                            and query_node.matches_value(child.value):
                        yield child
            else:
                for candidate in self._candidates[query_node.name].get(
                        required, ()):
                    if upper.start < candidate.start \
                            and candidate.end < upper.end:
                        yield candidate

        def extend(index: int) -> bool:
            if index == len(self._order):
                return True
            query_node = self._order[index]
            for candidate in candidates_for(query_node):
                binding[query_node.name] = candidate
                if extend(index + 1):
                    return True
                del binding[query_node.name]
            return False

        return extend(0)

    @property
    def cache_size(self) -> int:
        return len(self._cache)


class ADValueIndex:
    """Lazily built value-pair index for one A-D twig edge.

    Maps upper-node values to the set of lower-node values reachable via
    the ancestor-descendant axis (and the reverse direction), restricted
    to nodes matching the query nodes' tags and predicates. XJoin's
    ``ad_prefilter`` mode consults these to discard candidate values whose
    A-D counterpart cannot exist ("filtering infeasible intermediate
    results").
    """

    def __init__(self, binding: "TwigBinding", upper_name: str,
                 lower_name: str, structural: frozenset[str] = frozenset()):
        self._binding = binding
        self._upper = binding.twig.node(upper_name)
        self._lower = binding.twig.node(lower_name)
        self._upper_structural = upper_name in structural
        self._lower_structural = lower_name in structural
        self._down: dict[Value, set[Value]] | None = None
        self._up: dict[Value, set[Value]] | None = None

    def _build(self) -> None:
        from repro.core.surrogate import node_representation

        down: dict[Value, set[Value]] = {}
        up: dict[Value, set[Value]] = {}
        document = self._binding.document
        lower_tag = self._lower.tag
        for upper_node in document.nodes(self._upper.tag):
            if not self._upper.matches_value(upper_node.value):
                continue
            upper_key = node_representation(upper_node,
                                            self._upper_structural)
            for descendant in upper_node.descendants():
                if descendant.tag != lower_tag:
                    continue
                if not self._lower.matches_value(descendant.value):
                    continue
                lower_key = node_representation(descendant,
                                                self._lower_structural)
                down.setdefault(upper_key, set()).add(lower_key)
                up.setdefault(lower_key, set()).add(upper_key)
        self._down, self._up = down, up

    def lower_values_for(self, upper_value: Value) -> set[Value]:
        if self._down is None:
            self._build()
        assert self._down is not None
        return self._down.get(upper_value, set())

    def upper_values_for(self, lower_value: Value) -> set[Value]:
        if self._up is None:
            self._build()
        assert self._up is not None
        return self._up.get(lower_value, set())


class PartialStructureValidator:
    """Validators for *prefixes* of the twig's attribute set.

    XJoin's partial-validation extension prunes a partial value binding as
    soon as the bound attributes of a twig cannot be embedded consistently,
    rather than waiting for the final filter. For a bound subset S of twig
    attributes the check is: does an embedding of the *induced upward
    closure* of S (every bound node plus its query ancestors, with values
    enforced only on S) exist?
    """

    def __init__(self, document: XMLDocument, twig: TwigQuery):
        self.document = document
        self.twig = twig
        self._full = StructureValidator(document, twig)
        self._cache: dict[tuple, bool] = {}

    def validate_subset(self, values: dict[str, Value]) -> bool:
        """Check embeddability of the twig restricted to ``values.keys()``.

        Values absent from the dict are unconstrained. Sound (never prunes
        a tuple that could still succeed) because dropping constraints
        only enlarges the embedding space.
        """
        bound = frozenset(values)
        key = (bound, tuple(sorted(values.items(),
                                   key=lambda item: item[0])))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        order = self.twig.nodes()
        binding: dict[str, XMLNode] = {}

        def extend(index: int) -> bool:
            if index == len(order):
                return True
            query_node = order[index]
            required = values.get(query_node.name)
            nodes = self.document.nodes(query_node.tag)
            parent = query_node.parent
            for candidate in nodes:
                if required is not None and \
                        not _node_matches(candidate, required):
                    continue
                if not query_node.matches_value(candidate.value):
                    continue
                if parent is not None:
                    upper = binding[parent.name]
                    if query_node.axis is Axis.CHILD:
                        if candidate.parent is not upper:
                            continue
                    else:
                        if not (upper.start < candidate.start
                                and candidate.end < upper.end):
                            continue
                binding[query_node.name] = candidate
                if extend(index + 1):
                    return True
                del binding[query_node.name]
            return False

        result = extend(0)
        self._cache[key] = result
        return result
