"""An exact two-phase simplex solver over :class:`fractions.Fraction`.

The paper's size bounds are fractional edge covers (Example 3.3's query
bound is exactly n^{7/2}). Solving the LP in exact rational arithmetic
makes those exponents testable with ``==`` instead of float tolerances.
The LPs involved are tiny (one variable per relation or attribute), so a
dense tableau simplex with Bland's anti-cycling rule is entirely adequate.

Public entry point: :func:`solve_lp`, which maximises ``c·x`` subject to
``A x <= b`` and ``x >= 0`` (pass negated rows for >= constraints and a
negated objective to minimise). scipy's ``linprog`` is used in the test
suite as an independent cross-check, never in the library itself.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import LPError

_Number = int | float | Fraction


def _fraction(value: _Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    # Floats convert exactly (binary expansion); callers wanting nicer
    # rationals should pre-round with Fraction(x).limit_denominator().
    return Fraction(value)


@dataclass(frozen=True)
class LPSolution:
    """An optimal solution of :func:`solve_lp`."""

    objective: Fraction
    x: tuple[Fraction, ...]

    def as_floats(self) -> tuple[float, ...]:
        return tuple(float(value) for value in self.x)


class _Tableau:
    """Dense simplex tableau: rows of constraints plus an objective row."""

    def __init__(self, rows: list[list[Fraction]], objective: list[Fraction],
                 basis: list[int]):
        self.rows = rows
        self.objective = objective  # reduced-cost row, last entry = value
        self.basis = basis

    def pivot(self, row: int, col: int) -> None:
        pivot_value = self.rows[row][col]
        self.rows[row] = [entry / pivot_value for entry in self.rows[row]]
        for other in range(len(self.rows)):
            if other != row and self.rows[other][col]:
                factor = self.rows[other][col]
                self.rows[other] = [
                    a - factor * b
                    for a, b in zip(self.rows[other], self.rows[row])]
        if self.objective[col]:
            factor = self.objective[col]
            self.objective = [
                a - factor * b
                for a, b in zip(self.objective, self.rows[row])]
        self.basis[row] = col

    def optimise(self, num_columns: int) -> None:
        """Run primal simplex (maximisation) with Bland's rule."""
        iterations = 0
        limit = 10_000
        while True:
            iterations += 1
            if iterations > limit:
                raise LPError("simplex did not converge (cycling?)")
            entering = next(
                (col for col in range(num_columns)
                 if self.objective[col] > 0), None)
            if entering is None:
                return
            best_row = None
            best_ratio: Fraction | None = None
            for row_index, row in enumerate(self.rows):
                if row[entering] > 0:
                    ratio = row[-1] / row[entering]
                    if (best_ratio is None or ratio < best_ratio
                            or (ratio == best_ratio
                                and self.basis[row_index]
                                < self.basis[best_row])):  # Bland tiebreak
                        best_ratio = ratio
                        best_row = row_index
            if best_row is None:
                raise LPError("linear program is unbounded")
            self.pivot(best_row, entering)


def solve_lp(c: Sequence[_Number], a_ub: Sequence[Sequence[_Number]],
             b_ub: Sequence[_Number]) -> LPSolution:
    """Maximise ``c·x`` subject to ``a_ub x <= b_ub``, ``x >= 0``.

    Exact rational arithmetic throughout. Raises :class:`LPError` when the
    program is infeasible or unbounded.
    """
    num_vars = len(c)
    rows_in = [[_fraction(v) for v in row] for row in a_ub]
    rhs = [_fraction(v) for v in b_ub]
    if any(len(row) != num_vars for row in rows_in):
        raise LPError("constraint matrix width does not match objective")
    if len(rows_in) != len(rhs):
        raise LPError("constraint matrix height does not match rhs")

    num_rows = len(rows_in)
    num_slack = num_rows
    artificial_cols: list[int] = []

    # Layout: [x (num_vars) | slack (num_rows) | artificial (as needed) | rhs]
    tableau_rows: list[list[Fraction]] = []
    basis: list[int] = []
    for i in range(num_rows):
        row = list(rows_in[i])
        slack = [Fraction(0)] * num_slack
        b = rhs[i]
        if b >= 0:
            slack[i] = Fraction(1)
            tableau_rows.append(row + slack + [b])
            basis.append(num_vars + i)
        else:
            # Multiply by -1: -Ax - s = -b, then add an artificial basic.
            row = [-v for v in row]
            slack[i] = Fraction(-1)
            tableau_rows.append(row + slack + [-b])
            basis.append(-1)  # placeholder, artificial assigned below
            artificial_cols.append(i)

    num_art = len(artificial_cols)
    total_cols = num_vars + num_slack + num_art
    art_base = num_vars + num_slack
    for art_index, row_index in enumerate(artificial_cols):
        for j, row in enumerate(tableau_rows):
            row.insert(art_base + art_index,
                       Fraction(1) if j == row_index else Fraction(0))
        basis[row_index] = art_base + art_index

    if num_art:
        # Phase 1: maximise -(sum of artificials).
        phase1 = [Fraction(0)] * (total_cols + 1)
        for art_index in range(num_art):
            phase1[art_base + art_index] = Fraction(-1)
        # Price out the basic artificials.
        for row_index in artificial_cols:
            row = tableau_rows[row_index]
            phase1 = [a + b for a, b in zip(phase1, row)]
        tableau = _Tableau(tableau_rows, phase1, basis)
        tableau.optimise(total_cols)
        if tableau.objective[-1] != 0:
            raise LPError("linear program is infeasible")
        # Drive any artificial still basic (at zero) out of the basis.
        for row_index, basic in enumerate(tableau.basis):
            if basic >= art_base:
                pivot_col = next(
                    (col for col in range(art_base)
                     if tableau.rows[row_index][col] != 0), None)
                if pivot_col is not None:
                    tableau.pivot(row_index, pivot_col)
        tableau_rows = tableau.rows
        basis = tableau.basis

    # Phase 2 objective (zero out artificial columns so they never enter).
    objective = ([_fraction(v) for v in c]
                 + [Fraction(0)] * (num_slack + num_art) + [Fraction(0)])
    tableau = _Tableau(tableau_rows, objective, basis)
    # Price out basic variables with nonzero reduced cost.
    for row_index, basic in enumerate(tableau.basis):
        if basic < len(objective) - 1 and tableau.objective[basic] != 0:
            factor = tableau.objective[basic]
            tableau.objective = [
                a - factor * b
                for a, b in zip(tableau.objective, tableau.rows[row_index])]
    tableau.optimise(num_vars + num_slack)  # artificials never re-enter

    values = [Fraction(0)] * num_vars
    for row_index, basic in enumerate(tableau.basis):
        if basic < num_vars:
            values[basic] = tableau.rows[row_index][-1]
    return LPSolution(objective=-tableau.objective[-1], x=tuple(values))


def minimise_lp(c: Sequence[_Number], a_lb: Sequence[Sequence[_Number]],
                b_lb: Sequence[_Number]) -> LPSolution:
    """Minimise ``c·x`` subject to ``a_lb x >= b_lb``, ``x >= 0``.

    Implemented as ``maximise -c`` with negated constraints; the returned
    objective is the (positive) minimum.
    """
    negated_c = [-_fraction(v) for v in c]
    negated_a = [[-_fraction(v) for v in row] for row in a_lb]
    negated_b = [-_fraction(v) for v in b_lb]
    solution = solve_lp(negated_c, negated_a, negated_b)
    return LPSolution(objective=-solution.objective, x=solution.x)
