"""The AGM bound: fractional edge covers and their dual (Equation 1).

Three views of the same linear program, all exact:

* :func:`fractional_edge_cover` — the primal: minimum total weight
  assignment to edges covering every attribute. With uniform weights the
  optimum is the *symbolic exponent*: when every relation has size n, the
  worst-case join size is n^ρ* (Example 3.3: ρ* = 5 for the twig, 7/2
  for the full query).
* :func:`vertex_packing` — the paper's Equation 1: maximise Σ y_a subject
  to Σ_{a∈R} y_a ≤ 1 per relation. By LP duality its optimum equals the
  uniform edge cover's (Lemmas 3.1/3.2 rest on this).
* :func:`agm_bound` — the instance bound ∏ |R|^{w_R} for an optimal cover
  weighted by log |R|, i.e. the actual AGM number for given cardinalities.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from fractions import Fraction

from repro.core.hypergraph import Hypergraph
from repro.core.lp import minimise_lp, solve_lp
from repro.errors import QueryError


@dataclass(frozen=True)
class EdgeCover:
    """An optimal fractional edge cover."""

    weights: dict[str, Fraction]
    total: Fraction

    def support(self) -> dict[str, Fraction]:
        """Only the edges with nonzero weight."""
        return {name: w for name, w in self.weights.items() if w}


@dataclass(frozen=True)
class VertexPacking:
    """An optimal fractional vertex packing (the dual certificate)."""

    weights: dict[str, Fraction]
    total: Fraction


def fractional_edge_cover(hypergraph: Hypergraph,
                          costs: Mapping[str, float] | None = None
                          ) -> EdgeCover:
    """Minimise Σ cost_e · w_e s.t. every vertex is covered, w >= 0.

    ``costs`` defaults to 1 per edge (the symbolic exponent); pass
    ``log2 |R_e|`` per edge to get the exponent of the instance bound.
    """
    hypergraph.require_covered()
    edges = hypergraph.edges
    vertices = hypergraph.vertices
    c = [Fraction(1) if costs is None
         else Fraction(costs[edge.name]).limit_denominator(10 ** 12)
         for edge in edges]
    if any(value < 0 for value in c):
        raise QueryError("edge-cover costs must be non-negative")
    a_lb = [[Fraction(1) if vertex in edge.vertices else Fraction(0)
             for edge in edges] for vertex in vertices]
    b_lb = [Fraction(1)] * len(vertices)
    solution = minimise_lp(c, a_lb, b_lb)
    weights = {edge.name: value for edge, value in zip(edges, solution.x)}
    return EdgeCover(weights=weights, total=solution.objective)


def vertex_packing(hypergraph: Hypergraph) -> VertexPacking:
    """The paper's Equation 1: max Σ y_a s.t. Σ_{a∈e} y_a <= 1 per edge."""
    hypergraph.require_covered()
    edges = hypergraph.edges
    vertices = hypergraph.vertices
    c = [Fraction(1)] * len(vertices)
    a_ub = [[Fraction(1) if vertex in edge.vertices else Fraction(0)
             for vertex in vertices] for edge in edges]
    b_ub = [Fraction(1)] * len(edges)
    solution = solve_lp(c, a_ub, b_ub)
    weights = {vertex: value for vertex, value in zip(vertices, solution.x)}
    return VertexPacking(weights=weights, total=solution.objective)


def symbolic_exponent(hypergraph: Hypergraph) -> Fraction:
    """The exponent ρ*: worst-case join size is n^ρ* when all |R| = n."""
    return fractional_edge_cover(hypergraph).total


@dataclass(frozen=True)
class AGMBound:
    """The instance AGM bound with its optimal cover certificate."""

    cover: EdgeCover
    log2_bound: float

    @property
    def bound(self) -> float:
        """The bound as a float: ∏ |R|^{w_R}."""
        return 2.0 ** self.log2_bound

    @property
    def bound_ceiling(self) -> int:
        """Smallest integer >= the bound (what result counts compare to).

        A tiny epsilon absorbs float error in ``2**log2_bound`` so that
        e.g. an exact bound of 100 does not become ceil(100.0000000003).
        """
        return math.ceil(self.bound - 1e-9)


def agm_bound(hypergraph: Hypergraph,
              cardinalities: Mapping[str, int] | None = None) -> AGMBound:
    """The AGM bound ∏ |R_e|^{w_e} for the given instance cardinalities.

    Cardinalities default to those stored on the hypergraph's edges. An
    empty relation makes the bound 0 (its log cost is -inf; we special
    case it because the whole join is then empty).
    """
    sizes = dict(cardinalities) if cardinalities is not None \
        else hypergraph.cardinalities()
    for edge in hypergraph.edges:
        if edge.name not in sizes:
            raise QueryError(f"no cardinality for edge {edge.name!r}")
        if sizes[edge.name] < 0:
            raise QueryError(f"negative cardinality for {edge.name!r}")
    if any(sizes[edge.name] == 0 for edge in hypergraph.edges):
        zero_cover = EdgeCover(
            weights={e.name: Fraction(0) for e in hypergraph.edges},
            total=Fraction(0))
        return AGMBound(cover=zero_cover, log2_bound=float("-inf"))
    costs = {edge.name: math.log2(sizes[edge.name])
             for edge in hypergraph.edges}
    cover = fractional_edge_cover(hypergraph, costs)
    log2_bound = float(sum(Fraction(costs[name]) * weight
                           for name, weight in cover.weights.items()))
    return AGMBound(cover=cover, log2_bound=log2_bound)


def verify_cover(hypergraph: Hypergraph,
                 weights: Mapping[str, Fraction]) -> bool:
    """Is *weights* a feasible fractional edge cover?"""
    for vertex in hypergraph.vertices:
        covered = sum(weights.get(edge.name, Fraction(0))
                      for edge in hypergraph.edges_covering(vertex))
        if covered < 1:
            return False
    return all(weight >= 0 for weight in weights.values())


def verify_packing(hypergraph: Hypergraph,
                   weights: Mapping[str, Fraction]) -> bool:
    """Is *weights* a feasible fractional vertex packing (Equation 1)?"""
    for edge in hypergraph.edges:
        packed = sum(weights.get(vertex, Fraction(0))
                     for vertex in edge.vertices)
        if packed > 1:
            return False
    return all(weight >= 0 for weight in weights.values())
