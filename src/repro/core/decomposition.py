"""Twig decomposition — Section 3, Figure 2 of the paper.

An XML twig is rewritten into relational-like tables without loosening the
worst-case size bound:

1. **Cut every A-D edge**, splitting the twig into sub-twigs that contain
   only parent-child edges;
2. for each sub-twig, **enumerate its root-leaf paths**;
3. **treat each root-leaf path as a relation** whose attributes are the
   path's query-node names.

For Figure 2's twig ``A(/B, /D, //C(/E), //F(/H), //G)`` this yields
R3(A,B), R4(A,D), R5(C,E), R6(F,H), R7(G) — the paper's exact output.

The *cardinality* of a path relation over a document is the number of
distinct value tuples along matching P-C node chains; that is what the
multi-model AGM bound consumes, and what XJoin's tries index.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery


@dataclass(frozen=True)
class PathRelation:
    """One root-leaf path of a sub-twig, viewed as a relation."""

    name: str
    nodes: tuple[TwigNode, ...]

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    @property
    def arity(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"PathRelation({self.name}({', '.join(self.attributes)}))"


@dataclass(frozen=True)
class TwigDecomposition:
    """The full decomposition of one twig."""

    twig: TwigQuery
    subtwig_roots: tuple[TwigNode, ...]
    paths: tuple[PathRelation, ...]

    def path_for_attribute(self, name: str) -> tuple[PathRelation, ...]:
        """All path relations binding the given attribute."""
        return tuple(p for p in self.paths if name in p.attributes)


@dataclass(frozen=True)
class EdgeAtom:
    """One twig edge viewed as a binary relational atom.

    The accelerator backend's alternative to the root-leaf path
    decomposition above: instead of cutting A-D edges and enumerating
    P-C paths, *every* edge — either axis — becomes one binary atom
    ``E_parent_child(parent, child)`` over the region labels, with the
    axis kept as a range predicate (materialised by
    :func:`repro.xml.accel.edge_relation`). The twig is then exactly a
    tree-shaped conjunctive query: each non-root node appears in one
    atom as the child, so joining the atoms on the shared node
    variables yields precisely the embeddings.
    """

    name: str
    parent: TwigNode
    child: TwigNode

    @property
    def axis(self) -> Axis:
        return self.child.axis

    @property
    def attributes(self) -> tuple[str, str]:
        return (self.parent.name, self.child.name)

    def __repr__(self) -> str:
        return (f"EdgeAtom({self.name}({self.parent.name}, "
                f"{self.axis}{self.child.name}))")


def edge_atoms(twig: TwigQuery) -> tuple[EdgeAtom, ...]:
    """The accelerator's edge-atom decomposition of *twig* (pre-order)."""
    return tuple(EdgeAtom(f"E_{parent.name}_{child.name}", parent, child)
                 for parent, child in twig.edges())


def subtwig_root_nodes(twig: TwigQuery) -> list[TwigNode]:
    """Step 1: the roots of the sub-twigs obtained by cutting A-D edges.

    These are the twig root plus every node attached by a DESCENDANT axis.
    """
    return [node for node in twig.nodes()
            if node.parent is None or node.axis is Axis.DESCENDANT]


def pc_leaves(node: TwigNode) -> bool:
    """Is *node* a leaf of its sub-twig (no P-C children)?"""
    return not any(child.axis is Axis.CHILD for child in node.children)


def root_leaf_paths(subtwig_root: TwigNode) -> list[tuple[TwigNode, ...]]:
    """Step 2: all root-leaf paths of a P-C sub-twig."""
    paths: list[tuple[TwigNode, ...]] = []
    chain: list[TwigNode] = []

    def descend(node: TwigNode) -> None:
        chain.append(node)
        pc_children = [c for c in node.children if c.axis is Axis.CHILD]
        if not pc_children:
            paths.append(tuple(chain))
        else:
            for child in pc_children:
                descend(child)
        chain.pop()

    descend(subtwig_root)
    return paths


def decompose(twig: TwigQuery) -> TwigDecomposition:
    """Steps 1-3: the relational-like view of a twig (Figure 2)."""
    roots = subtwig_root_nodes(twig)
    paths: list[PathRelation] = []
    for root in roots:
        for node_chain in root_leaf_paths(root):
            name = f"{twig.name}[{'/'.join(n.name for n in node_chain)}]"
            paths.append(PathRelation(name=name, nodes=node_chain))
    return TwigDecomposition(twig=twig, subtwig_roots=tuple(roots),
                             paths=tuple(paths))


def _iter_path_chain_ids(view: ColumnarDocument, path: PathRelation
                         ) -> Iterator[tuple[int, ...]]:
    """Node-id chains matching the path's P-C pattern, via the columnar
    path index.

    A chain of consecutive P-C edges with tags t1/../tk ends at a node
    whose interned root tag path ends with that tag suffix, so the tag
    structure is checked **once per distinct document path**; per node
    only the parent-array ascent and the value predicates remain.
    """
    tags = tuple(node.tag for node in path.nodes)
    k = len(tags)
    leaf_tid = view.tag_index.get(tags[-1])
    if leaf_tid is None:
        return
    values = view.values
    parents = view.parents
    query_nodes = path.nodes
    predicated = any(q.predicate is not None for q in query_nodes)
    for pid in view.pids_by_last_tag.get(leaf_tid, ()):
        document_path = view.paths[pid]
        if len(document_path) < k or document_path[-k:] != tags:
            continue
        for nid in view.nids_by_path[pid]:
            chain = [nid]
            current = nid
            for _ in range(k - 1):
                current = parents[current]
                chain.append(current)
            chain.reverse()
            if predicated and not all(
                    q.matches_value(values[c])
                    for q, c in zip(query_nodes, chain)):
                continue
            yield tuple(chain)


def iter_path_chains(document: XMLDocument, path: PathRelation
                     ) -> Iterator[tuple[XMLNode, ...]]:
    """All node chains in *document* matching the path's P-C pattern.

    A chain instantiates consecutive path nodes as parent/child pairs with
    matching tags and value predicates.
    """
    view = columnar(document)
    nodes_of = view.nodes
    for chain in _iter_path_chain_ids(view, path):
        yield tuple(nodes_of[nid] for nid in chain)


def iter_path_value_rows(document: XMLDocument, path: PathRelation,
                         structural: frozenset[str] = frozenset()
                         ) -> Iterator[tuple]:
    """Value tuples of the path relation (may repeat; tries deduplicate).

    Attributes in *structural* bind valueless nodes by identity
    (:mod:`repro.core.surrogate`) instead of the conflating ``None``.
    Rows are read straight from the columnar value/start arrays — the
    paper's "we do not physically transform them into relational tables"
    now holds down to the node objects: none are touched.
    """
    from repro.core.surrogate import NodeSurrogate

    view = columnar(document)
    values = view.values
    starts = view.starts
    use_surrogate = [node.name in structural for node in path.nodes]
    for chain in _iter_path_chain_ids(view, path):
        row = []
        for nid, flag in zip(chain, use_surrogate):
            value = values[nid]
            if value is None and flag:
                value = NodeSurrogate(starts[nid])
            row.append(value)
        yield tuple(row)


def materialize_path_relation(document: XMLDocument,
                              path: PathRelation) -> Relation:
    """The path relation as an explicit (distinct) value relation.

    Used by the baseline, the bound computation and the test oracle; XJoin
    itself builds tries straight from :func:`iter_path_value_rows` without
    materialising a relation (the paper: "we do not physically transform
    them into relational tables").
    """
    return Relation(path.name, path.attributes,
                    iter_path_value_rows(document, path))


def path_relation_cardinality(document: XMLDocument,
                              path: PathRelation,
                              structural: frozenset[str] = frozenset()
                              ) -> int:
    """Distinct tuple count of the path relation in *document*.

    With *structural* attributes this counts surrogate-aware tuples —
    exactly what XJoin's tries store, so Lemma 3.5's bound and the
    algorithm see the same cardinalities.
    """
    return len(set(iter_path_value_rows(document, path, structural)))
