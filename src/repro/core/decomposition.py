"""Twig decomposition — Section 3, Figure 2 of the paper.

An XML twig is rewritten into relational-like tables without loosening the
worst-case size bound:

1. **Cut every A-D edge**, splitting the twig into sub-twigs that contain
   only parent-child edges;
2. for each sub-twig, **enumerate its root-leaf paths**;
3. **treat each root-leaf path as a relation** whose attributes are the
   path's query-node names.

For Figure 2's twig ``A(/B, /D, //C(/E), //F(/H), //G)`` this yields
R3(A,B), R4(A,D), R5(C,E), R6(F,H), R7(G) — the paper's exact output.

The *cardinality* of a path relation over a document is the number of
distinct value tuples along matching P-C node chains; that is what the
multi-model AGM bound consumes, and what XJoin's tries index.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig import Axis, TwigNode, TwigQuery


@dataclass(frozen=True)
class PathRelation:
    """One root-leaf path of a sub-twig, viewed as a relation."""

    name: str
    nodes: tuple[TwigNode, ...]

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    @property
    def arity(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"PathRelation({self.name}({', '.join(self.attributes)}))"


@dataclass(frozen=True)
class TwigDecomposition:
    """The full decomposition of one twig."""

    twig: TwigQuery
    subtwig_roots: tuple[TwigNode, ...]
    paths: tuple[PathRelation, ...]

    def path_for_attribute(self, name: str) -> tuple[PathRelation, ...]:
        """All path relations binding the given attribute."""
        return tuple(p for p in self.paths if name in p.attributes)


def subtwig_root_nodes(twig: TwigQuery) -> list[TwigNode]:
    """Step 1: the roots of the sub-twigs obtained by cutting A-D edges.

    These are the twig root plus every node attached by a DESCENDANT axis.
    """
    return [node for node in twig.nodes()
            if node.parent is None or node.axis is Axis.DESCENDANT]


def pc_leaves(node: TwigNode) -> bool:
    """Is *node* a leaf of its sub-twig (no P-C children)?"""
    return not any(child.axis is Axis.CHILD for child in node.children)


def root_leaf_paths(subtwig_root: TwigNode) -> list[tuple[TwigNode, ...]]:
    """Step 2: all root-leaf paths of a P-C sub-twig."""
    paths: list[tuple[TwigNode, ...]] = []
    chain: list[TwigNode] = []

    def descend(node: TwigNode) -> None:
        chain.append(node)
        pc_children = [c for c in node.children if c.axis is Axis.CHILD]
        if not pc_children:
            paths.append(tuple(chain))
        else:
            for child in pc_children:
                descend(child)
        chain.pop()

    descend(subtwig_root)
    return paths


def decompose(twig: TwigQuery) -> TwigDecomposition:
    """Steps 1-3: the relational-like view of a twig (Figure 2)."""
    roots = subtwig_root_nodes(twig)
    paths: list[PathRelation] = []
    for root in roots:
        for node_chain in root_leaf_paths(root):
            name = f"{twig.name}[{'/'.join(n.name for n in node_chain)}]"
            paths.append(PathRelation(name=name, nodes=node_chain))
    return TwigDecomposition(twig=twig, subtwig_roots=tuple(roots),
                             paths=tuple(paths))


def iter_path_chains(document: XMLDocument, path: PathRelation
                     ) -> Iterator[tuple[XMLNode, ...]]:
    """All node chains in *document* matching the path's P-C pattern.

    A chain instantiates consecutive path nodes as parent/child pairs with
    matching tags and value predicates.
    """
    first = path.nodes[0]
    chain: list[XMLNode] = []

    def descend(node: XMLNode, depth: int) -> Iterator[tuple[XMLNode, ...]]:
        chain.append(node)
        if depth + 1 == len(path.nodes):
            yield tuple(chain)
        else:
            want = path.nodes[depth + 1]
            for child in node.children:
                if child.tag == want.tag and want.matches_value(child.value):
                    yield from descend(child, depth + 1)
        chain.pop()

    for start in document.nodes(first.tag):
        if first.matches_value(start.value):
            yield from descend(start, 0)


def iter_path_value_rows(document: XMLDocument, path: PathRelation,
                         structural: frozenset[str] = frozenset()
                         ) -> Iterator[tuple]:
    """Value tuples of the path relation (may repeat; tries deduplicate).

    Attributes in *structural* bind valueless nodes by identity
    (:mod:`repro.core.surrogate`) instead of the conflating ``None``.
    """
    from repro.core.surrogate import node_representation

    use_surrogate = [node.name in structural for node in path.nodes]
    for chain in iter_path_chains(document, path):
        yield tuple(node_representation(node, flag)
                    for node, flag in zip(chain, use_surrogate))


def materialize_path_relation(document: XMLDocument,
                              path: PathRelation) -> Relation:
    """The path relation as an explicit (distinct) value relation.

    Used by the baseline, the bound computation and the test oracle; XJoin
    itself builds tries straight from :func:`iter_path_value_rows` without
    materialising a relation (the paper: "we do not physically transform
    them into relational tables").
    """
    return Relation(path.name, path.attributes,
                    iter_path_value_rows(document, path))


def path_relation_cardinality(document: XMLDocument,
                              path: PathRelation,
                              structural: frozenset[str] = frozenset()
                              ) -> int:
    """Distinct tuple count of the path relation in *document*.

    With *structural* attributes this counts surrogate-aware tuples —
    exactly what XJoin's tries store, so Lemma 3.5's bound and the
    algorithm see the same cardinalities.
    """
    return len(set(iter_path_value_rows(document, path, structural)))
