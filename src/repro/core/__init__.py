"""The paper's contribution: multi-model worst-case optimal joins.

Pipeline: decompose twigs into path relations (:mod:`decomposition`),
compute the combined AGM bound (:mod:`agm`, :mod:`lp`), evaluate with
XJoin (:mod:`xjoin`) or the traditional baseline (:mod:`baseline`).
"""

from repro.core.agm import (
    AGMBound,
    EdgeCover,
    VertexPacking,
    agm_bound,
    fractional_edge_cover,
    symbolic_exponent,
    verify_cover,
    verify_packing,
    vertex_packing,
)
from repro.core.baseline import baseline_join, relational_subquery, twig_subquery
from repro.core.decomposition import (
    PathRelation,
    TwigDecomposition,
    decompose,
    materialize_path_relation,
    path_relation_cardinality,
)
from repro.core.hypergraph import Hyperedge, Hypergraph
from repro.core.lp import LPSolution, minimise_lp, solve_lp
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.planner import attribute_order
from repro.core.validation import PartialStructureValidator, StructureValidator
from repro.core.xjoin import xjoin

__all__ = [
    "AGMBound",
    "EdgeCover",
    "Hyperedge",
    "Hypergraph",
    "LPSolution",
    "MultiModelQuery",
    "PartialStructureValidator",
    "PathRelation",
    "StructureValidator",
    "TwigBinding",
    "TwigDecomposition",
    "VertexPacking",
    "agm_bound",
    "attribute_order",
    "baseline_join",
    "decompose",
    "fractional_edge_cover",
    "materialize_path_relation",
    "minimise_lp",
    "path_relation_cardinality",
    "relational_subquery",
    "solve_lp",
    "symbolic_exponent",
    "twig_subquery",
    "verify_cover",
    "verify_packing",
    "vertex_packing",
    "xjoin",
]
