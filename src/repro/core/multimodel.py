"""Multi-model queries: relational tables joined with XML twigs.

A :class:`MultiModelQuery` bundles relational tables and twig/document
bindings into one conjunctive query. Attribute identity is by name: a
twig node named ``ISBN`` joins with a relational column ``ISBN`` (Figure 1
of the paper). The class exposes the combined query hypergraph (relation
schemas plus decomposed twig path relations), the worst-case size bound of
Section 3, and a naive evaluation oracle; the optimal evaluator is
:func:`repro.core.xjoin.xjoin` and the traditional one
:func:`repro.core.baseline.baseline_join`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.core.agm import AGMBound, agm_bound, symbolic_exponent, vertex_packing
from repro.core.decomposition import (
    TwigDecomposition,
    decompose,
    materialize_path_relation,
    path_relation_cardinality,
)
from repro.core.hypergraph import Hypergraph
from repro.errors import QueryError
from repro.instrumentation import JoinStats
from repro.relational.operators import naive_multiway_join
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument
from repro.xml.navigation import match_relation
from repro.xml.twig import TwigQuery


@dataclass(frozen=True)
class TwigBinding:
    """A twig pattern evaluated against one document."""

    twig: TwigQuery
    document: XMLDocument

    @property
    def name(self) -> str:
        return self.twig.name


class MultiModelQuery:
    """A conjunctive query over relational tables and XML twigs.

    >>> # doctest-style sketch; see examples/ for runnable versions.
    >>> # q = MultiModelQuery([orders], [TwigBinding(twig, invoices)])
    """

    def __init__(self, relations: Sequence[Relation] = (),
                 twigs: Sequence[TwigBinding] = (), *, name: str = "Q"):
        self.relations = list(relations)
        self.twigs = list(twigs)
        self.name = name
        if not self.relations and not self.twigs:
            raise QueryError("a multi-model query needs at least one input")
        names = [r.name for r in self.relations] + [t.name for t in self.twigs]
        if len(names) != len(set(names)):
            raise QueryError(f"duplicate input names in query: {names!r}")
        self.decompositions: dict[str, TwigDecomposition] = {
            binding.name: decompose(binding.twig) for binding in self.twigs}

    # -- attributes ------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes, relational first, in first-appearance order."""
        seen: list[str] = []
        for relation in self.relations:
            for attribute in relation.schema:
                if attribute not in seen:
                    seen.append(attribute)
        for binding in self.twigs:
            for attribute in binding.twig.attributes:
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)

    def binding_for(self, twig_name: str) -> TwigBinding:
        for binding in self.twigs:
            if binding.name == twig_name:
                return binding
        raise QueryError(f"no twig named {twig_name!r} in query")

    def structural_attributes(self, binding: TwigBinding) -> frozenset[str]:
        """Twig attributes of *binding* that join with nothing outside it.

        These are safe to bind by node identity when valueless (see
        :mod:`repro.core.surrogate`): they appear in no relational schema
        and in no other twig, so only this twig's own path relations ever
        intersect on them.
        """
        outside: set[str] = set()
        for relation in self.relations:
            outside.update(relation.schema.attributes)
        for other in self.twigs:
            if other.name != binding.name:
                outside.update(other.twig.attributes)
        return frozenset(a for a in binding.twig.attributes
                         if a not in outside)

    # -- the combined hypergraph and bounds --------------------------------

    def hypergraph(self, *, with_cardinalities: bool = True) -> Hypergraph:
        """Relation schemas plus decomposed path relations as hyperedges.

        With ``with_cardinalities`` the edges carry instance sizes:
        relation cardinalities and distinct-value-tuple counts of the path
        relations.
        """
        graph = Hypergraph()
        for relation in self.relations:
            graph.add_edge(
                relation.name, relation.schema.attributes,
                cardinality=len(relation) if with_cardinalities else None)
        for binding in self.twigs:
            decomposition = self.decompositions[binding.name]
            structural = self.structural_attributes(binding)
            for path in decomposition.paths:
                cardinality = (
                    path_relation_cardinality(binding.document, path,
                                              structural)
                    if with_cardinalities else None)
                graph.add_edge(path.name, path.attributes,
                               cardinality=cardinality)
        return graph

    def size_bound(self) -> AGMBound:
        """The instance worst-case size bound (Section 3, via Equation 1's
        primal form weighted by log cardinalities)."""
        return agm_bound(self.hypergraph())

    def symbolic_exponent(self) -> Fraction:
        """ρ*: the bound is n^ρ* when every input has cardinality n."""
        return symbolic_exponent(self.hypergraph(with_cardinalities=False))

    def dual_packing(self):
        """The paper's Equation 1 certificate (max Σ y_a)."""
        return vertex_packing(self.hypergraph(with_cardinalities=False))

    # -- reference evaluation ---------------------------------------------

    def twig_relations(self) -> list[Relation]:
        """Each twig's full value-tuple answer (naive matcher)."""
        return [match_relation(binding.document, binding.twig)
                for binding in self.twigs]

    def path_relations(self) -> list[Relation]:
        """All decomposed path relations, materialised (for baselines and
        bound cross-checks; XJoin does not call this)."""
        out = []
        for binding in self.twigs:
            decomposition = self.decompositions[binding.name]
            for path in decomposition.paths:
                out.append(materialize_path_relation(binding.document, path))
        return out

    def naive_join(self, *, stats: JoinStats | None = None) -> Relation:
        """Correctness oracle: natural join of the relational tables with
        each twig's full (naively computed) answer relation."""
        inputs = self.relations + self.twig_relations()
        result = naive_multiway_join(inputs, name=self.name)
        return result.project(self.attributes, name=self.name)

    def __repr__(self) -> str:
        return (f"MultiModelQuery({self.name!r}, "
                f"{len(self.relations)} relations, {len(self.twigs)} twigs)")
