"""Attribute expansion orders for XJoin (Algorithm 1's input ``PA``).

Any attribute order keeps XJoin worst-case optimal (the bound argument is
order-independent), but constants differ wildly — the ablation benchmark
``bench_ablation_order`` quantifies this. Provided policies:

* ``given``  — the caller's explicit order, validated.
* ``appearance`` — relational schemas first, then twig pre-order (default).
* ``connected`` — greedy: start from the attribute with the smallest
  candidate domain, then repeatedly pick the attribute that shares an edge
  with the bound set (preferring small domains), avoiding accidental
  cartesian expansions.
* ``domain`` — globally sort by estimated candidate-domain size.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph
from repro.core.multimodel import MultiModelQuery
from repro.errors import PlanError


def _domain_estimates(query: MultiModelQuery) -> dict[str, int]:
    """Per-attribute candidate-domain estimate: the smallest number of
    distinct values any input offers for that attribute."""
    estimates: dict[str, int] = {}

    def shrink(attribute: str, count: int) -> None:
        current = estimates.get(attribute)
        if current is None or count < current:
            estimates[attribute] = count

    for relation in query.relations:
        for attribute in relation.schema:
            shrink(attribute, len(relation.distinct_values(attribute)))
    for binding in query.twigs:
        for query_node in binding.twig.nodes():
            values = {node.value
                      for node in binding.document.nodes(query_node.tag)
                      if query_node.matches_value(node.value)}
            shrink(query_node.name, len(values))
    return estimates


def appearance_order(query: MultiModelQuery) -> tuple[str, ...]:
    """Relational attributes first, then twig attributes, as they appear."""
    return query.attributes


def domain_order(query: MultiModelQuery) -> tuple[str, ...]:
    """Attributes sorted by estimated domain size (smallest first)."""
    estimates = _domain_estimates(query)
    return tuple(sorted(query.attributes,
                        key=lambda a: (estimates.get(a, 0), a)))


def connected_order(query: MultiModelQuery) -> tuple[str, ...]:
    """Greedy connected order over the query hypergraph."""
    graph: Hypergraph = query.hypergraph(with_cardinalities=False)
    estimates = _domain_estimates(query)
    remaining = set(query.attributes)
    order: list[str] = []

    def neighbours(attribute: str) -> set[str]:
        out: set[str] = set()
        for edge in graph.edges_covering(attribute):
            out.update(edge.vertices)
        out.discard(attribute)
        return out

    connected: set[str] = set()
    while remaining:
        if connected & remaining:
            pool = connected & remaining
        else:
            pool = remaining  # start (or restart on a disconnected part)
        pick = min(pool, key=lambda a: (estimates.get(a, 0), a))
        order.append(pick)
        remaining.discard(pick)
        connected.update(neighbours(pick))
    return tuple(order)


_POLICIES = {
    "appearance": appearance_order,
    "domain": domain_order,
    "connected": connected_order,
}


def attribute_order(query: MultiModelQuery,
                    order: "str | tuple[str, ...] | list[str] | None" = None
                    ) -> tuple[str, ...]:
    """Resolve an order argument: a policy name, an explicit order, or
    None (the ``appearance`` default)."""
    if order is None:
        return appearance_order(query)
    if isinstance(order, str):
        try:
            policy = _POLICIES[order]
        except KeyError:
            raise PlanError(
                f"unknown order policy {order!r}; "
                f"choose from {sorted(_POLICIES)!r}") from None
        return policy(query)
    explicit = tuple(order)
    if sorted(explicit) != sorted(query.attributes):
        raise PlanError(
            f"order {list(explicit)!r} is not a permutation of the query "
            f"attributes {sorted(query.attributes)!r}")
    return explicit
