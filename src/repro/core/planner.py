"""Attribute expansion orders for XJoin (Algorithm 1's input ``PA``).

Any attribute order keeps XJoin worst-case optimal (the bound argument is
order-independent), but constants differ wildly — the ablation benchmark
``bench_ablation_order`` quantifies this.

The policies now live in :mod:`repro.engine.planner` as named strategies
of the stats-driven planner, where the ``domain`` and ``connected``
estimates come from *cached* relation statistics
(:func:`repro.engine.planner.cached_relation_stats`) instead of rescanning
``distinct_values`` on every call. This module re-exports them under
their historical names:

* ``given``  — the caller's explicit order, validated.
* ``appearance`` — relational schemas first, then twig pre-order (default).
* ``connected`` — greedy: start from the attribute with the smallest
  candidate domain, then repeatedly pick the attribute that shares an edge
  with the bound set (preferring small domains), avoiding accidental
  cartesian expansions.
* ``domain`` — globally sort by estimated candidate-domain size.
"""

from __future__ import annotations

from repro.engine.planner import (  # noqa: F401  (re-exported API)
    ORDER_STRATEGIES as _POLICIES,
    appearance_order,
    attribute_order,
    connected_order,
    domain_order,
)

__all__ = [
    "appearance_order",
    "attribute_order",
    "connected_order",
    "domain_order",
]
