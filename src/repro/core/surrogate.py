"""Node surrogates: identity bindings for valueless twig nodes.

The decomposed path relations are *value*-level: a path chain becomes the
tuple of its nodes' typed text values. For container elements with no
text (e.g. every ``orderLine`` in Figure 1) that value is ``None``, which
conflates all of them — the value join of the paths (orderLine, ISBN) and
(orderLine, price) would then pair every ISBN with every price, a
cartesian blow-up the paper's node-level analysis ("each tag consists of
n nodes") never exhibits.

XJoin therefore represents such *structural* attributes — twig attributes
that join with no relational column and no other twig — by a
:class:`NodeSurrogate` wrapping the node's identity (its region ``start``)
whenever the node has no value. Same node ⇒ same surrogate, so the path
tries still intersect correctly; different nodes stay distinct, so the
per-line linkage survives. Surrogates are erased (back to ``None``) in
the final result, preserving the value-level query semantics.

The size bound is computed over the same surrogate-aware cardinalities,
keeping Lemma 3.5 aligned with what the tries actually store.
"""

from __future__ import annotations

from repro.relational.schema import Value
from repro.xml.model import XMLNode


class NodeSurrogate:
    """An opaque stand-in for one XML node's identity."""

    __slots__ = ("start",)

    def __init__(self, start: int):
        self.start = start

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeSurrogate):
            return self.start == other.start
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("NodeSurrogate", self.start))

    def __repr__(self) -> str:
        return f"NodeSurrogate({self.start:012d})"


def node_representation(node: XMLNode, use_surrogate: bool) -> Value:
    """The join-value of *node*: its typed text, or its identity when it
    has none and the attribute is structural."""
    value = node.value
    if value is None and use_surrogate:
        assert node.start is not None, "document must be indexed"
        return NodeSurrogate(node.start)
    return value


def erase_surrogates(row: tuple) -> tuple:
    """Map surrogates back to None (the value-level semantics)."""
    return tuple(None if isinstance(value, NodeSurrogate) else value
                 for value in row)
