"""The asyncio query service: snapshot reads under a single writer.

One :class:`ReproService` hosts one corpus. Consistency comes from three
structural rules, not from locks:

1. **Private trees per session.** A :class:`~repro.updates.session.
   QuerySession`'s editors patch documents *in place*; sharing one tree
   between sessions would let one client's write corrupt another's
   maintained twig answers mid-read. So every session owns clones of the
   corpus documents (immutable relations are shared), all built with
   canonical labels, and the service keeps them synchronized by applying
   every update batch to the master and to every open session.
2. **Atomic batches.** A batch is validated against the master, then
   applied to all sessions in one synchronous step of the single writer
   task — no ``await`` between the first and last mutation. Snapshots
   are pinned between steps of the event loop, so a pin always observes
   a whole number of batches: torn reads are impossible by construction.
3. **Detach before offload.** A query may only leave the event-loop
   thread once its snapshot is *detached* (every pinned document frozen
   into a clone, every relation an immutable retained object) and its
   inputs are resolved; the worker thread then races nothing.

The writer queue is bounded: when producers outrun the writer the
service answers ``backpressure`` instead of buffering without limit, and
per-tenant ``pending_updates`` quotas stop one tenant from filling the
shared queue.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.engine.adaptive import AdaptivePlanner, FeedbackStore
from repro.engine.planner import plan_query, run_query
from repro.errors import ReproError, ServiceError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.service.cache import PlanCache
from repro.service.corpus import corpus_query
from repro.service.protocol import (
    decode_message,
    encode_message,
    error_response,
    ok_response,
    require_field,
    rows_to_wire,
    validate_request,
    validate_update_ops,
)
from repro.service.tenancy import SessionManager, SessionState, TenantQuota
from repro.updates.session import QuerySession
from repro.xml.model import XMLDocument
from repro.xml.parser import parse_element_tree


class ReproService:
    """One corpus, many tenants, one writer, snapshot-consistent reads."""

    def __init__(self, corpus: "str | MultiModelQuery" = "figure1", *,
                 quota: TenantQuota | None = None,
                 queue_limit: int = 32,
                 offload_threshold: int = 4096,
                 workers: int = 0,
                 plan_cache: PlanCache | None = None,
                 adaptive: bool = True):
        if isinstance(corpus, str):
            self.corpus_spec = corpus
            query = corpus_query(corpus)
        else:
            self.corpus_spec = corpus.name
            query = corpus
        #: The corpus's current state (and the write path's oracle).
        self.master = QuerySession(query)
        self.sessions = SessionManager(quota)
        self.plan_cache = plan_cache or PlanCache()
        #: The adaptive planner behind un-overridden snapshot queries:
        #: races plans per query signature, learns cardinality
        #: corrections from every executed snapshot query, and keys the
        #: shared plan cache by its feedback epoch. Inputs are stamped
        #: *logically* (the applied-batch count) because snapshot
        #: queries run over detached per-snapshot clones: equal batch
        #: counts are equal logical states, so corrections learned from
        #: one tenant's snapshot apply to every tenant at that batch
        #: count — and any applied batch retires them at once.
        self.adaptive = AdaptivePlanner(store=FeedbackStore(
            stamp_fn=self._logical_stamps)) if adaptive else None
        self.queue_limit = queue_limit
        #: Input-size floor (rows + nodes) above which a detached
        #: snapshot query is evaluated off the event-loop thread.
        self.offload_threshold = offload_threshold
        #: Worker processes for offloaded queries (0 = in-thread).
        self.workers = workers
        #: Whole update batches applied since startup; every snapshot
        #: records the value at pin time, so clients can correlate an
        #: answer with the exact prefix of the update stream it reflects.
        self.batches_applied = 0
        self.updates_applied = 0
        self.queries_served = 0
        self.offloaded_queries = 0
        self._queue: "asyncio.Queue | None" = None
        self._writer_task: "asyncio.Task | None" = None
        self._shutdown_event: "asyncio.Event | None" = None
        self._closing = False

    def _logical_stamps(self, query: MultiModelQuery) -> dict[str, tuple]:
        """Batch-count version stamps for the feedback store (see
        ``adaptive`` in ``__init__``)."""
        stamp = ("batches", self.batches_applied)
        stamps = {relation.name: stamp for relation in query.relations}
        for binding in query.twigs:
            stamps[binding.name] = stamp
        return stamps

    # -- lifecycle ---------------------------------------------------------

    def _shutdown(self) -> asyncio.Event:
        if self._shutdown_event is None:
            self._shutdown_event = asyncio.Event()
        return self._shutdown_event

    def _ensure_writer(self) -> asyncio.Queue:
        """The single-writer queue (task spawned on first update)."""
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.queue_limit)
            self._writer_task = asyncio.get_running_loop().create_task(
                self._writer_loop())
        return self._queue

    async def _writer_loop(self) -> None:
        """Drain the update queue, one atomic batch per step."""
        assert self._queue is not None
        while True:
            ops, tenant, future = await self._queue.get()
            try:
                if not future.cancelled():
                    future.set_result(self._apply_batch(ops))
            except Exception as error:  # surfaced to the one requester
                if not future.cancelled():
                    future.set_exception(error)
            finally:
                tenant.pending_updates -= 1
                self._queue.task_done()

    async def aclose(self) -> None:
        """Release every session and stop the writer task."""
        self._closing = True
        for state in self.sessions.all_states():
            state.release_all()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
            self._writer_task = None
        self._shutdown().set()

    # -- session construction ----------------------------------------------

    def _open_session(self) -> QuerySession:
        """A private session over the corpus's *current* state.

        Relations are immutable and shared with the master; documents
        are cloned (fresh canonical labels — identical to the master's,
        which the delta layer keeps canonical across patches).
        """
        master = self.master
        relations = [master.relations[relation.name].relation
                     for relation in master.query.relations]
        clones: dict[int, XMLDocument] = {}
        twigs = []
        for binding in master.query.twigs:
            clone = clones.get(id(binding.document))
            if clone is None:
                clone = XMLDocument(binding.document.root.copy())
                clones[id(binding.document)] = clone
            twigs.append(TwigBinding(binding.twig, clone))
        return QuerySession(MultiModelQuery(relations, twigs,
                                            name=master.query.name))

    # -- the update path ---------------------------------------------------

    def _resolve_document_op(self, session: QuerySession,
                             op: dict[str, Any]):
        """(document, node) for one document-addressing operation."""
        document = session.document_of(op["input"])
        start = op.get("parent_start", op.get("start"))
        node = document.node_by_start(start)
        if node is None:
            raise ServiceError(
                "update",
                f"input {op['input']!r} has no node with start label "
                f"{start} at the current version")
        return document, node

    def _validate_batch(self, ops: list[dict[str, Any]]) -> None:
        """All-or-nothing gate: check every op against the master state.

        Sessions are synchronized with the master batch-for-batch and
        labelings are canonical, so master-validity implies validity in
        every session — a batch either applies everywhere or nowhere.
        """
        master = self.master
        for op in ops:
            kind = op["kind"]
            if kind in ("insert", "delete"):
                versioned = master.relations.get(op["relation"])
                if versioned is None:
                    raise ServiceError(
                        "update",
                        f"unknown relation {op['relation']!r}; choose "
                        f"from {sorted(master.relations)!r}")
                if len(op["row"]) != versioned.relation.schema.arity:
                    raise ServiceError(
                        "update",
                        f"relation {op['relation']!r} has arity "
                        f"{versioned.relation.schema.arity}, row "
                        f"{op['row']!r} has {len(op['row'])}")
                continue
            if op["input"] not in master.answers:
                raise ServiceError(
                    "update",
                    f"unknown twig input {op['input']!r}; choose from "
                    f"{sorted(master.answers)!r}")
            _document, node = self._resolve_document_op(master, op)
            if kind == "insert_subtree":
                try:
                    parse_element_tree(op["xml"])
                except ReproError as error:
                    raise ServiceError(
                        "update", f"invalid subtree XML: {error}") from None
                index = op.get("index")
                if index is not None and not (
                        isinstance(index, int)
                        and 0 <= index <= len(node.children)):
                    raise ServiceError(
                        "update",
                        f"insert index {index!r} out of range for a node "
                        f"with {len(node.children)} children")
            elif kind == "delete_subtree" and node.parent is None:
                raise ServiceError("update",
                                   "cannot delete the document root")

    def _apply_op(self, session: QuerySession, op: dict[str, Any]) -> None:
        """Apply one validated operation to one session."""
        kind = op["kind"]
        if kind == "insert":
            session.insert(op["relation"], tuple(op["row"]))
        elif kind == "delete":
            session.delete(op["relation"], tuple(op["row"]))
        elif kind == "insert_subtree":
            _document, parent = self._resolve_document_op(session, op)
            session.insert_subtree(op["input"], parent,
                                   parse_element_tree(op["xml"]),
                                   index=op.get("index"))
        elif kind == "delete_subtree":
            _document, node = self._resolve_document_op(session, op)
            session.delete_subtree(op["input"], node)
        else:  # change_value
            _document, node = self._resolve_document_op(session, op)
            session.change_value(op["input"], node, op["text"])

    def _apply_batch(self, ops: list[dict[str, Any]]) -> int:
        """Validate, then apply one batch everywhere. Fully synchronous:
        between the first and last mutation no coroutine runs, so every
        pin (and every read) sees a whole number of batches."""
        self._validate_batch(ops)
        targets = [self.master] + [state.session
                                   for state in self.sessions.all_states()]
        for op in ops:
            for session in targets:
                self._apply_op(session, op)
        self.batches_applied += 1
        self.updates_applied += len(ops)
        if self.adaptive is not None:
            # Retire cached plans built against the pre-batch stats:
            # the epoch is part of every plan-cache key.
            self.adaptive.store.bump_epoch()
        return self.batches_applied

    # -- the read path -----------------------------------------------------

    def _plan_for(self, query: MultiModelQuery, batches: int,
                  algorithm: "str | None",
                  order: "str | tuple | None"
                  ) -> tuple[str, tuple, tuple]:
        """(algorithm, order, twig algorithms) via the shared plan cache.

        Keyed by (corpus, batch count, stats epoch, overrides): any two
        sessions at the same batch count hold identical logical state,
        so their plans are interchangeable — including across tenants,
        which is what makes the cache worth sharing. The stats-epoch
        component (bumped by the feedback loop on material correction
        changes and by every applied update batch) keys out plans built
        against drifted statistics instead of serving them forever.

        Un-overridden queries are planned by the adaptive planner — the
        raced winner is what lands in the shared cache, so tenants
        hitting the cache benefit from a race they never ran.
        """
        order_key = tuple(order) if isinstance(order, list) else order
        epoch = self.adaptive.epoch if self.adaptive is not None else -1
        key = (self.corpus_spec, batches, epoch, algorithm, order_key)
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        if self.adaptive is not None and algorithm is None \
                and order is None:
            plan = self.adaptive.plan(query)
        else:
            plan = plan_query(query, algorithm=algorithm, order=order)
        # The twig matchers travel with the cached plan so a hit also
        # skips choose_twig_algorithm's per-twig stats reads (and the
        # response can report which backend — e.g. ``accel`` — served
        # each twig input without replanning).
        resolved = (plan.algorithm, plan.order, plan.twig_algorithms)
        self.plan_cache.put(key, resolved)
        return resolved

    def _query_cost(self, query: MultiModelQuery) -> int:
        """A cheap input-size proxy deciding thread offload."""
        return (sum(len(relation) for relation in query.relations)
                + sum(binding.document.size() for binding in query.twigs))

    async def _evaluate_snapshot(self, state: SessionState,
                                 snapshot_id: str,
                                 message: dict[str, Any]) -> dict[str, Any]:
        snapshot = state.snapshots.get(snapshot_id)
        if snapshot is None:
            raise ServiceError(
                "unknown_snapshot",
                f"session {state.sid!r} has no snapshot {snapshot_id!r}")
        batches = snapshot.metadata.get("batches", 0)
        algorithm = message.get("algorithm")
        order = message.get("order")
        if not (message.get("evaluate") or algorithm or order):
            relation = snapshot.answer()
            return {"rows": rows_to_wire(relation.rows),
                    "attributes": list(relation.schema.attributes),
                    "version": snapshot.version, "batches": batches,
                    "mode": "answer"}
        # Resolve inputs and plan on the loop thread; offload only once
        # the snapshot no longer touches anything the writer mutates.
        snapshot.detach()
        query = snapshot.query()
        adaptive_run = (self.adaptive is not None and algorithm is None
                        and order is None)
        algorithm, order, twigs = self._plan_for(query, batches, algorithm,
                                                 order)
        stats = JoinStats() if adaptive_run else None
        if self._query_cost(query) >= self.offload_threshold:
            self.offloaded_queries += 1
            relation = await asyncio.to_thread(
                run_query, query, algorithm=algorithm, order=order,
                workers=self.workers, stats=stats)
            offloaded = True
        else:
            relation = run_query(query, algorithm=algorithm, order=order,
                                 stats=stats)
            offloaded = False
        if adaptive_run and stats is not None:
            # Close the feedback loop: fold this query's observed stage
            # sizes into the shared correction store.
            self.adaptive.observe(query, tuple(order), stats)
        return {"rows": rows_to_wire(relation.rows),
                "attributes": list(relation.schema.attributes),
                "version": snapshot.version, "batches": batches,
                "mode": "run", "algorithm": algorithm,
                "twigs": dict(twigs), "offloaded": offloaded}

    def _evaluate_live(self, state: SessionState,
                       message: dict[str, Any]) -> dict[str, Any]:
        session = state.session
        if message.get("evaluate") or message.get("algorithm"):
            relation = session.run(message.get("algorithm"))
            mode = "run"
        else:
            relation = session.answer()
            mode = "answer"
        return {"rows": rows_to_wire(relation.rows),
                "attributes": list(relation.schema.attributes),
                "version": session.version,
                "batches": self.batches_applied, "mode": mode}

    # -- request dispatch --------------------------------------------------

    async def handle_request(self, message: dict[str, Any]
                             ) -> dict[str, Any]:
        """One request in, one response envelope out (never raises)."""
        request_id = message.get("id")
        try:
            op = validate_request(message)
            handler = getattr(self, f"_op_{op}")
            fields = await handler(message)
            return ok_response(request_id, **fields)
        except Exception as error:  # noqa: BLE001 — becomes the envelope
            return error_response(request_id, error)

    async def handle_line(self, line: "bytes | str") -> bytes:
        """One wire line in, one encoded response line out."""
        try:
            message = decode_message(line)
        except ServiceError as error:
            return encode_message(error_response(None, error))
        return encode_message(await self.handle_request(message))

    # Each _op_* returns the success-envelope fields for one operation.

    async def _op_ping(self, message: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "batches": self.batches_applied}

    async def _op_corpus(self, message: dict[str, Any]) -> dict[str, Any]:
        master = self.master
        return {
            "corpus": self.corpus_spec,
            "attributes": list(master.query.attributes),
            "relations": {name: len(versioned.relation)
                          for name, versioned in master.relations.items()},
            "inputs": {name: answer.document.size() if hasattr(
                answer, "document") else 0
                for name, answer in master.answers.items()},
            "batches": self.batches_applied,
        }

    async def _op_open(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant = require_field(message, "tenant", str)
        state = self.sessions.admit_session(tenant, self._open_session())
        return {"session": state.sid, "version": state.session.version,
                "batches": self.batches_applied}

    async def _op_close(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant = require_field(message, "tenant", str)
        sid = require_field(message, "session", str)
        self.sessions.close_session(tenant, sid)
        return {"closed": sid}

    async def _op_pin(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant = require_field(message, "tenant", str)
        sid = require_field(message, "session", str)
        state = self.sessions.state(tenant, sid)
        self.sessions.admit_snapshot(state)
        snapshot = state.session.pin()
        snapshot.metadata["batches"] = self.batches_applied
        snapshot_id = state.register_snapshot(snapshot)
        return {"snapshot": snapshot_id, "version": snapshot.version,
                "batches": self.batches_applied}

    async def _op_release(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant = require_field(message, "tenant", str)
        sid = require_field(message, "session", str)
        snapshot_id = require_field(message, "snapshot", str)
        state = self.sessions.state(tenant, sid)
        snapshot = state.snapshots.pop(snapshot_id, None)
        if snapshot is None:
            raise ServiceError(
                "unknown_snapshot",
                f"session {sid!r} has no snapshot {snapshot_id!r}")
        snapshot.release()
        return {"released": snapshot_id}

    async def _op_query(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant = require_field(message, "tenant", str)
        sid = require_field(message, "session", str)
        state = self.sessions.state(tenant, sid)
        self.queries_served += 1
        snapshot_id = message.get("snapshot")
        if snapshot_id is not None:
            return await self._evaluate_snapshot(state, snapshot_id,
                                                 message)
        return self._evaluate_live(state, message)

    async def _op_update(self, message: dict[str, Any]) -> dict[str, Any]:
        tenant_name = require_field(message, "tenant", str)
        ops = validate_update_ops(message.get("ops"))
        queue = self._ensure_writer()
        tenant = self.sessions.admit_update(tenant_name)
        future = asyncio.get_running_loop().create_future()
        try:
            queue.put_nowait((ops, tenant, future))
        except asyncio.QueueFull:
            tenant.pending_updates -= 1
            raise ServiceError(
                "backpressure",
                f"the update queue is full ({self.queue_limit} batches); "
                f"retry after in-flight updates drain") from None
        batches = await future
        return {"applied": len(ops), "batches": batches}

    async def _op_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        return {
            "corpus": self.corpus_spec,
            "batches": self.batches_applied,
            "updates": self.updates_applied,
            "queries": self.queries_served,
            "offloaded": self.offloaded_queries,
            "queue_depth": (self._queue.qsize()
                            if self._queue is not None else 0),
            "tenants": self.sessions.counts(),
            "plan_cache": self.plan_cache.stats(),
            "adaptive": (dict(self.adaptive.store.stats(),
                              races=self.adaptive.racer.races)
                         if self.adaptive is not None else None),
        }

    async def _op_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        await self.aclose()
        return {"bye": True}

    # -- transports --------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One TCP client: a line in, a line out, until EOF or shutdown."""
        try:
            while not self._closing:
                line = await reader.readline()
                if not line:
                    break
                writer.write(await self.handle_line(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> None:
        """Serve line-JSON over TCP until a ``shutdown`` request.

        With ``port=0`` the kernel picks a free port; the actual one is
        printed as ``repro serve: listening on HOST:PORT`` (machine-
        readable — the CI smoke step and the bench harness parse it).
        """
        server = await asyncio.start_server(self._serve_connection,
                                            host, port)
        actual_port = server.sockets[0].getsockname()[1]
        print(f"repro serve: listening on {host}:{actual_port}",
              flush=True)
        async with server:
            await self._shutdown().wait()

    async def serve_stdio(self) -> None:
        """Serve line-JSON on stdin/stdout until EOF or ``shutdown``."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                await self.aclose()
                break
            sys.stdout.buffer.write(await self.handle_line(line))
            sys.stdout.buffer.flush()

    def __repr__(self) -> str:
        return (f"ReproService({self.corpus_spec!r}, "
                f"{len(self.sessions.all_states())} sessions, "
                f"{self.batches_applied} batches)")
