"""Named corpora: the instances ``repro serve`` can host.

A corpus *spec* is a name with optional ``key=value`` parameters —
``figure1``, ``bookstore:orders=40,users=12``, ``triangle:n=8`` — and
resolves to a freshly built
:class:`~repro.core.multimodel.MultiModelQuery`. A bare integer after
the colon is the corpus's natural size knob — ``dblp:5000`` (records),
``xmark-stream:4`` (scale factor) — sugar for the streamed-generator
corpora. Every resolution builds new objects (fresh relations, fresh
documents), so two services — or a service and its test oracle —
hosting the same spec start from byte-identical but fully independent
state.
"""

from __future__ import annotations

from repro.core.multimodel import MultiModelQuery
from repro.data.scenarios import bookstore_instance, figure1_query
from repro.data.synthetic import agm_tight_triangle, skewed_triangle
from repro.errors import ServiceError


def _parse_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split ``name:key=value,...`` into a name and int parameters."""
    name, _, tail = spec.partition(":")
    parameters: dict[str, int] = {}
    if tail:
        for part in tail.split(","):
            key, separator, value = part.partition("=")
            if not separator or not key:
                try:
                    # Bare positional int: the corpus's size knob
                    # (``dblp:5000``, ``xmark-stream:4``).
                    parameters["_"] = int(part)
                    continue
                except ValueError:
                    pass
                raise ServiceError(
                    "bad_request",
                    f"malformed corpus parameter {part!r} in {spec!r} "
                    f"(expected key=value)")
            try:
                parameters[key.strip()] = int(value)
            except ValueError:
                raise ServiceError(
                    "bad_request",
                    f"corpus parameter {key!r} in {spec!r} must be an "
                    f"integer, got {value!r}") from None
    return name.strip(), parameters


def _take(parameters: dict[str, int], key: str, default: int) -> int:
    return parameters.pop(key, default)


def corpus_query(spec: str) -> MultiModelQuery:
    """Build the multi-model query instance named by *spec*.

    Supported specs (all parameters optional):

    * ``figure1`` — the paper's Figure 1 micro-instance.
    * ``bookstore[:orders=N,users=M,seed=S]`` — the scaled bookstore
      scenario (defaults ``orders=40``, ``users=12``, ``seed=0``).
    * ``triangle[:n=N]`` — the AGM-tight relational triangle
      (default ``n=8``; no documents, relational updates only).
    * ``skewed[:n=N,b=D,c=M]`` — the skewed triangle whose static
      stats pick a provably bad expansion order (default ``n=512``;
      ``b``/``c`` override the hub-domain sizes) — the adaptive
      planner's showcase and the ``repro explain`` default.
    * ``dblp[:N | :n=N,seed=S]`` — N DBLP-style publication records
      (:mod:`repro.data.dblp`; default ``n=2000``) with the
      article/era multi-model join.
    * ``xmark-stream[:F | :factor=F,seed=S,fanout=K]`` — the XMark
      shape at scale factor F built from the streaming text generator
      (:func:`repro.xml.xmark.xmark_stream_chunks`; default
      ``factor=2``), person interests joined to a fan-out table.
    """
    name, parameters = _parse_spec(spec)
    if name == "figure1":
        query = figure1_query()
    elif name == "bookstore":
        orders = _take(parameters, "orders", 40)
        users = _take(parameters, "users", 12)
        seed = _take(parameters, "seed", 0)
        query = bookstore_instance(orders, users, seed=seed)
    elif name == "triangle":
        n = _take(parameters, "n", 8)
        query = MultiModelQuery(agm_tight_triangle(n), [], name="triangle")
    elif name == "skewed":
        n = _take(parameters, "n", 512)
        b = _take(parameters, "b", 0)
        c = _take(parameters, "c", 0)
        query = MultiModelQuery(
            skewed_triangle(n, b_domain=b or None, c_domain=c or None),
            [], name="skewed")
    elif name == "dblp":
        from repro.data.dblp import dblp_document, dblp_query

        n = _take(parameters, "n", _take(parameters, "_", 2000))
        seed = _take(parameters, "seed", 0)
        query = dblp_query(dblp_document(n, seed=seed))
    elif name == "xmark-stream":
        from repro.core.multimodel import TwigBinding
        from repro.relational.relation import Relation
        from repro.xml.parser import parse_document
        from repro.xml.twig_parser import parse_twig
        from repro.xml.xmark import xmark_stream_chunks

        factor = _take(parameters, "factor", _take(parameters, "_", 2))
        seed = _take(parameters, "seed", 0)
        fanout = _take(parameters, "fanout", 8)
        # Service sessions clone live trees per client, so the stream
        # parses into memory here; the streamed-arena build path serves
        # the same chunks through ``repro.xml.streaming`` instead.
        document = parse_document(
            "".join(xmark_stream_chunks(factor, seed=seed)))
        twig = parse_twig("p=person(/nm=name, //i=interest)")
        categories = sorted({node.value
                             for node in document.nodes("interest")})
        relation = Relation("R", ("x", "i"),
                            [(x, category) for x in range(fanout)
                             for category in categories])
        query = MultiModelQuery([relation],
                                [TwigBinding(twig, document)],
                                name="xmark-stream")
    else:
        raise ServiceError(
            "bad_request",
            f"unknown corpus {name!r}; choose from {available_corpora()!r}")
    if parameters:
        raise ServiceError(
            "bad_request",
            f"unknown corpus parameter(s) {sorted(parameters)!r} "
            f"for corpus {name!r}")
    return query


def available_corpora() -> list[str]:
    """The corpus names :func:`corpus_query` accepts."""
    return ["bookstore", "dblp", "figure1", "skewed", "triangle",
            "xmark-stream"]
