"""Per-tenant session pooling, quotas and accounting.

Tenants are named by the client (the ``tenant`` request field); each
tenant owns its sessions and snapshots and is accounted against a
:class:`TenantQuota`. Exceeding a quota raises a
:class:`~repro.errors.ServiceError` with code ``quota`` — the service
never silently evicts one tenant's pinned state to admit another's,
because a pinned snapshot is a consistency promise, not a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ServiceError

if TYPE_CHECKING:
    from repro.mvcc import Snapshot
    from repro.updates.session import QuerySession


@dataclass(frozen=True)
class TenantQuota:
    """Upper bounds applied to every tenant of one service."""

    #: Concurrently open sessions per tenant.
    max_sessions: int = 8
    #: Concurrently pinned (unreleased) snapshots per tenant.
    max_snapshots: int = 32
    #: Update batches a tenant may have queued but not yet applied.
    max_pending_updates: int = 64


@dataclass
class SessionState:
    """One client session: a private query session plus its snapshots."""

    sid: str
    tenant: str
    session: "QuerySession"
    #: snapshot id -> live (unreleased) pinned snapshot.
    snapshots: dict[str, "Snapshot"] = field(default_factory=dict)
    _snapshot_counter: int = 0

    def register_snapshot(self, snapshot: "Snapshot") -> str:
        """Track a freshly pinned snapshot; returns its wire id."""
        self._snapshot_counter += 1
        snapshot_id = f"{self.sid}.s{self._snapshot_counter}"
        self.snapshots[snapshot_id] = snapshot
        return snapshot_id

    def release_all(self) -> None:
        """Release every live snapshot (session teardown)."""
        for snapshot in self.snapshots.values():
            snapshot.release()
        self.snapshots.clear()


class Tenant:
    """One tenant's sessions and pending-update accounting."""

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.sessions: dict[str, SessionState] = {}
        #: Update batches enqueued by this tenant, not yet applied.
        self.pending_updates = 0
        self._session_counter = 0

    def next_session_id(self) -> str:
        """The next wire session id for this tenant (``name-N``)."""
        self._session_counter += 1
        return f"{self.name}-{self._session_counter}"

    def snapshot_count(self) -> int:
        """Live snapshots across all of this tenant's sessions."""
        return sum(len(state.snapshots)
                   for state in self.sessions.values())


class SessionManager:
    """All tenants of one service, with quota checks at every border."""

    def __init__(self, quota: TenantQuota | None = None):
        self.quota = quota or TenantQuota()
        self.tenants: dict[str, Tenant] = {}

    def tenant(self, name: str) -> Tenant:
        """The named tenant (created on first use)."""
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self.tenants[name] = Tenant(name, self.quota)
        return tenant

    # -- quota-checked transitions ----------------------------------------

    def admit_session(self, tenant_name: str,
                      session: "QuerySession") -> SessionState:
        """Open a session for *tenant_name* (ServiceError ``quota`` when
        the tenant is at its session limit)."""
        tenant = self.tenant(tenant_name)
        if len(tenant.sessions) >= tenant.quota.max_sessions:
            raise ServiceError(
                "quota",
                f"tenant {tenant_name!r} is at its session limit "
                f"({tenant.quota.max_sessions}); close a session first")
        state = SessionState(sid=tenant.next_session_id(),
                             tenant=tenant_name, session=session)
        tenant.sessions[state.sid] = state
        return state

    def admit_snapshot(self, state: SessionState) -> None:
        """Check the snapshot quota before a ``pin`` lands."""
        tenant = self.tenant(state.tenant)
        if tenant.snapshot_count() >= tenant.quota.max_snapshots:
            raise ServiceError(
                "quota",
                f"tenant {state.tenant!r} is at its snapshot limit "
                f"({tenant.quota.max_snapshots}); release snapshots first")

    def admit_update(self, tenant_name: str) -> Tenant:
        """Check (and count) one queued update batch for *tenant_name*."""
        tenant = self.tenant(tenant_name)
        if tenant.pending_updates >= tenant.quota.max_pending_updates:
            raise ServiceError(
                "quota",
                f"tenant {tenant_name!r} has "
                f"{tenant.pending_updates} update batches in flight "
                f"(limit {tenant.quota.max_pending_updates})")
        tenant.pending_updates += 1
        return tenant

    # -- lookup / teardown -------------------------------------------------

    def state(self, tenant_name: str, sid: str) -> SessionState:
        """The named session (ServiceError ``unknown_session`` if absent)."""
        state = self.tenant(tenant_name).sessions.get(sid)
        if state is None:
            raise ServiceError(
                "unknown_session",
                f"tenant {tenant_name!r} has no session {sid!r}")
        return state

    def close_session(self, tenant_name: str, sid: str) -> None:
        """Release a session's snapshots and drop it."""
        state = self.state(tenant_name, sid)
        state.release_all()
        del self.tenant(tenant_name).sessions[state.sid]

    def all_states(self) -> list[SessionState]:
        """Every open session across all tenants (broadcast targets)."""
        return [state for tenant in self.tenants.values()
                for state in tenant.sessions.values()]

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-tenant accounting for the ``stats`` endpoint."""
        return {name: {"sessions": len(tenant.sessions),
                       "snapshots": tenant.snapshot_count(),
                       "pending_updates": tenant.pending_updates}
                for name, tenant in self.tenants.items()}
