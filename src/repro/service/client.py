"""An asyncio client for the line-JSON service protocol.

Thin by design: every method sends one request object and returns the
decoded success envelope, raising :class:`~repro.errors.ServiceError`
with the server's error code otherwise — so tests and benchmarks read
like the protocol they exercise.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import ServiceError
from repro.service.protocol import decode_message, encode_message


class ServiceClient:
    """One TCP connection speaking the service's line-JSON protocol."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._request_counter = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection to a running ``repro serve``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def aclose(self) -> None:
        """Close the connection (the server side sees EOF)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request; return the success envelope or raise.

        The response's ``id`` is checked against the request's, so a
        protocol desync fails loudly instead of mismatching answers.
        """
        self._request_counter += 1
        request_id = self._request_counter
        message = {"op": op, "id": request_id, **fields}
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("connection",
                               "server closed the connection mid-request")
        response = decode_message(line)
        if response.get("id") != request_id:
            raise ServiceError(
                "connection",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        if not response.get("ok"):
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", "unknown error"))
        return response

    # -- one convenience per protocol op -----------------------------------

    async def ping(self) -> dict[str, Any]:
        """Liveness check; returns the current batch count."""
        return await self.request("ping")

    async def corpus(self) -> dict[str, Any]:
        """The hosted corpus's shape (inputs, sizes, attributes)."""
        return await self.request("corpus")

    async def open(self, tenant: str) -> str:
        """Open a session; returns its id."""
        response = await self.request("open", tenant=tenant)
        return response["session"]

    async def close(self, tenant: str, session: str) -> None:
        """Close a session, releasing its snapshots."""
        await self.request("close", tenant=tenant, session=session)

    async def pin(self, tenant: str, session: str) -> dict[str, Any]:
        """Pin a snapshot; returns ``{"snapshot", "version", "batches"}``."""
        return await self.request("pin", tenant=tenant, session=session)

    async def release(self, tenant: str, session: str,
                      snapshot: str) -> None:
        """Release a pinned snapshot."""
        await self.request("release", tenant=tenant, session=session,
                           snapshot=snapshot)

    async def query(self, tenant: str, session: str, *,
                    snapshot: str | None = None,
                    evaluate: bool = False,
                    algorithm: str | None = None,
                    order: "str | list | None" = None) -> dict[str, Any]:
        """Query the live session, or a pinned snapshot of it."""
        fields: dict[str, Any] = {"tenant": tenant, "session": session}
        if snapshot is not None:
            fields["snapshot"] = snapshot
        if evaluate:
            fields["evaluate"] = True
        if algorithm is not None:
            fields["algorithm"] = algorithm
        if order is not None:
            fields["order"] = order
        return await self.request("query", **fields)

    async def update(self, tenant: str,
                     ops: list[dict[str, Any]]) -> dict[str, Any]:
        """Submit one atomic update batch; returns the batch number."""
        return await self.request("update", tenant=tenant, ops=ops)

    async def stats(self) -> dict[str, Any]:
        """Service-wide counters (tenants, queue, plan cache)."""
        return await self.request("stats")

    async def shutdown(self) -> None:
        """Ask the server to shut down cleanly."""
        await self.request("shutdown")
