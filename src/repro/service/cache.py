"""A shared plan cache with frequency-based admission control.

Plans are cheap to hold and moderately expensive to derive (order
policy, domain estimates, twig matcher choice per binding), and a
multi-tenant service replans the same (corpus version, options) key once
per client without this cache. Capacity is bounded two ways:

* **LRU eviction** over admitted entries, and
* **admission control**: a key is only admitted once it has been
  *requested* at least ``admission_threshold`` times (tracked in a small
  bounded sketch), so a stream of one-off keys — e.g. every version of a
  rapidly-updated session appearing exactly once — churns the sketch,
  never the cache residents. This is the classic TinyLFU-style doorkeeper
  reduced to its essence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

#: Internal absence sentinel: a cached value of ``None`` (or any other
#: falsy plan, e.g. an empty options dict) is a legitimate resident and
#: must count as a hit — ``dict.get``'s default would conflate it with
#: a miss.
_MISS = object()


class PlanCache:
    """Bounded LRU mapping with a request-frequency admission gate."""

    def __init__(self, capacity: int = 64, *,
                 admission_threshold: int = 2,
                 sketch_capacity: int | None = None):
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        #: Requests a key needs before :meth:`put` admits it.
        self.admission_threshold = max(1, admission_threshold)
        #: Bound on the frequency sketch (default: 8x the cache).
        self.sketch_capacity = sketch_capacity or 8 * capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._seen: "OrderedDict[Hashable, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.rejected = 0
        self.evictions = 0

    def _note(self, key: Hashable) -> int:
        """Count one request for *key* in the bounded sketch."""
        count = self._seen.pop(key, 0) + 1
        self._seen[key] = count  # re-append: sketch eviction is LRU too
        while len(self._seen) > self.sketch_capacity:
            self._seen.popitem(last=False)
        return count

    def get(self, key: Hashable, default: Any = None) -> Any | None:
        """The cached value for *key* (*default* on miss); counts the
        request. Presence is decided by key residency, not truthiness,
        so falsy cached values still register as hits."""
        self._note(key)
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> bool:
        """Offer (*key*, *value*); returns True if admitted.

        A key below the admission threshold is rejected (the caller
        keeps its freshly computed value; only the cache stays clean).
        An admitted key evicts the least-recently-used resident when
        the cache is full.
        """
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return True
        if self._seen.get(key, 0) < self.admission_threshold:
            self.rejected += 1
            return False
        self._entries[key] = value
        self.admitted += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters for the service's ``stats`` endpoint."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"PlanCache({len(self._entries)}/{self.capacity}, "
                f"{self.hits} hits, {self.misses} misses)")
