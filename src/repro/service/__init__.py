"""Multi-tenant query service over the MVCC snapshot layer.

``python -m repro serve`` hosts one corpus (a named multi-model query
instance, see :func:`~repro.service.corpus.corpus_query`) behind a
line-JSON protocol (one JSON object per ``\\n``-terminated line, over
TCP or stdin). The moving parts:

* :class:`~repro.service.server.ReproService` — the asyncio server. One
  *master* :class:`~repro.updates.session.QuerySession` holds the
  corpus's current state; every client session gets a private
  ``QuerySession`` over cloned documents (one writer may never patch a
  tree another session's maintained answers walk), synchronized by
  broadcasting each update batch to the master and every open session
  in one synchronous step — so a pin always lands on a batch boundary
  and no snapshot ever observes a torn batch.
* a **single-writer queue** — all updates funnel through one bounded
  asyncio queue and one writer task; a full queue surfaces as a
  ``backpressure`` error instead of unbounded memory growth.
* :class:`~repro.service.tenancy.SessionManager` — per-tenant session
  and snapshot accounting against a :class:`~repro.service.tenancy.
  TenantQuota` (``quota`` errors, never silent eviction of another
  tenant's state).
* :class:`~repro.service.cache.PlanCache` — a shared plan cache with
  frequency-based admission (one-hit wonders never displace residents).
* **snapshot reads** — ``pin`` takes an MVCC snapshot
  (:mod:`repro.mvcc`) of the client's session; ``query`` against it is
  answered at the pinned version vector no matter how many batches have
  landed since. Heavy snapshot queries are detached (all artifacts
  frozen) and offloaded to a worker thread, optionally fanning out
  through the partition-parallel executor.

See ``docs/service.md`` for the protocol reference and lifecycle rules.
"""

from repro.service.cache import PlanCache
from repro.service.client import ServiceClient
from repro.service.corpus import available_corpora, corpus_query
from repro.service.server import ReproService
from repro.service.tenancy import SessionManager, TenantQuota

__all__ = [
    "PlanCache",
    "ReproService",
    "ServiceClient",
    "SessionManager",
    "TenantQuota",
    "available_corpora",
    "corpus_query",
]
