"""The service's wire protocol: one JSON object per line.

Requests and responses are UTF-8 JSON objects terminated by ``\\n`` —
trivially speakable from any language, ``nc``, or a shell loop. A
request carries an ``op`` (see :data:`OPERATIONS`) and an optional
``id`` the response echoes back, so clients may pipeline. A response is
either ``{"id": ..., "ok": true, ...fields}`` or
``{"id": ..., "ok": false, "error": code, "message": text}`` with
*code* from :class:`~repro.errors.ServiceError` (``bad_request``,
``quota``, ``backpressure``, ``unknown_session``, ``unknown_snapshot``,
``internal``).

Update batches are lists of operation objects:

* ``{"kind": "insert"|"delete", "relation": R, "row": [...]}``
* ``{"kind": "insert_subtree", "input": T, "parent_start": S,
  "xml": "<e>...</e>", "index": I?}``
* ``{"kind": "delete_subtree", "input": T, "start": S}``
* ``{"kind": "change_value", "input": T, "start": S, "text": "..."}``

Document nodes are addressed by their region ``start`` label: the delta
layer keeps region labelings canonical (contiguous pre-order), so the
same label names the corresponding node in the master state and in
every session's private clone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ServiceError

#: Every operation the service understands.
OPERATIONS = frozenset({
    "ping", "corpus", "open", "close", "pin", "release",
    "query", "update", "stats", "shutdown",
})

#: Update-operation kinds within an ``update`` batch.
UPDATE_KINDS = frozenset({
    "insert", "delete", "insert_subtree", "delete_subtree", "change_value",
})


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a ``\\n``-terminated line."""
    return (json.dumps(message, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a message dict (ServiceError ``bad_request``
    on invalid JSON or a non-object payload)."""
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ServiceError("bad_request",
                           f"invalid JSON line: {error}") from None
    if not isinstance(message, dict):
        raise ServiceError(
            "bad_request",
            f"a request must be a JSON object, got {type(message).__name__}")
    return message


def validate_request(message: dict[str, Any]) -> str:
    """Check the ``op`` field; returns it (ServiceError otherwise)."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ServiceError("bad_request", "request is missing a string 'op'")
    if op not in OPERATIONS:
        raise ServiceError(
            "bad_request",
            f"unknown op {op!r}; choose from {sorted(OPERATIONS)!r}")
    return op


def require_field(message: dict[str, Any], field: str,
                  kind: type = str) -> Any:
    """One mandatory, type-checked request field."""
    value = message.get(field)
    if not isinstance(value, kind) or (kind is int
                                       and isinstance(value, bool)):
        raise ServiceError(
            "bad_request",
            f"request field {field!r} must be a {kind.__name__}, "
            f"got {value!r}")
    return value


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success envelope echoing the request ``id``."""
    return {"id": request_id, "ok": True, **fields}


def error_response(request_id: Any, error: Exception) -> dict[str, Any]:
    """A failure envelope; non-:class:`ServiceError`\\ s map to
    ``internal`` (the message is preserved, the traceback is not)."""
    if isinstance(error, ServiceError):
        code = error.code
    else:
        code = "internal"
    return {"id": request_id, "ok": False, "error": code,
            "message": str(error)}


def rows_to_wire(rows: Any) -> list[list[Any]]:
    """A relation's row set as sorted JSON-ready lists (deterministic
    order, so byte-comparing two answers is meaningful)."""
    return [list(row) for row in sorted(rows)]


def validate_update_ops(ops: Any) -> list[dict[str, Any]]:
    """Check an ``update`` request's batch shape (not its semantics —
    unknown relations/nodes surface as ``update`` errors at apply time)."""
    if not isinstance(ops, list) or not ops:
        raise ServiceError("bad_request",
                           "'ops' must be a non-empty list of operations")
    for op in ops:
        if not isinstance(op, dict):
            raise ServiceError("bad_request",
                               f"update operation must be an object, "
                               f"got {op!r}")
        kind = op.get("kind")
        if kind not in UPDATE_KINDS:
            raise ServiceError(
                "bad_request",
                f"unknown update kind {kind!r}; "
                f"choose from {sorted(UPDATE_KINDS)!r}")
        if kind in ("insert", "delete"):
            require_field(op, "relation", str)
            require_field(op, "row", list)
        elif kind == "insert_subtree":
            require_field(op, "input", str)
            require_field(op, "parent_start", int)
            require_field(op, "xml", str)
        elif kind == "delete_subtree":
            require_field(op, "input", str)
            require_field(op, "start", int)
        else:  # change_value
            require_field(op, "input", str)
            require_field(op, "start", int)
            require_field(op, "text", str)
    return ops
