"""Service benchmark: throughput and tail latency under a live writer.

The scenario mirrors the acceptance setup: an in-process
:class:`~repro.service.server.ReproService` on a loopback TCP port, N
concurrent clients each looping *pin → snapshot query → release* in its
own tenant, and one background writer streaming small update batches
(relational inserts/deletes with an XML value edit interleaved) for the
whole run. Reported per client count: queries/sec over the wall clock
and the p50/p99 latency of the full pin+query+release cycle — the price
of a consistent read under write pressure, which is exactly what the
MVCC layer is supposed to keep flat.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.service.client import ServiceClient
from repro.service.corpus import corpus_query
from repro.service.server import ReproService
from repro.service.tenancy import TenantQuota

#: Client counts benchmarked by ``bench --suite service``.
DEFAULT_CLIENT_COUNTS = (1, 4, 16)


@dataclass(frozen=True)
class ServiceBenchResult:
    """One client-count measurement."""

    corpus: str
    clients: int
    queries: int
    batches: int
    qps: float
    p50_ms: float
    p99_ms: float


def _percentile(samples: "list[float]", fraction: float) -> float:
    """The nearest-rank percentile of *samples* (which must be non-empty)."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _writer_ops(query, step: int) -> "list[dict]":
    """One small deterministic update batch against *query*'s inputs."""
    relation = query.relations[0]
    row = [900_000 + step, step % 7] if relation.schema.arity == 2 else [
        900_000 + step for _ in range(relation.schema.arity)]
    ops: "list[dict]" = [
        {"kind": "insert", "relation": relation.name, "row": row}
        if step % 2 == 0 else
        {"kind": "delete", "relation": relation.name,
         "row": [900_000 + step - 1, (step - 1) % 7]
         if relation.schema.arity == 2
         else [900_000 + step - 1 for _ in range(relation.schema.arity)]},
    ]
    if query.twigs and step % 3 == 0:
        # The root's first child always carries start label 1 (canonical
        # contiguous pre-order), so this edit stays valid forever.
        ops.append({"kind": "change_value", "input": query.twigs[0].name,
                    "start": 1, "text": str(step % 5)})
    return ops


async def _writer_loop(host: str, port: int, query,
                       stop: asyncio.Event, applied: "list[int]") -> None:
    """Stream update batches until *stop*; counts batches in *applied*."""
    client = await ServiceClient.connect(host, port)
    try:
        step = 0
        while not stop.is_set():
            step += 1
            await client.update("bench-writer", _writer_ops(query, step))
            applied[0] += 1
    finally:
        await client.aclose()


async def _reader_loop(host: str, port: int, tenant: str,
                       queries: int, latencies: "list[float]") -> None:
    """One client: *queries* rounds of pin -> snapshot query -> release."""
    client = await ServiceClient.connect(host, port)
    try:
        sid = await client.open(tenant)
        for _ in range(queries):
            begin = time.perf_counter()
            pinned = await client.pin(tenant, sid)
            await client.query(tenant, sid, snapshot=pinned["snapshot"])
            await client.release(tenant, sid, pinned["snapshot"])
            latencies.append((time.perf_counter() - begin) * 1e3)
        await client.close(tenant, sid)
    finally:
        await client.aclose()


async def _bench_one(corpus: str, clients: int,
                     queries_per_client: int) -> ServiceBenchResult:
    service = ReproService(
        corpus, queue_limit=64,
        quota=TenantQuota(max_sessions=4, max_snapshots=8,
                          max_pending_updates=128))
    server = await asyncio.start_server(service._serve_connection,
                                        "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    stop = asyncio.Event()
    applied = [0]
    template = corpus_query(corpus)
    writer = asyncio.ensure_future(
        _writer_loop("127.0.0.1", port, template, stop, applied))
    latencies: "list[float]" = []
    begin = time.perf_counter()
    await asyncio.gather(*(
        _reader_loop("127.0.0.1", port, f"tenant-{index}",
                     queries_per_client, latencies)
        for index in range(clients)))
    wall = time.perf_counter() - begin
    stop.set()
    await writer
    await service.aclose()
    server.close()
    await server.wait_closed()
    return ServiceBenchResult(
        corpus=corpus, clients=clients, queries=len(latencies),
        batches=applied[0],
        qps=len(latencies) / max(wall, 1e-9),
        p50_ms=_percentile(latencies, 0.50),
        p99_ms=_percentile(latencies, 0.99))


def run_service_bench(*, corpus: str = "bookstore:orders=30,users=10",
                      client_counts: "tuple[int, ...]"
                      = DEFAULT_CLIENT_COUNTS,
                      queries_per_client: int = 12
                      ) -> "list[ServiceBenchResult]":
    """Benchmark the service at each client count (fresh server per run)."""
    return [asyncio.run(_bench_one(corpus, clients, queries_per_client))
            for clients in client_counts]
