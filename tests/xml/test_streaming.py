"""SAX-streaming columnar builder: byte parity with the in-memory build.

The tentpole guarantee: feeding XML text through
:func:`repro.xml.streaming.stream_document` — any chunking, never
materializing a node tree — produces a file arena whose attached view
is column-for-column identical to parsing the same text and running
the in-memory columnar build, and every registered twig algorithm
returns identical rows AND identical instrumentation counters over
both. Error handling must match the tree parser exactly, including
under the list backend.
"""

from __future__ import annotations

import pytest

from repro.buffers.layout import list_backend
from repro.buffers.mmapfile import leaked_arena_files
from repro.errors import XMLParseError
from repro.instrumentation import JoinStats
from repro.xml.arenaview import attach_arena_document
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.interface import available_twig_algorithms, \
    get_twig_algorithm
from repro.xml.parser import parse_document
from repro.xml.streaming import iter_events, stream_document
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_stream_chunks

DOCUMENT = """\
<library meta="x">
  <book id="1"><title>Systems</title><year>1999</year>
    <price>12.5</price></book>
  <book id="2"><title>P &amp; Q &#60;theory&#62;</title>
    <year>2021</year><price>7</price>
    <![CDATA[  raw <unparsed> & text  ]]></book>
  <!-- a comment -->
  <?pi ignored?>
  <big>18446744073709551616</big>
  <empty/>
</library>
"""


def _chunked(text, size):
    return [text[i:i + size] for i in range(0, len(text), size)]


def _columns(view):
    return {
        "starts": list(view.starts), "ends": list(view.ends),
        "levels": list(view.levels), "parents": list(view.parents),
        "tag_ids": list(view.tag_ids), "path_ids": list(view.path_ids),
        "tags": list(view.tags), "paths": list(view.paths),
        "values": [view.values[i] for i in range(view.size)],
        "tag_nids": [list(nids) for nids in view.tag_nids],
        "tag_starts": [list(s) for s in view.tag_starts],
        "tag_ends": [list(e) for e in view.tag_ends],
        "nids_by_path": [list(n) for n in view.nids_by_path],
        "pids_by_last_tag": {t: list(p) for t, p
                             in view.pids_by_last_tag.items()},
    }


def _counters(stats):
    return {key: value for key, value in stats.summary().items()
            if "time" not in key}


def assert_stream_parity(text, chunk_size):
    live = columnar(parse_document(text))
    arena = stream_document(_chunked(text, chunk_size))
    try:
        view = ColumnarDocument.from_arena(arena)
        assert _columns(view) == _columns(live)
    finally:
        arena.close()
        arena.unlink()
    assert not leaked_arena_files()


class TestColumnParity:
    @pytest.mark.parametrize("chunk_size", [1, 3, 17, 4096])
    def test_mixed_document_any_chunking(self, chunk_size):
        """Entities, CDATA, comments, PIs, bigints, self-closing tags —
        identical columns whatever the chunk boundaries cut through."""
        assert_stream_parity(DOCUMENT, chunk_size)

    def test_xmark_stream_corpus(self):
        text = "".join(xmark_stream_chunks(1, seed=4))
        assert_stream_parity(text, 113)

    def test_dblp_corpus(self):
        from repro.data.dblp import dblp_chunks

        text = "".join(dblp_chunks(120, seed=9))
        assert_stream_parity(text, 59)

    def test_typed_value_columns(self):
        """None / int / float / str / bigint all decode through the
        streamed value columns exactly as the tree parser typed them."""
        arena = stream_document([DOCUMENT])
        try:
            view = ColumnarDocument.from_arena(arena)
            values = [view.values[i] for i in range(view.size)]
            assert 1999 in values and 2021 in values          # ints
            assert 12.5 in values and 7 in values             # float/int
            assert "Systems" in values                        # strings
            assert "P & Q <theory>" in values                 # entities
            assert 18446744073709551616 in values             # bigint
            assert None in values                             # containers
        finally:
            arena.close()
            arena.unlink()

    def test_list_backend_parity(self):
        """The streamed arena matches a list-backed in-memory build."""
        with list_backend():
            live = columnar(parse_document(DOCUMENT))
            arena = stream_document(_chunked(DOCUMENT, 11))
            try:
                view = ColumnarDocument.from_arena(arena)
                assert _columns(view) == _columns(live)
            finally:
                arena.close()
                arena.unlink()


class TestAlgorithmParity:
    def test_rows_and_counters_for_every_algorithm(self):
        text = "".join(xmark_stream_chunks(0.5, seed=2))
        document = parse_document(text)
        twig = parse_twig("i=item(/n=name, //c=incategory)")
        linear = parse_twig("i=item(//c=incategory)")
        arena = stream_document(_chunked(text, 251))
        try:
            handle, _view = attach_arena_document(arena)
            for name in available_twig_algorithms():
                algorithm = get_twig_algorithm(name)
                query = twig if algorithm.supports(twig) else linear
                live_stats, arena_stats = JoinStats(), JoinStats()
                live_rows = algorithm.run(document, query,
                                          stats=live_stats).rows
                arena_rows = algorithm.run(handle, query,
                                           stats=arena_stats).rows
                assert sorted(arena_rows) == sorted(live_rows), name
                assert _counters(arena_stats) == _counters(live_stats), \
                    name
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_arena_files()


class TestErrorCases:
    @pytest.mark.parametrize("text", [
        "<a><b></c></a>",          # mismatched close
        "<a></a><b></b>",          # multiple roots
        "<a><b></b>",              # unclosed element
        "stray<a></a>",            # text outside the root
        "<a>&bogus;</a>",          # unknown entity
        "",                        # no root at all
        "<a", "</a>",              # malformed / close-before-open
    ])
    def test_streaming_matches_tree_parser(self, text):
        with pytest.raises(XMLParseError) as tree_error:
            parse_document(text)
        with pytest.raises(XMLParseError) as stream_error:
            for _event in iter_events(_chunked(text, 2)):
                pass
        assert str(stream_error.value) == str(tree_error.value)

    def test_failed_build_leaves_no_temp_files(self):
        with pytest.raises(XMLParseError):
            stream_document(["<a><b>text</b>"])  # unclosed root
        assert not leaked_arena_files()
