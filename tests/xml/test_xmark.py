"""Tests for the XMark-flavoured document generator."""

import pytest

from repro.xml.navigation import match_relation
from repro.xml.serializer import serialize
from repro.xml.parser import parse_element_tree
from repro.xml.twig_parser import parse_twig
from repro.xml.twigstack import twig_stack
from repro.xml.xmark import REGIONS, XMarkScale, xmark_document


class TestScale:
    def test_from_factor(self):
        scale = XMarkScale.from_factor(1.0)
        assert scale.items == 100
        assert scale.people == 50
        assert scale.auctions == 50
        assert scale.categories == 10

    def test_minimums(self):
        scale = XMarkScale.from_factor(0.001)
        assert scale.items >= 1
        assert scale.people >= 1
        assert scale.categories >= 1


class TestDocumentShape:
    @pytest.fixture(scope="class")
    def doc(self):
        return xmark_document(0.2, seed=11)

    def test_top_level_sections(self, doc):
        assert [c.tag for c in doc.root.children] == [
            "regions", "people", "open_auctions"]

    def test_all_regions_present(self, doc):
        region_tags = {c.tag for c in doc.nodes("regions")[0].children}
        assert region_tags == set(REGIONS)

    def test_entity_counts(self, doc):
        scale = XMarkScale.from_factor(0.2)
        assert doc.tag_count("item") == scale.items
        assert doc.tag_count("person") == scale.people
        assert doc.tag_count("open_auction") == scale.auctions

    def test_items_have_names_and_categories(self, doc):
        for item in doc.nodes("item"):
            child_tags = [c.tag for c in item.children]
            assert "name" in child_tags
            assert "incategory" in child_tags
            assert "payment" in child_tags

    def test_references_are_in_range(self, doc):
        scale = XMarkScale.from_factor(0.2)
        for ref in doc.nodes("itemref"):
            assert 0 <= ref.value < scale.items
        for ref in doc.nodes("personref"):
            assert 0 <= ref.value < scale.people

    def test_deterministic(self):
        a = xmark_document(0.1, seed=3)
        b = xmark_document(0.1, seed=3)
        assert a.root.structure_equal(b.root)

    def test_seed_changes_content(self):
        a = xmark_document(0.1, seed=3)
        b = xmark_document(0.1, seed=4)
        assert not a.root.structure_equal(b.root)

    def test_roundtrips_through_parser(self, doc):
        text = serialize(doc.root)
        assert doc.root.structure_equal(parse_element_tree(text))


class TestXMarkQueries:
    def test_twig_queries_agree(self):
        doc = xmark_document(0.1, seed=5)
        queries = [
            "item(/name, /incategory)",
            "open_auction(/itemref, /current)",
            "person(/name, //interest)",
            "open_auction(//personref)",
        ]
        for pattern in queries:
            twig = parse_twig(pattern)
            assert twig_stack(doc, twig) == match_relation(doc, twig)
