"""Tests for the hand-written XML parser and serialiser."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XMLParseError
from repro.xml.generator import random_document
from repro.xml.model import element
from repro.xml.parser import decode_entities, parse_document, parse_element_tree
from repro.xml.serializer import escape_attribute, escape_text, serialize


class TestBasicParsing:
    def test_single_element(self):
        root = parse_element_tree("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_nested_elements(self):
        root = parse_element_tree("<a><b/><c><d/></c></a>")
        assert [c.tag for c in root.children] == ["b", "c"]
        assert root.children[1].children[0].tag == "d"

    def test_text_content(self):
        root = parse_element_tree("<a>hello</a>")
        assert root.text == "hello"

    def test_typed_value(self):
        root = parse_element_tree("<price>30</price>")
        assert root.value == 30

    def test_attributes(self):
        root = parse_element_tree('<a x="1" y=\'two\'/>')
        assert root.attributes == {"x": "1", "y": "two"}

    def test_whitespace_only_text_dropped(self):
        root = parse_element_tree("<a>\n  <b/>\n</a>")
        assert root.text == ""

    def test_mixed_text_concatenated(self):
        root = parse_element_tree("<a>one<b/>two</a>")
        assert root.text == "onetwo"

    def test_comment_skipped(self):
        root = parse_element_tree("<a><!-- note --><b/></a>")
        assert [c.tag for c in root.children] == ["b"]

    def test_cdata_preserved_verbatim(self):
        root = parse_element_tree("<a><![CDATA[x < y & z]]></a>")
        assert root.text == "x < y & z"

    def test_xml_declaration_skipped(self):
        root = parse_element_tree('<?xml version="1.0"?><a/>')
        assert root.tag == "a"

    def test_doctype_skipped(self):
        root = parse_element_tree("<!DOCTYPE a><a/>")
        assert root.tag == "a"

    def test_entities_in_text(self):
        root = parse_element_tree("<a>&lt;tag&gt; &amp; &quot;x&quot;</a>")
        assert root.text == '<tag> & "x"'

    def test_numeric_entities(self):
        root = parse_element_tree("<a>&#65;&#x42;</a>")
        assert root.text == "AB"

    def test_entities_in_attribute(self):
        root = parse_element_tree('<a x="&amp;&apos;"/>')
        assert root.attributes["x"] == "&'"

    def test_parse_document_is_indexed(self):
        doc = parse_document("<a><b>1</b></a>")
        assert doc.root.start == 0
        assert doc.tag_count("b") == 1

    def test_names_with_namespace_chars(self):
        root = parse_element_tree("<ns:a-b.c_1/>")
        assert root.tag == "ns:a-b.c_1"


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "<a>",
        "</a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a/><b/>",
        "<a x=1/>",
        "<a x/>",
        '<a x="1" x="2"/>',
        "<a>&unknown;</a>",
        "text only",
        "<a>&broken</a>",
        "<!-- unterminated",
        "<a><![CDATA[x</a>",
    ])
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(XMLParseError):
            parse_element_tree(text)

    def test_error_carries_line_and_column(self):
        with pytest.raises(XMLParseError) as info:
            parse_element_tree("<a>\n<b></c>\n</a>")
        assert info.value.line == 2
        assert "does not match" in str(info.value)


class TestEntities:
    def test_decode_plain_passthrough(self):
        assert decode_entities("plain") == "plain"

    def test_escape_text_roundtrip(self):
        original = 'a < b & c > "d"'
        assert decode_entities(escape_text(original)) == original

    def test_escape_attribute_quotes(self):
        assert '"' not in escape_attribute('say "hi"').replace("&quot;", "")


class TestSerializerRoundtrip:
    def test_compact_roundtrip(self):
        tree = element("a", element("b", text="1 < 2"),
                       element("c", text="x&y", attributes={"k": 'v"w'}))
        text = serialize(tree)
        again = parse_element_tree(text)
        assert tree.structure_equal(again)

    def test_self_closing_for_empty(self):
        assert serialize(element("a")) == "<a/>"

    def test_declaration(self):
        text = serialize(element("a"), declaration=True)
        assert text.startswith("<?xml")

    def test_pretty_printing_parses_back(self):
        tree = element("a", element("b", element("c", text="1")))
        pretty = serialize(tree, indent=2)
        assert "\n" in pretty
        assert tree.structure_equal(parse_element_tree(pretty))

    @given(st.integers(0, 10_000))
    def test_random_roundtrip(self, seed):
        doc = random_document(random.Random(seed), max_nodes=30)
        text = serialize(doc.root)
        again = parse_element_tree(text)
        assert doc.root.structure_equal(again)

    @given(st.integers(0, 2_000))
    def test_serialize_parse_serialize_fixpoint(self, seed):
        doc = random_document(random.Random(seed), max_nodes=20)
        once = serialize(doc.root)
        twice = serialize(parse_element_tree(once))
        assert once == twice

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",),
                                          blacklist_characters="\r"),
                   max_size=40))
    def test_arbitrary_text_roundtrips(self, text):
        tree = element("a", text=text)
        parsed = parse_element_tree(serialize(tree))
        # Leading/trailing whitespace-only content is dropped by design;
        # compare the stripped text.
        assert parsed.text.strip() == text.strip()
