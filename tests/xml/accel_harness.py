"""Shared machinery for the accelerator differential suites.

The accelerator oracle is *seeded* the same way as the update oracle:
every randomized test derives its generator from ``REPRO_ACCEL_SEED``
(default a fixed constant, so plain ``pytest`` runs are reproducible;
CI additionally runs the suite with a randomized seed). The active
seed is echoed in the pytest header (``conftest.py``) and in every
assertion message, so any failure names the seed that reproduces it.
"""

from __future__ import annotations

import os
import random

from repro.xml.twig import Axis, TwigNode, TwigQuery

#: The suite-wide base seed (override: REPRO_ACCEL_SEED=12345 pytest ...).
ACCEL_SEED = int(os.environ.get("REPRO_ACCEL_SEED", "20260808"))

#: XMark tags the random twig generator draws from.
XMARK_TAGS = ["open_auction", "bidder", "personref", "itemref",
              "increase", "person", "profile", "interest", "item",
              "incategory", "current", "name"]

#: The subset carrying integer text values (predicate targets).
INT_TAGS = ["personref", "itemref", "increase", "incategory",
            "interest", "current"]


def seeded_rng(salt: object) -> random.Random:
    """A generator derived from the suite seed and a per-site salt."""
    return random.Random(f"{ACCEL_SEED}:{salt}")


def int_predicate(rng: random.Random):
    """A random integer threshold predicate (closed over its bound)."""
    bound = rng.randint(1, 40)
    if rng.random() < 0.5:
        return lambda v: isinstance(v, int) and v >= bound
    return lambda v: isinstance(v, int) and v < bound


def random_accel_twig(rng: random.Random, *,
                      axes=(Axis.CHILD, Axis.DESCENDANT),
                      predicate_rate: float = 0.0) -> TwigQuery:
    """A random twig over XMark tags, optionally with value predicates.

    With ``predicate_rate > 0`` each node whose tag carries integer
    values gets a threshold predicate with that probability — the shape
    that routes the planner to the accelerator.
    """
    def maybe_predicate(tag: str):
        if tag in INT_TAGS and rng.random() < predicate_rate:
            return int_predicate(rng)
        return None

    tag = rng.choice(XMARK_TAGS)
    root = TwigNode("n0", tag=tag, predicate=maybe_predicate(tag))
    nodes = [root]
    for index in range(rng.randint(1, 4)):
        parent = rng.choice(nodes)
        tag = rng.choice(XMARK_TAGS)
        child = parent.add(f"n{index + 1}", tag=tag,
                           axis=rng.choice(axes),
                           predicate=maybe_predicate(tag))
        nodes.append(child)
    return TwigQuery(root)
