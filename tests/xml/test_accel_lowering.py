"""Axis-lowering property tests for the accelerator.

:func:`repro.xml.accel.axis_pairs` enumerates each twig edge's
``(pre, pre)`` pairs with a stack merge over two postings. These tests
recompute every pair the slow way — walking the columnar ``parents``
and ``levels`` arrays — and demand set equality on the adversarial
shapes where stack algorithms break: deep single-tag chains (every
node nests in every other, the self-pairing trap), deep alternating
chains, wide flat fans (maximal posting length, zero nesting), and
branching documents repeating one tag along a path. Node relations are
checked against the raw arrays the same way, and predicate-filtered
streams against a value-filtered oracle.
"""

from __future__ import annotations

import pytest

from repro.xml.accel import (
    NODE_SCHEMA,
    axis_pairs,
    edge_relation,
    node_relation,
)
from repro.xml.columnar import columnar
from repro.xml.generator import (
    chain_document,
    random_document,
    star_document,
)
from repro.xml.interface import get_twig_algorithm
from repro.xml.model import XMLDocument, element
from repro.xml.navigation import match_relation
from repro.xml.twig import Axis, TwigNode, TwigQuery

from accel_harness import seeded_rng


def _tag(view, nid: int) -> str:
    return view.tags[view.tag_ids[nid]]


def oracle_pairs(view, upper_tag: str, lower_tag: str,
                 axis: Axis) -> set[tuple[int, int]]:
    """Every axis pair recomputed from the parents/levels arrays."""
    pairs: set[tuple[int, int]] = set()
    for nid in range(view.size):
        if _tag(view, nid) != lower_tag:
            continue
        parent = view.parents[nid]
        if axis is Axis.CHILD:
            if parent >= 0 and _tag(view, parent) == upper_tag:
                pairs.add((view.starts[parent], view.starts[nid]))
        else:
            while parent >= 0:
                if _tag(view, parent) == upper_tag:
                    pairs.add((view.starts[parent], view.starts[nid]))
                parent = view.parents[parent]
    return pairs


def lowered_pairs(view, upper_tag: str, lower_tag: str,
                  axis: Axis) -> list[tuple[int, int]]:
    upper = TwigNode("u", tag=upper_tag)
    lower = upper.add("l", tag=lower_tag, axis=axis)
    return axis_pairs(view.stream(upper), view.stream(lower),
                      view.levels, axis)


def assert_axes_match_arrays(document, tags) -> None:
    """Both axes, every tag pair: stack merge == array walk, no dupes."""
    view = columnar(document)
    for upper_tag in tags:
        for lower_tag in tags:
            for axis in (Axis.CHILD, Axis.DESCENDANT):
                got = lowered_pairs(view, upper_tag, lower_tag, axis)
                assert len(got) == len(set(got)), \
                    (upper_tag, axis, lower_tag, "duplicate pairs")
                assert set(got) == oracle_pairs(view, upper_tag,
                                                lower_tag, axis), \
                    (upper_tag, axis, lower_tag)


class TestAdversarialShapes:
    def test_deep_same_tag_chain(self):
        """200 nested ``a`` nodes: every node contains every later one,
        and the strict push bound must keep self-pairs out."""
        document = chain_document(200, tags=("a",))
        view = columnar(document)
        descendants = lowered_pairs(view, "a", "a", Axis.DESCENDANT)
        assert len(descendants) == 200 * 199 // 2
        assert all(upper < lower for upper, lower in descendants)
        children = lowered_pairs(view, "a", "a", Axis.CHILD)
        assert len(children) == 199
        assert_axes_match_arrays(document, ("root", "a"))

    def test_deep_alternating_chain(self):
        """Repeated tags along one path: a/b/a/b... 120 deep."""
        document = chain_document(120, tags=("a", "b"))
        assert_axes_match_arrays(document, ("root", "a", "b"))

    def test_wide_fan(self):
        """A 400-child flat star: long postings, no nesting at all."""
        document = star_document(400, child_tag="item")
        view = columnar(document)
        assert len(lowered_pairs(view, "root", "item", Axis.CHILD)) == 400
        assert lowered_pairs(view, "item", "item", Axis.DESCENDANT) == []
        assert_axes_match_arrays(document, ("root", "item"))

    def test_branching_repeated_tags(self):
        """One tag recurring on several root-to-leaf paths at once."""
        tree = element(
            "a",
            element("b",
                    element("a",
                            element("b", element("a", text="1")),
                            element("a", text="2"))),
            element("a", element("b", text="3")),
            element("b", text="4"),
        )
        assert_axes_match_arrays(XMLDocument(tree), ("a", "b"))

    @pytest.mark.parametrize("round_", range(6))
    def test_random_documents(self, round_):
        rng = seeded_rng(f"lowering:{round_}")
        for _ in range(3):
            document = random_document(rng, max_nodes=60, max_depth=8)
            assert_axes_match_arrays(document, ("a", "b", "c", "d"))


class TestNodeAndEdgeRelations:
    def test_node_relation_mirrors_arrays(self):
        rng = seeded_rng("nodes")
        document = random_document(rng, max_nodes=80)
        view = columnar(document)
        for tag in ("a", "b", "c", "d"):
            relation = node_relation(view, tag)
            assert tuple(relation.schema) == NODE_SCHEMA
            expected = {(view.starts[nid], view.ends[nid],
                         view.levels[nid], view.values[nid])
                        for nid in range(view.size)
                        if _tag(view, nid) == tag}
            assert set(relation.rows) == expected, tag

    def test_edge_relation_respects_value_predicates(self):
        """The candidate stream filters before the merge: pairs whose
        child value fails the predicate never appear."""
        document = star_document(60, child_tag="item")
        view = columnar(document)
        parent = TwigNode("r", tag="root")
        child = parent.child("it", tag="item",
                             predicate=lambda v: isinstance(v, int)
                             and v < 10)
        relation = edge_relation(view, parent, child)
        expected = {(view.starts[parent_nid], view.starts[nid])
                    for nid in range(view.size)
                    if _tag(view, nid) == "item"
                    and isinstance(view.values[nid], int)
                    and view.values[nid] < 10
                    for parent_nid in [view.parents[nid]]}
        assert set(relation.rows) == expected
        assert len(relation.rows) == 10

    def test_accel_matches_oracle_on_adversarial_documents(self):
        """Full accel runs on the stack-hostile shapes."""
        accel = get_twig_algorithm("accel")
        for document in (chain_document(80, tags=("a",)),
                         chain_document(81, tags=("a", "b")),
                         star_document(120, child_tag="item")):
            for pattern_root in ("a", "root", "item"):
                root = TwigNode("x", tag=pattern_root)
                root.descendant("y", tag="a")
                twig = TwigQuery(root)
                assert accel.run(document, twig) \
                    == match_relation(document, twig), pattern_root
