"""Tests for the XML document model and region/Dewey encodings."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xml.dewey import (
    annotate_dewey,
    common_prefix,
    dewey_is_ancestor,
    dewey_is_parent,
)
from repro.xml.encoding import (
    annotate_regions,
    is_ancestor,
    is_parent,
    region_contains,
)
from repro.xml.generator import chain_document, random_document, star_document
from repro.xml.model import XMLDocument, XMLNode, element


@pytest.fixture
def doc():
    tree = element(
        "a",
        element("b", element("d", text="1")),
        element("c", text="2"),
    )
    return XMLDocument(tree)


class TestModel:
    def test_append_sets_parent(self):
        parent = XMLNode("p")
        child = parent.add("c")
        assert child.parent is parent
        assert parent.children == [child]

    def test_value_int(self):
        assert XMLNode("n", text=" 42 ").value == 42

    def test_value_float(self):
        assert XMLNode("n", text="2.5").value == 2.5

    def test_value_string(self):
        assert XMLNode("n", text="978-3-16-1").value == "978-3-16-1"

    def test_value_empty_is_none(self):
        assert XMLNode("n").value is None

    def test_iter_preorder(self, doc):
        assert [n.tag for n in doc.root.iter()] == ["a", "b", "d", "c"]

    def test_descendants_excludes_self(self, doc):
        assert [n.tag for n in doc.root.descendants()] == ["b", "d", "c"]

    def test_ancestors(self, doc):
        d = doc.nodes("d")[0]
        assert [n.tag for n in d.ancestors()] == ["b", "a"]

    def test_path_from_root(self, doc):
        d = doc.nodes("d")[0]
        assert [n.tag for n in d.path_from_root()] == ["a", "b", "d"]

    def test_find_all(self, doc):
        assert len(doc.root.find_all("d")) == 1

    def test_structure_equal(self):
        a = element("x", element("y", text="1"))
        b = element("x", element("y", text="1"))
        c = element("x", element("y", text="2"))
        assert a.structure_equal(b)
        assert not a.structure_equal(c)

    def test_document_indexes(self, doc):
        assert doc.size() == 4
        assert set(doc.tags) == {"a", "b", "c", "d"}
        assert doc.tag_count("b") == 1
        assert doc.tag_count("zzz") == 0

    def test_nodes_in_document_order(self, doc):
        starts = [n.start for n in doc.nodes()]
        assert starts == sorted(starts)

    def test_reindex_after_mutation(self, doc):
        doc.root.add("e", text="9")
        doc.reindex()
        assert doc.tag_count("e") == 1


class TestRegionEncoding:
    def test_root_spans_everything(self, doc):
        for node in doc.root.descendants():
            assert doc.root.start < node.start
            assert node.end < doc.root.end

    def test_levels(self, doc):
        assert doc.root.level == 0
        assert doc.nodes("b")[0].level == 1
        assert doc.nodes("d")[0].level == 2

    def test_is_ancestor(self, doc):
        a, d = doc.nodes("a")[0], doc.nodes("d")[0]
        assert is_ancestor(a, d)
        assert not is_ancestor(d, a)

    def test_is_ancestor_irreflexive(self, doc):
        a = doc.nodes("a")[0]
        assert not is_ancestor(a, a)

    def test_is_parent(self, doc):
        a, b, d = (doc.nodes(t)[0] for t in "abd")
        assert is_parent(a, b)
        assert is_parent(b, d)
        assert not is_parent(a, d)

    def test_siblings_not_related(self, doc):
        b, c = doc.nodes("b")[0], doc.nodes("c")[0]
        assert not is_ancestor(b, c) and not is_ancestor(c, b)

    def test_region_contains(self):
        assert region_contains((0, 9), (1, 2))
        assert not region_contains((0, 9), (0, 9))

    def test_starts_are_distinct(self, doc):
        starts = [n.start for n in doc.nodes()]
        assert len(starts) == len(set(starts))

    def test_deep_chain_no_recursion_error(self):
        doc = chain_document(5000)
        assert doc.nodes()[-1].level == 5000


class TestRegionEncodingProperties:
    @given(st.integers(0, 10_000))
    def test_random_tree_labels_match_tree_relations(self, seed):
        doc = random_document(random.Random(seed), max_nodes=25)
        nodes = doc.nodes()
        for node in nodes:
            for child in node.children:
                assert is_parent(node, child)
            for descendant in node.descendants():
                assert is_ancestor(node, descendant)
        # Converse: labels never claim a relation the tree doesn't have.
        for x in nodes:
            descendants = set(map(id, x.descendants()))
            for y in nodes:
                if is_ancestor(x, y):
                    assert id(y) in descendants


class TestDewey:
    def test_root_label_empty(self, doc):
        assert doc.root.dewey == ()

    def test_child_labels(self, doc):
        b, c = doc.nodes("b")[0], doc.nodes("c")[0]
        assert b.dewey == (0,)
        assert c.dewey == (1,)
        assert doc.nodes("d")[0].dewey == (0, 0)

    def test_dewey_is_ancestor(self):
        assert dewey_is_ancestor((0,), (0, 1))
        assert not dewey_is_ancestor((0, 1), (0,))
        assert not dewey_is_ancestor((0,), (0,))
        assert not dewey_is_ancestor((1,), (0, 1))

    def test_dewey_is_parent(self):
        assert dewey_is_parent((0,), (0, 3))
        assert not dewey_is_parent((0,), (0, 1, 2))

    def test_common_prefix(self):
        assert common_prefix((0, 1, 2), (0, 1, 5)) == (0, 1)
        assert common_prefix((1,), (2,)) == ()

    @given(st.integers(0, 5_000))
    def test_dewey_matches_region_relations(self, seed):
        doc = random_document(random.Random(seed), max_nodes=20)
        nodes = doc.nodes()
        for x in nodes:
            for y in nodes:
                assert dewey_is_ancestor(x.dewey, y.dewey) == is_ancestor(x, y)
                assert dewey_is_parent(x.dewey, y.dewey) == is_parent(x, y)


class TestGenerators:
    def test_star_document_shape(self):
        doc = star_document(7)
        assert doc.tag_count("item") == 7
        assert all(n.level == 1 for n in doc.nodes("item"))

    def test_chain_document_shape(self):
        doc = chain_document(4, tags=("a", "b"))
        assert doc.size() == 5
        assert [n.tag for n in doc.nodes()] == ["root", "a", "b", "a", "b"]

    def test_random_document_bounded(self):
        doc = random_document(random.Random(1), max_nodes=15, max_depth=3)
        assert 1 <= doc.size() <= 15
        assert max(n.level for n in doc.nodes()) <= 3
