"""Cross-checks of all twig-matching algorithms against naive navigation.

This is the load-bearing test file of the XML substrate: TwigStack,
PathStack, TJFast and the structural-join pipeline must all agree with the
brute-force matcher on random documents and random twigs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TwigError
from repro.instrumentation import JoinStats
from repro.xml.dewey import ExtendedDeweyLabeler
from repro.xml.generator import chain_document, random_document
from repro.xml.model import XMLDocument, element
from repro.xml.navigation import (
    has_embedding_with_values,
    match_embeddings,
    match_relation,
    verify_embedding,
)
from repro.xml.pathstack import path_stack, path_stack_relation
from repro.xml.streams import TagStream
from repro.xml.structural_join import stack_tree_join, structural_join_pipeline
from repro.xml.tjfast import match_path_against_tags, tjfast, tjfast_embeddings
from repro.xml.twig import Axis, TwigNode, TwigQuery
from repro.xml.twig_parser import parse_twig
from repro.xml.twigstack import twig_stack, twig_stack_embeddings


def sample_document():
    tree = element(
        "a",
        element("b",
                element("c", text="1"),
                element("b", element("c", text="2"))),
        element("d", element("c", text="3")),
    )
    return XMLDocument(tree)


def embedding_keys(embeddings):
    """Hashable form of node embeddings for set comparison."""
    return {
        tuple(sorted((name, node.start) for name, node in emb.items()))
        for emb in embeddings
    }


class TestNaiveNavigation:
    def test_child_axis(self):
        doc = sample_document()
        q = parse_twig("b(/c)")
        embeddings = match_embeddings(doc, q)
        # b@1 has child c=1; nested b has child c=2.
        assert len(embeddings) == 2

    def test_descendant_axis(self):
        doc = sample_document()
        q = parse_twig("b(//c)")
        assert len(match_embeddings(doc, q)) == 3

    def test_single_node_twig(self):
        doc = sample_document()
        q = parse_twig("c")
        assert len(match_embeddings(doc, q)) == 3

    def test_no_match(self):
        doc = sample_document()
        q = parse_twig("zzz")
        assert match_embeddings(doc, q) == []

    def test_value_predicate_filters(self):
        doc = sample_document()
        root = TwigNode("b")
        root.descendant("c", predicate=lambda v: v == 2)
        q = TwigQuery(root)
        embeddings = match_embeddings(doc, q)
        assert {e["c"].value for e in embeddings} == {2}

    def test_match_relation_set_semantics(self):
        # Two embeddings with identical values collapse to one row.
        tree = element("r", element("x", text="5"), element("x", text="5"))
        doc = XMLDocument(tree)
        out = match_relation(doc, parse_twig("x"))
        assert len(out) == 1

    def test_has_embedding_with_values(self):
        doc = sample_document()
        q = parse_twig("b(/c)")
        assert has_embedding_with_values(doc, q, {"b": None, "c": 1})
        assert not has_embedding_with_values(doc, q, {"b": None, "c": 3})

    def test_verify_embedding(self):
        doc = sample_document()
        q = parse_twig("b(/c)")
        good = match_embeddings(doc, q)[0]
        assert verify_embedding(good, q)
        bad = dict(good)
        bad["c"] = doc.nodes("d")[0]
        assert not verify_embedding(bad, q)


class TestStackTreeJoin:
    def test_ancestor_descendant_pairs(self):
        doc = sample_document()
        pairs = stack_tree_join(doc.nodes("b"), doc.nodes("c"))
        assert len(pairs) == 3  # (b1,c1), (b1,c2), (b2,c2)

    def test_parent_child_pairs(self):
        doc = sample_document()
        pairs = stack_tree_join(doc.nodes("b"), doc.nodes("c"),
                                axis=Axis.CHILD)
        assert len(pairs) == 2

    def test_empty_inputs(self):
        doc = sample_document()
        assert stack_tree_join([], doc.nodes("c")) == []
        assert stack_tree_join(doc.nodes("b"), []) == []

    def test_matches_naive_on_random_documents(self):
        rng = random.Random(7)
        for _ in range(25):
            doc = random_document(rng, tags=("x", "y"), max_nodes=30)
            xs, ys = doc.nodes("x"), doc.nodes("y")
            expected_ad = {(a.start, d.start) for a in xs for d in ys
                           if a.start < d.start and d.end < a.end}
            got_ad = {(a.start, d.start)
                      for a, d in stack_tree_join(xs, ys)}
            assert got_ad == expected_ad
            expected_pc = {(a.start, d.start) for a in xs for d in ys
                           if d.parent is a}
            got_pc = {(a.start, d.start)
                      for a, d in stack_tree_join(xs, ys, axis=Axis.CHILD)}
            assert got_pc == expected_pc

    def test_nested_same_tag_stack_depth(self):
        doc = chain_document(10, tags=("x",))
        xs = doc.nodes("x")
        pairs = stack_tree_join(xs, xs)
        assert len(pairs) == 45  # C(10,2) nested pairs


class TestPathStack:
    def test_simple_path(self):
        doc = sample_document()
        q = parse_twig("a(/b(/c))")
        solutions = path_stack(doc, q)
        assert {tuple(n.value for n in s) for s in solutions} == {(None, None, 1)}

    def test_descendant_path(self):
        doc = sample_document()
        q = parse_twig("a(//c)")
        assert len(path_stack(doc, q)) == 3

    def test_rejects_branching(self):
        q = parse_twig("a(/b, /c)")
        with pytest.raises(TwigError):
            path_stack(sample_document(), q)

    def test_single_node_path(self):
        doc = sample_document()
        assert len(path_stack(doc, parse_twig("c"))) == 3

    def test_recursive_tags(self):
        doc = sample_document()
        q = parse_twig("outer=b(//inner=b)")
        solutions = path_stack(doc, q)
        assert len(solutions) == 1

    def test_relation_form(self):
        doc = sample_document()
        out = path_stack_relation(doc, parse_twig("d(/c)"))
        assert set(out) == {(None, 3)}


def twig_strategy():
    """Random small twigs over tags {x, y, z} with distinct names."""

    def build(shape_seed):
        rng = random.Random(shape_seed)
        tags = ["x", "y", "z"]
        root = TwigNode("n0", tag=rng.choice(tags))
        nodes = [root]
        for index in range(rng.randint(0, 4)):
            parent = rng.choice(nodes)
            axis = rng.choice([Axis.CHILD, Axis.DESCENDANT])
            child = parent.add(f"n{index + 1}", tag=rng.choice(tags),
                               axis=axis)
            nodes.append(child)
        return TwigQuery(root)

    return st.builds(build, st.integers(0, 10_000))


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10_000), twig_strategy())
def test_all_matchers_agree_with_naive(doc_seed, twig):
    """TwigStack == TJFast == structural pipeline == naive, on random input."""
    doc = random_document(random.Random(doc_seed), tags=("x", "y", "z"),
                          max_nodes=25, value_range=2)
    expected = embedding_keys(match_embeddings(doc, twig))
    assert embedding_keys(twig_stack_embeddings(doc, twig)) == expected
    assert embedding_keys(tjfast_embeddings(doc, twig)) == expected
    expected_rel = match_relation(doc, twig)
    assert twig_stack(doc, twig) == expected_rel
    assert tjfast(doc, twig) == expected_rel
    assert structural_join_pipeline(doc, twig) == expected_rel


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_pathstack_agrees_with_naive_on_paths(seed):
    rng = random.Random(seed)
    doc = random_document(rng, tags=("x", "y"), max_nodes=25, value_range=2)
    # Build a random linear path of depth 1-3.
    node = TwigNode("p0", tag=rng.choice(["x", "y"]))
    root = node
    for index in range(rng.randint(0, 2)):
        node = node.add(f"p{index + 1}", tag=rng.choice(["x", "y"]),
                        axis=rng.choice([Axis.CHILD, Axis.DESCENDANT]))
    twig = TwigQuery(root)
    expected = embedding_keys(match_embeddings(doc, twig))
    names = [q.name for q in twig.nodes()]
    got = {
        tuple(sorted((name, n.start) for name, n in zip(names, solution)))
        for solution in path_stack(doc, twig)
    }
    assert got == expected


class TestTwigStackSpecifics:
    def test_branching_twig(self):
        doc = sample_document()
        q = parse_twig("a(/b, /d)")
        assert len(twig_stack_embeddings(doc, q)) == 1

    def test_stats_record_path_solutions(self):
        doc = sample_document()
        stats = JoinStats()
        twig_stack(doc, parse_twig("b(//c)"), stats=stats)
        labels = [s.label for s in stats.stages]
        assert any("path solutions" in label for label in labels)

    def test_empty_stream_short_circuits(self):
        doc = sample_document()
        q = parse_twig("a(/zzz)")
        assert twig_stack_embeddings(doc, q) == []

    def test_figure1_like_document(self):
        text = """
        <invoices>
          <orderLine><orderID>10963</orderID><ISBN>978-3-16-1</ISBN>
            <price>30</price></orderLine>
          <orderLine><orderID>20134</orderID><ISBN>634-3-12-2</ISBN>
            <price>20</price></orderLine>
        </invoices>
        """
        from repro.xml.parser import parse_document
        doc = parse_document(text)
        q = parse_twig("orderLine(/orderID, /ISBN, /price)")
        out = twig_stack(doc, q).project(["orderID", "ISBN", "price"])
        assert set(out) == {(10963, "978-3-16-1", 30),
                            (20134, "634-3-12-2", 20)}


class TestTJFastSpecifics:
    def test_match_path_against_tags_child_chain(self):
        path = parse_twig("a(/b(/c))")
        nodes = path.nodes()
        assert match_path_against_tags(nodes, ["a", "b", "c"]) == [(0, 1, 2)]

    def test_match_path_against_tags_descendant_gap(self):
        path = parse_twig("a(//c)")
        nodes = path.nodes()
        assert match_path_against_tags(nodes, ["a", "b", "c"]) == [(0, 2)]

    def test_match_path_root_floats(self):
        path = parse_twig("b(/c)")
        nodes = path.nodes()
        assert match_path_against_tags(nodes, ["a", "b", "c"]) == [(1, 2)]

    def test_match_path_multiple_assignments(self):
        # The leaf always maps to the stream element itself (the last
        # position); ancestors may float, giving several assignments.
        path = parse_twig("x1=x(//x2=x)")
        nodes = path.nodes()
        got = match_path_against_tags(nodes, ["x", "x", "x"])
        assert set(got) == {(0, 2), (1, 2)}

    def test_leaf_must_map_to_last(self):
        path = parse_twig("a(//b)")
        nodes = path.nodes()
        assert match_path_against_tags(nodes, ["a", "b", "c"]) == []

    def test_extended_dewey_decode(self):
        doc = sample_document()
        labeler = ExtendedDeweyLabeler(doc)
        for tag in ("c", "d"):
            for node in doc.nodes(tag):
                decoded = labeler.decode(labeler.label(node))
                assert decoded == [n.tag for n in node.path_from_root()]


class TestTagStream:
    def test_stream_orders_by_document_order(self):
        doc = sample_document()
        stream = TagStream.for_query_node(
            doc, parse_twig("c").root)
        starts = [n.start for n in stream.nodes]
        assert starts == sorted(starts)

    def test_stream_filters_by_predicate(self):
        doc = sample_document()
        node = TwigNode("c", predicate=lambda v: v == 2)
        stream = TagStream.for_query_node(doc, node)
        assert len(stream) == 1

    def test_cursor_protocol(self):
        doc = sample_document()
        stream = TagStream(doc.nodes("c"))
        seen = 0
        while not stream.eof():
            stream.head()
            stream.advance()
            seen += 1
        assert seen == 3
        stream.reset()
        assert stream.remaining() == 3
