"""Pytest wiring for the XML suites: echo the accelerator oracle seed."""

from __future__ import annotations

from accel_harness import ACCEL_SEED


def pytest_report_header(config) -> str:
    return (f"accel-oracle seed: {ACCEL_SEED} "
            f"(reproduce with REPRO_ACCEL_SEED={ACCEL_SEED})")
