"""Tests for the twig query model, pattern parser, and XPath subset."""

import pytest

from repro.errors import TwigError
from repro.xml.twig import Axis, TwigNode, TwigQuery, pattern_string
from repro.xml.twig_parser import parse_twig
from repro.xml.xpath import parse_xpath


class TestTwigModel:
    def make_figure2_twig(self):
        """The twig of Figure 2: A(/B, /D, //C(/E), //F(/H), //G)."""
        root = TwigNode("A")
        root.child("B")
        root.child("D")
        root.descendant("C").child("E")
        root.descendant("F").child("H")
        root.descendant("G")
        return TwigQuery(root)

    def test_nodes_preorder(self):
        q = self.make_figure2_twig()
        assert [n.name for n in q.nodes()] == [
            "A", "B", "D", "C", "E", "F", "H", "G"]

    def test_attributes(self):
        q = self.make_figure2_twig()
        assert q.attributes == ("A", "B", "D", "C", "E", "F", "H", "G")

    def test_leaves(self):
        q = self.make_figure2_twig()
        assert [n.name for n in q.leaves()] == ["B", "D", "E", "H", "G"]

    def test_edges_split_by_axis(self):
        q = self.make_figure2_twig()
        pc = {(p.name, c.name) for p, c in q.pc_edges()}
        ad = {(p.name, c.name) for p, c in q.ad_edges()}
        assert pc == {("A", "B"), ("A", "D"), ("C", "E"), ("F", "H")}
        assert ad == {("A", "C"), ("A", "F"), ("A", "G")}

    def test_node_lookup(self):
        q = self.make_figure2_twig()
        assert q.node("E").tag == "E"
        with pytest.raises(TwigError):
            q.node("Z")

    def test_root_to_node_path(self):
        q = self.make_figure2_twig()
        assert [n.name for n in q.root_to_node_path("E")] == ["A", "C", "E"]

    def test_duplicate_names_rejected(self):
        root = TwigNode("A")
        root.child("B")
        root.child("B")
        with pytest.raises(TwigError):
            TwigQuery(root)

    def test_name_tag_split(self):
        root = TwigNode("x", tag="item")
        q = TwigQuery(root)
        assert q.node("x").tag == "item"

    def test_value_predicate(self):
        node = TwigNode("p", predicate=lambda v: v is not None and v > 10)
        assert node.matches_value(11)
        assert not node.matches_value(10)
        assert not node.matches_value(None)

    def test_no_predicate_matches_everything(self):
        assert TwigNode("p").matches_value(None)

    def test_build_helper(self):
        q = TwigQuery.build("A", lambda a: a.child("B"))
        assert [n.name for n in q.nodes()] == ["A", "B"]


class TestPatternParser:
    def test_single_node(self):
        q = parse_twig("A")
        assert q.root.name == "A"
        assert q.root.is_leaf

    def test_figure2_pattern(self):
        q = parse_twig("A(/B, /D, //C(/E), //F(/H), //G)")
        assert [n.name for n in q.nodes()] == [
            "A", "B", "D", "C", "E", "F", "H", "G"]
        assert q.node("C").axis is Axis.DESCENDANT
        assert q.node("E").axis is Axis.CHILD

    def test_whitespace_tolerated(self):
        q = parse_twig(" A ( /B , //C ) ")
        assert [n.name for n in q.nodes()] == ["A", "B", "C"]

    def test_name_tag_syntax(self):
        q = parse_twig("x=item(/y=price)")
        assert q.root.tag == "item"
        assert q.node("y").tag == "price"

    def test_roundtrip_with_pattern_string(self):
        text = "A(/B, //C(/E), //G)"
        q = parse_twig(text)
        assert pattern_string(q.root) == text.replace(" ", "").replace(
            ",", ", ")

    @pytest.mark.parametrize("bad", [
        "", "A(", "A(B)", "A(/B", "A(/B,)", "A()", "(/A)", "A(/B) junk",
        "A(/B,, /C)",
    ])
    def test_malformed_patterns_raise(self, bad):
        with pytest.raises(TwigError):
            parse_twig(bad)


class TestXPath:
    def test_simple_path(self):
        compiled = parse_xpath("//a/b")
        tags = [n.tag for n in compiled.twig.nodes()]
        assert tags == ["a", "b"]
        assert not compiled.absolute

    def test_absolute_flag(self):
        assert parse_xpath("/a/b").absolute

    def test_descendant_axis(self):
        compiled = parse_xpath("//a//b")
        (node_b,) = [n for n in compiled.twig.nodes() if n.tag == "b"]
        assert node_b.axis is Axis.DESCENDANT

    def test_predicates_become_branches(self):
        compiled = parse_xpath("//a[b][.//c/e]//g")
        twig = compiled.twig
        root = twig.root
        assert root.tag == "a"
        child_tags = sorted(c.tag for c in root.children)
        assert child_tags == ["b", "c", "g"]

    def test_predicate_axes(self):
        compiled = parse_xpath("//a[.//c]")
        (node_c,) = [n for n in compiled.twig.nodes() if n.tag == "c"]
        assert node_c.axis is Axis.DESCENDANT

    def test_repeated_tags_get_distinct_names(self):
        compiled = parse_xpath("//a/b[a]")
        names = [n.name for n in compiled.twig.nodes()]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("bad", ["", "//", "//a[", "//a]", "//a[b", "a["])
    def test_malformed_xpath_raises(self, bad):
        with pytest.raises(TwigError):
            parse_xpath(bad)
