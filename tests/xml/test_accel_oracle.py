"""The seeded cross-backend differential oracle for the accelerator.

Every randomized case derives from ``REPRO_ACCEL_SEED`` (echoed in the
pytest header and in every assertion message, like the update oracle's
``REPRO_UPDATE_SEED``). For random twigs × XMark documents — mixed
axes, P-C-only, A-D-only, single-node, and value-predicate shapes —
the relational accelerator's rows must be byte-identical to every
registered matcher's, and the planner's estimates (domain sizes, path
cardinalities, the resulting :class:`QueryPlan`) must be byte-identical
no matter which backend just ran: the accelerator flows through the
same statistics caches as everyone else and must not perturb them.
"""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.engine.planner import (
    choose_twig_algorithm,
    plan_query,
    statistics_for,
)
from repro.xml.interface import (
    available_twig_algorithms,
    get_twig_algorithm,
)
from repro.xml.navigation import match_embeddings, match_relation
from repro.xml.twig import Axis, TwigNode, TwigQuery
from repro.xml.xmark import xmark_document

from accel_harness import (
    ACCEL_SEED,
    int_predicate,
    random_accel_twig,
    seeded_rng,
)


def match_set(embeddings):
    """Hashable form of node embeddings for set comparison."""
    return {
        tuple(sorted((name, node.start) for name, node in emb.items()))
        for emb in embeddings
    }


def planner_fingerprint(document, twig) -> str:
    """Byte-exact snapshot of everything the planner derives for the
    twig: domain estimates, path cardinalities, and the full plan."""
    query = MultiModelQuery((), (TwigBinding(twig, document),),
                            name="accel_oracle")
    stats = statistics_for(query)
    plan = plan_query(query)
    return repr((sorted(stats.domain_estimates().items()),
                 sorted(stats.path_cardinality_estimates().items()),
                 plan))


def assert_accel_oracle(document, twig, context: str):
    """Rows, embeddings and planner estimates vs every backend."""
    note = f"{context} (REPRO_ACCEL_SEED={ACCEL_SEED})"
    accel = get_twig_algorithm("accel")
    accel_rows = accel.run(document, twig)
    reference = match_relation(document, twig)
    assert repr(accel_rows.sorted_rows()) \
        == repr(reference.sorted_rows()), \
        f"accel rows diverged from the navigation oracle at {note}"
    expected = match_set(match_embeddings(document, twig))
    assert match_set(accel.embeddings(document, twig)) == expected, \
        f"accel embeddings diverged at {note}"
    baseline = planner_fingerprint(document, twig)
    for name in available_twig_algorithms():
        algorithm = get_twig_algorithm(name)
        if not algorithm.supports(twig):
            continue
        rival = algorithm.run(document, twig)
        assert repr(rival.sorted_rows()) \
            == repr(accel_rows.sorted_rows()), \
            f"{name!r} rows diverged from accel at {note}"
        assert match_set(algorithm.embeddings(document, twig)) \
            == expected, f"{name!r} embeddings diverged at {note}"
        assert planner_fingerprint(document, twig) == baseline, \
            f"planner estimates shifted after {name!r} ran at {note}"


class TestAccelOracle:
    @pytest.mark.parametrize("round_", range(8))
    def test_random_mixed_axes(self, round_):
        rng = seeded_rng(f"mixed:{round_}")
        document = xmark_document(0.04, seed=rng.randint(0, 999))
        for index in range(3):
            twig = random_accel_twig(rng, predicate_rate=0.4)
            assert_accel_oracle(document, twig,
                                f"mixed round {round_}.{index}")

    @pytest.mark.parametrize("round_", range(4))
    def test_random_pc_only(self, round_):
        """P-C-only twigs: every edge lowered through the level check."""
        rng = seeded_rng(f"pc:{round_}")
        document = xmark_document(0.04, seed=rng.randint(0, 999))
        for index in range(3):
            twig = random_accel_twig(rng, axes=(Axis.CHILD,),
                                     predicate_rate=0.3)
            assert_accel_oracle(document, twig,
                                f"pc round {round_}.{index}")

    @pytest.mark.parametrize("round_", range(4))
    def test_random_ad_only(self, round_):
        """A-D-only twigs: pure containment edges, no level predicate."""
        rng = seeded_rng(f"ad:{round_}")
        document = xmark_document(0.04, seed=rng.randint(0, 999))
        for index in range(3):
            twig = random_accel_twig(rng, axes=(Axis.DESCENDANT,),
                                     predicate_rate=0.3)
            assert_accel_oracle(document, twig,
                                f"ad round {round_}.{index}")

    def test_single_node_twigs(self):
        """Single-node twigs lower to a unary relation (no edge atoms)."""
        rng = seeded_rng("single")
        document = xmark_document(0.05, seed=rng.randint(0, 999))
        for tag in ("open_auction", "personref", "interest", "name"):
            assert_accel_oracle(document,
                                TwigQuery(TwigNode("n", tag=tag)),
                                f"single node {tag}")
        root = TwigNode("n", tag="increase",
                        predicate=int_predicate(rng))
        assert_accel_oracle(document, TwigQuery(root),
                            "single node with predicate")

    def test_value_predicate_branching(self):
        """The planner's accel shape: branching, two predicates."""
        rng = seeded_rng("predicates")
        document = xmark_document(0.08, seed=rng.randint(0, 999))
        root = TwigNode("oa", tag="open_auction")
        bidder = root.descendant("bd", tag="bidder")
        bidder.child("inc", tag="increase",
                     predicate=lambda v: isinstance(v, int) and v > 25)
        bidder.child("pr", tag="personref",
                     predicate=lambda v: isinstance(v, int) and v < 10)
        twig = TwigQuery(root)
        assert choose_twig_algorithm(document, twig) == "accel"
        assert_accel_oracle(document, twig, "two-predicate branching")

    def test_empty_results_agree(self):
        """An unsatisfiable predicate: every backend returns no rows."""
        document = xmark_document(0.05, seed=3)
        root = TwigNode("oa", tag="open_auction")
        root.descendant("inc", tag="increase",
                        predicate=lambda v: isinstance(v, int)
                        and v > 10**9)
        root.child("ir", tag="itemref",
                   predicate=lambda v: False)
        assert_accel_oracle(document, TwigQuery(root),
                            "unsatisfiable predicates")


class TestPlannerRouting:
    def test_branching_predicates_route_to_accel(self):
        document = xmark_document(0.05, seed=1)
        root = TwigNode("p", tag="person")
        root.child("pr", tag="personref",
                   predicate=lambda v: isinstance(v, int))
        root.descendant("i", tag="interest",
                        predicate=lambda v: isinstance(v, int))
        assert choose_twig_algorithm(document, TwigQuery(root)) \
            == "accel"

    def test_linear_predicates_stay_pathstack(self):
        """Linear paths keep pathstack even with many predicates."""
        document = xmark_document(0.05, seed=1)
        root = TwigNode("oa", tag="open_auction",
                        predicate=lambda v: True)
        bd = root.descendant("bd", tag="bidder",
                             predicate=lambda v: True)
        bd.child("inc", tag="increase",
                 predicate=lambda v: isinstance(v, int))
        assert choose_twig_algorithm(document, TwigQuery(root)) \
            == "pathstack"
