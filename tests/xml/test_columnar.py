"""The columnar document store: array invariants, caching, statistics."""

import random

import pytest

from repro.xml.columnar import (
    ColumnarDocument,
    columnar,
    document_stats,
)
from repro.xml.generator import chain_document, random_document
from repro.xml.model import XMLDocument, element
from repro.xml.twig import TwigNode
from repro.xml.xmark import xmark_document


def sample_document():
    tree = element(
        "a",
        element("b",
                element("c", text="1"),
                element("b", element("c", text="2"))),
        element("d", element("c", text="3")),
    )
    return XMLDocument(tree)


class TestArrays:
    def test_arrays_mirror_node_labels(self):
        rng = random.Random(7)
        for _ in range(10):
            document = random_document(rng, max_nodes=40)
            view = ColumnarDocument(document)
            assert view.size == document.size()
            for nid, node in enumerate(view.nodes):
                assert view.starts[nid] == node.start
                assert view.ends[nid] == node.end
                assert view.levels[nid] == node.level
                assert view.values[nid] == node.value
                assert view.deweys[nid] == node.dewey
                assert view.tags[view.tag_ids[nid]] == node.tag
                parent = view.parents[nid]
                if node.parent is None:
                    assert parent == -1
                else:
                    assert view.nodes[parent] is node.parent

    def test_document_order_and_postings_sorted(self):
        view = columnar(xmark_document(0.05, seed=1))
        assert list(view.starts) == sorted(view.starts)
        for tid in range(len(view.tags)):
            assert list(view.tag_starts[tid]) == sorted(view.tag_starts[tid])
            assert len(view.tag_nids[tid]) == len(view.tag_starts[tid]) \
                == len(view.tag_ends[tid])

    def test_path_ids_intern_root_tag_paths(self):
        view = columnar(sample_document())
        for nid in range(view.size):
            tags = tuple(n.tag for n in view.nodes[nid].path_from_root())
            assert view.paths[view.path_ids[nid]] == tags
        # Two c nodes under b chains share structure only when the whole
        # root path matches: a/b/c vs a/b/b/c vs a/d/c are distinct.
        c_paths = {view.paths[view.path_ids[nid]]
                   for nid in view.postings("c")[0]}
        assert c_paths == {("a", "b", "c"), ("a", "b", "b", "c"),
                           ("a", "d", "c")}

    def test_ancestry_walks_to_root(self):
        view = columnar(sample_document())
        deepest = max(range(view.size), key=lambda nid: view.levels[nid])
        chain = view.ancestry(deepest)
        assert chain[0] == 0 and chain[-1] == deepest
        assert [view.levels[nid] for nid in chain] == \
            list(range(len(chain)))

    def test_stream_shares_postings_without_predicate(self):
        view = columnar(sample_document())
        query_node = TwigNode("c")
        stream = view.stream(query_node)
        nids, starts, _ends = view.postings("c")
        assert stream.nids is nids and stream.starts is starts

    def test_stream_filters_with_predicate(self):
        view = columnar(sample_document())
        query_node = TwigNode("c", predicate=lambda v: v == 2)
        stream = view.stream(query_node)
        assert len(stream) == 1
        assert view.values[stream.head_nid()] == 2

    def test_stream_seek_start_binary_searches(self):
        view = columnar(chain_document(20, tags=("x",)))
        stream = view.stream(TwigNode("x"))
        target = stream.starts[10]
        skipped = stream.seek_start(target)
        assert skipped == 10
        assert stream.head_start() == target
        assert stream.seek_start(10 ** 9) == len(stream) - 10
        assert stream.eof()

    def test_unknown_tag_is_empty(self):
        view = columnar(sample_document())
        assert len(view.stream(TwigNode("zzz"))) == 0
        assert view.distinct_value_count(TwigNode("zzz")) == 0


class TestCaching:
    def test_columnar_memoised_per_document(self):
        document = sample_document()
        assert columnar(document) is columnar(document)

    def test_reindex_invalidates(self):
        document = sample_document()
        before = columnar(document)
        stats_before = document_stats(document)
        document.root.add("e", text="9")
        document.reindex()
        after = columnar(document)
        assert after is not before
        assert after.size == before.size + 1
        assert document_stats(document) is not stats_before

    def test_distinct_documents_get_distinct_views(self):
        a, b = sample_document(), sample_document()
        assert columnar(a) is not columnar(b)

    def test_views_do_not_pin_documents(self):
        """Cached views must not keep dropped documents alive."""
        import gc
        import weakref

        document = sample_document()
        ref = weakref.ref(document)
        columnar(document)
        document_stats(document)
        del document
        gc.collect()
        assert ref() is None


class TestDocumentStats:
    def test_tag_and_path_counts(self):
        stats = document_stats(sample_document())
        assert stats.size == 7
        assert stats.tag_count("c") == 3
        assert stats.tag_count("zzz") == 0
        assert stats.depth == 3
        assert stats.max_fanout == 2
        assert stats.path_counts[("a", "b", "c")] == 1
        assert stats.distinct_paths == 7  # incl. the root path ("a",)

    def test_chain_count_is_suffix_sum(self):
        stats = document_stats(sample_document())
        # c nodes reachable by a b/c parent-child step: a/b/c and a/b/b/c.
        assert stats.chain_count(["b", "c"]) == 2
        assert stats.chain_count(["c"]) == 3
        assert stats.chain_count(["a", "b", "c"]) == 1
        assert stats.chain_count([]) == 0

    def test_chain_count_bounds_path_cardinality(self):
        """The planner estimate dominates the true distinct-row count."""
        from repro.core.decomposition import (
            decompose,
            path_relation_cardinality,
        )
        from repro.xml.twig_parser import parse_twig

        document = xmark_document(0.1, seed=3)
        stats = document_stats(document)
        twig = parse_twig("oa=open_auction(/ir=itemref, //pr=personref)")
        for path in decompose(twig).paths:
            estimate = stats.chain_count([n.tag for n in path.nodes])
            assert estimate >= path_relation_cardinality(document, path)


class TestPlannedTwigAlgorithms:
    def test_linear_twig_plans_pathstack(self):
        from repro.engine.planner import choose_twig_algorithm
        from repro.xml.twig_parser import parse_twig

        document = sample_document()
        assert choose_twig_algorithm(document, parse_twig("a(/b(//c))")) \
            == "pathstack"

    def test_pc_branching_plans_tjfast(self):
        from repro.engine.planner import choose_twig_algorithm
        from repro.xml.twig_parser import parse_twig

        document = sample_document()
        assert choose_twig_algorithm(document, parse_twig("a(/b, //c)")) \
            == "tjfast"

    def test_ad_only_branching_consults_stats(self):
        from repro.engine.planner import choose_twig_algorithm
        from repro.xml.twig_parser import parse_twig

        # Leaves are the minority of candidates -> tjfast (leaf streams
        # only); majority -> twigstack.
        document = sample_document()  # 3 c leaves vs 3 b internals
        twig = parse_twig("b(//c1=c, //c2=c)")
        leaf_heavy = choose_twig_algorithm(document, twig)
        assert leaf_heavy == "twigstack"
        wide = XMLDocument(element("a", *[element("a")
                                          for _ in range(10)],
                                   element("c", element("d", text="1"))))
        assert choose_twig_algorithm(
            wide, parse_twig("a(//c, //d)")) == "tjfast"

    def test_plan_query_carries_twig_plan(self):
        from repro.core.multimodel import MultiModelQuery, TwigBinding
        from repro.data.scenarios import figure1_query
        from repro.engine.planner import plan_query
        from repro.errors import PlanError
        from repro.xml.twig_parser import parse_twig

        query = figure1_query()
        plan = plan_query(query)
        assert plan.algorithm == "xjoin"
        assert plan.twig_algorithm("invoices") == "tjfast"
        assert dict(plan.path_cardinalities)  # estimates present
        forced = plan_query(query, twig_algorithm="twigstack")
        assert forced.twig_algorithm("invoices") == "twigstack"
        with pytest.raises(PlanError, match="unknown twig algorithm"):
            plan_query(query, twig_algorithm="nope")
        branching = MultiModelQuery(
            [], [TwigBinding(parse_twig("a(/b, /c)", name="T"),
                             sample_document())])
        with pytest.raises(PlanError, match="cannot evaluate"):
            plan_query(branching, twig_algorithm="pathstack")
