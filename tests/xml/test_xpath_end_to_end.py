"""End-to-end tests: XPath subset -> twig -> matching on documents."""

import pytest

from repro.xml.generator import layered_document
from repro.xml.model import XMLDocument, element
from repro.xml.navigation import match_embeddings
from repro.xml.parser import parse_document
from repro.xml.twigstack import twig_stack_embeddings
from repro.xml.xpath import parse_xpath


@pytest.fixture(scope="module")
def doc():
    return parse_document("""
    <library>
      <shelf><genre>db</genre>
        <book><title>A</title><year>2008</year></book>
        <book><title>B</title><year>2012</year></book>
      </shelf>
      <shelf><genre>os</genre>
        <book><title>C</title><year>2012</year></book>
      </shelf>
      <archive>
        <book><title>D</title></book>
      </archive>
    </library>
    """)


def count(doc, xpath):
    return len(match_embeddings(doc, parse_xpath(xpath).twig))


class TestXPathSemantics:
    def test_descendant_from_root(self, doc):
        assert count(doc, "//book") == 4

    def test_child_chain(self, doc):
        assert count(doc, "//shelf/book") == 3

    def test_predicate_filters_branch(self, doc):
        assert count(doc, "//book[year]") == 3

    def test_nested_predicate(self, doc):
        assert count(doc, "//shelf[genre]/book[year]/title") == 3

    def test_double_slash_mid_path(self, doc):
        assert count(doc, "//library//title") == 4

    def test_no_match(self, doc):
        assert count(doc, "//magazine") == 0

    def test_twigstack_agrees_on_xpath_twigs(self, doc):
        for xpath in ("//book", "//shelf/book", "//shelf[genre]//title"):
            twig = parse_xpath(xpath).twig
            naive = match_embeddings(doc, twig)
            holistic = twig_stack_embeddings(doc, twig)
            keys = lambda embeddings: {  # noqa: E731
                tuple(sorted((k, v.start) for k, v in e.items()))
                for e in embeddings}
            assert keys(naive) == keys(holistic)

    def test_absolute_flag_reflects_leading_slash(self):
        assert parse_xpath("/a/b").absolute
        assert not parse_xpath("//a/b").absolute


class TestLayeredDocument:
    def test_counts(self):
        doc = layered_document([("a", 2), ("b", 3), ("c", 1)])
        assert doc.tag_count("a") == 2
        assert doc.tag_count("b") == 6
        assert doc.tag_count("c") == 6

    def test_values_are_running_counters(self):
        doc = layered_document([("a", 3)])
        assert [n.value for n in doc.nodes("a")] == [0, 1, 2]

    def test_custom_value_function(self):
        doc = layered_document([("a", 2)],
                               value_of=lambda tag, i: i % 2)
        assert [n.value for n in doc.nodes("a")] == [0, 1]

    def test_xpath_over_layers(self):
        doc = layered_document([("a", 2), ("b", 2)])
        assert len(match_embeddings(
            doc, parse_xpath("//a/b").twig)) == 4


class TestSerializerEdges:
    def test_pretty_print_with_attributes(self):
        from repro.xml.serializer import serialize
        tree = element("a", element("b", text="1",
                                    attributes={"k": "v"}),
                       attributes={"x": "1 < 2"})
        pretty = serialize(tree, indent=4, declaration=True)
        assert pretty.startswith("<?xml")
        assert 'x="1 &lt; 2"' in pretty

    def test_mixed_text_and_children_pretty(self):
        from repro.xml.parser import parse_element_tree
        from repro.xml.serializer import serialize
        tree = element("a", element("b"), text="hello")
        parsed = parse_element_tree(serialize(tree, indent=2))
        assert parsed.text.strip() == "hello"
        assert parsed.children[0].tag == "b"


class TestDocumentEdgeCases:
    def test_single_node_document(self):
        doc = XMLDocument(element("only", text="1"))
        assert doc.size() == 1
        assert doc.root.start == 0 and doc.root.end == 1
        assert doc.root.dewey == ()

    def test_wide_document_levels(self):
        root = element("r", *[element("c", text=str(i))
                              for i in range(50)])
        doc = XMLDocument(root)
        assert all(n.level == 1 for n in doc.nodes("c"))
        starts = [n.start for n in doc.nodes("c")]
        assert starts == sorted(starts)
