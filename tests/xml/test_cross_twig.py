"""Cross-algorithm twig parity: every registered matcher, same answers.

The registry-level companion to ``test_twig_matching``: all registered
:class:`TwigAlgorithm` implementations (and the node-object reference
implementations kept for benchmarking) must produce identical match sets
over random twigs × XMark documents, including the P-C-only and A-D-only
edge cases where their optimality properties differ.
"""

import random

import pytest

from repro.xml.algorithms import match_twig
from repro.xml.interface import (
    available_twig_algorithms,
    get_twig_algorithm,
)
from repro.xml.navigation import match_embeddings, match_relation
from repro.xml.reference import (
    reference_tjfast_embeddings,
    reference_twig_stack_embeddings,
)
from repro.xml.twig import Axis, TwigNode, TwigQuery
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

XMARK_TAGS = ["open_auction", "bidder", "personref", "itemref", "increase",
              "person", "profile", "interest", "item", "incategory",
              "current", "name"]


def match_set(embeddings):
    """Hashable form of node embeddings for set comparison."""
    return {
        tuple(sorted((name, node.start) for name, node in emb.items()))
        for emb in embeddings
    }


def random_xmark_twig(rng: random.Random, *,
                      axes=(Axis.CHILD, Axis.DESCENDANT)) -> TwigQuery:
    root = TwigNode("n0", tag=rng.choice(XMARK_TAGS))
    nodes = [root]
    for index in range(rng.randint(1, 4)):
        parent = rng.choice(nodes)
        child = parent.add(f"n{index + 1}", tag=rng.choice(XMARK_TAGS),
                           axis=rng.choice(axes))
        nodes.append(child)
    return TwigQuery(root)


def assert_all_algorithms_agree(document, twig):
    expected = match_set(match_embeddings(document, twig))
    expected_relation = match_relation(document, twig)
    for name in available_twig_algorithms():
        algorithm = get_twig_algorithm(name)
        if not algorithm.supports(twig):
            continue
        got = match_set(algorithm.embeddings(document, twig))
        assert got == expected, (name, twig)
        assert algorithm.run(document, twig) == expected_relation, \
            (name, twig)
    # The node-object reference implementations must agree too.
    assert match_set(reference_twig_stack_embeddings(document, twig)) \
        == expected
    assert match_set(reference_tjfast_embeddings(document, twig)) \
        == expected


class TestRegistry:
    def test_builtins_registered(self):
        assert available_twig_algorithms() == [
            "accel", "naive", "pathstack", "structural", "tjfast",
            "twigstack"]

    def test_unknown_name_raises(self):
        from repro.errors import TwigError

        with pytest.raises(TwigError, match="unknown twig algorithm"):
            get_twig_algorithm("nope")

    def test_pathstack_rejects_branching(self):
        branching = parse_twig("a(/b, /c)")
        linear = parse_twig("a(/b(/c))")
        pathstack = get_twig_algorithm("pathstack")
        assert not pathstack.supports(branching)
        assert pathstack.supports(linear)

    def test_match_twig_planned_and_explicit(self):
        document = xmark_document(0.05, seed=2)
        twig = parse_twig("oa=open_auction(/ir=itemref, //pr=personref)")
        expected = match_relation(document, twig)
        assert match_twig(document, twig) == expected
        assert match_twig(document, twig, algorithm="structural") == expected


class TestXMarkParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_twigs_mixed_axes(self, seed):
        rng = random.Random(seed)
        document = xmark_document(0.04, seed=seed)
        for _ in range(4):
            assert_all_algorithms_agree(document, random_xmark_twig(rng))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_twigs_pc_only(self, seed):
        """Parent-child-only twigs: the case where TwigStack may produce
        useless path solutions — answers must still agree."""
        rng = random.Random(100 + seed)
        document = xmark_document(0.04, seed=seed)
        for _ in range(4):
            twig = random_xmark_twig(rng, axes=(Axis.CHILD,))
            assert_all_algorithms_agree(document, twig)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_twigs_ad_only(self, seed):
        """Ancestor-descendant-only twigs: TwigStack's optimal case."""
        rng = random.Random(200 + seed)
        document = xmark_document(0.04, seed=seed)
        for _ in range(4):
            twig = random_xmark_twig(rng, axes=(Axis.DESCENDANT,))
            assert_all_algorithms_agree(document, twig)

    def test_fixed_xmark_workloads(self):
        document = xmark_document(0.2, seed=11)
        for pattern in (
                "oa=open_auction(/ir=itemref, //pr=personref)",
                "p=person(/nm=name, //i=interest)",
                "rg=regions(//it=item(/ic=incategory))",
                "oa=open_auction(//bd=bidder(/inc=increase))",
                "site(//p=person(/prof=profile(//i=interest)))",
        ):
            assert_all_algorithms_agree(document, parse_twig(pattern))

    def test_value_predicates(self):
        document = xmark_document(0.1, seed=5)
        root = TwigNode("oa", tag="open_auction")
        root.descendant("inc", tag="increase",
                        predicate=lambda v: isinstance(v, int) and v > 25)
        twig = TwigQuery(root)
        assert_all_algorithms_agree(document, twig)


class TestParallelCrossTwig:
    """Every registered matcher agrees with its partition-parallel run
    (the full matrix lives in ``tests/parallel/test_parallel_parity``)."""

    def test_parallel_matchers_agree(self):
        from repro.parallel.executor import ParallelExecutor

        document = xmark_document(0.2, seed=11)
        twig = parse_twig("p=person(/nm=name, //i=interest)")
        expected = match_relation(document, twig)
        executor = ParallelExecutor(2)
        for name in available_twig_algorithms():
            algorithm = get_twig_algorithm(name)
            if not algorithm.supports(twig):
                continue
            assert executor.run_twig(document, twig, name) == expected, name
