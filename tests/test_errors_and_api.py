"""Tests for the error hierarchy and the public API surface."""

import pytest

import repro
from repro.errors import (
    LPError,
    PlanError,
    QueryError,
    RelationError,
    ReproError,
    SchemaError,
    TwigError,
    XMLParseError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_class", [
        SchemaError, RelationError, QueryError, XMLParseError,
        TwigError, LPError, PlanError,
    ])
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_xml_parse_error_position_formats(self):
        error = XMLParseError("boom", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_xml_parse_error_offset_only(self):
        error = XMLParseError("boom", position=42)
        assert "offset 42" in str(error)

    def test_xml_parse_error_bare(self):
        assert str(XMLParseError("boom")) == "boom"


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_subpackage_exports_resolve(self):
        import repro.core
        import repro.relational
        import repro.xml
        for module in (repro.core, repro.relational, repro.xml):
            for name in module.__all__:
                assert hasattr(module, name), \
                    f"{module.__name__} missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_quickstart_from_docstring(self):
        """The README/docstring quickstart must actually run."""
        from repro import (MultiModelQuery, Relation, TwigBinding,
                           parse_document, parse_twig, xjoin)

        orders = Relation("orders", ("orderID", "userID"),
                          [(10963, "jack"), (20134, "tom")])
        invoices = parse_document(
            "<invoices><orderLine><orderID>10963</orderID>"
            "<ISBN>978-3-16-1</ISBN><price>30</price></orderLine>"
            "</invoices>")
        twig = parse_twig("orderLine(/orderID, /ISBN, /price)")
        query = MultiModelQuery([orders], [TwigBinding(twig, invoices)])
        result = xjoin(query)
        assert set(result.project(["userID", "ISBN", "price"])) == {
            ("jack", "978-3-16-1", 30)}
