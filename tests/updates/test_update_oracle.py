"""The differential update oracle.

Random interleaved update/query sequences over random multi-model
instances and XMark documents; after every update, the delta-maintained
state must be byte-identical to a rebuild-from-scratch oracle:

* ``QuerySession.answer()`` (the incrementally maintained result) and
  ``QuerySession.run(kernel)`` (the relational kernels over the
  delta-maintained dictionaries/tries) against the naive join of a
  *cloned* instance — fresh relations, fresh documents, no shared
  caches;
* every registered :class:`JoinAlgorithm` evaluating the *live* query
  (through the installed delta-maintained caches) against the same
  oracle — ``xjoin``/``baseline`` on the multi-model query directly,
  the relational kernels through the session's relationalized view;
* every registered :class:`TwigAlgorithm` matching on the *live*
  (patched) document against the naive matcher on a cloned document.

All three churn regimes are exercised: pure patching, mixed, and the
forced rebuild fallback.
"""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.random_instances import random_multimodel_instance
from repro.engine.interface import available_algorithms
from repro.engine.planner import run_query
from repro.updates.session import QuerySession
from repro.xml.interface import available_twig_algorithms, \
    get_twig_algorithm
from repro.xml.navigation import match_relation
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

from harness import (
    UPDATE_SEED,
    clone_document,
    clone_query,
    random_session_op,
    seeded_rng,
)

RELATIONAL_KERNELS = ("generic_join", "leapfrog")


def assert_session_matches_oracle(session: QuerySession, context: str):
    """The full differential check after one update."""
    query = session.query
    rebuilt = clone_query(query)
    oracle = rebuilt.naive_join()
    note = f"{context} (REPRO_UPDATE_SEED={UPDATE_SEED})"

    maintained = session.answer()
    assert maintained.sorted_rows() == oracle.sorted_rows(), \
        f"maintained answer diverged at {note}"

    for name in available_algorithms():
        if name in RELATIONAL_KERNELS:
            if query.twigs:
                # Kernels reject twig-bearing instances by design; they
                # cover the relationalized maintained view instead.
                result = session.run(name)
            else:
                result = run_query(query, algorithm=name)
        else:
            result = run_query(query, algorithm=name)
        assert result.sorted_rows() == oracle.sorted_rows(), \
            f"join algorithm {name!r} diverged at {note}"

    for binding in query.twigs:
        reference = match_relation(clone_document(binding.document),
                                   binding.twig)
        for name in available_twig_algorithms():
            algorithm = get_twig_algorithm(name)
            if not algorithm.supports(binding.twig):
                continue
            live = algorithm.run(binding.document, binding.twig)
            assert live.sorted_rows() == reference.sorted_rows(), \
                f"twig algorithm {name!r} diverged at {note}"


@pytest.mark.parametrize("churn_threshold", [10.0, 0.3, 0.0],
                         ids=["patch", "mixed", "rebuild"])
def test_random_instances_under_interleaved_updates(churn_threshold):
    rng = seeded_rng(f"oracle-{churn_threshold}")
    for trial in range(6):
        query = random_multimodel_instance(rng.randrange(10_000))
        session = QuerySession(query, churn_threshold=churn_threshold)
        for step in range(6):
            op = random_session_op(rng, session, tags=["x", "y", "z"])
            assert_session_matches_oracle(
                session,
                f"churn={churn_threshold} trial={trial} "
                f"step={step} op={op}")


def test_relation_only_session_under_updates():
    rng = seeded_rng("relations-only")
    instance = random_multimodel_instance(rng.randrange(10_000))
    query = MultiModelQuery(instance.relations, name="R-only")
    session = QuerySession(query)
    for step in range(12):
        op = random_session_op(rng, session, tags=[])
        assert_session_matches_oracle(session, f"step={step} op={op}")


def test_xmark_document_under_updates():
    rng = seeded_rng("xmark")
    document = xmark_document(0.12, rng=rng)
    twig = parse_twig("p=person(/nm=name, //i=interest)")
    query = MultiModelQuery([], [TwigBinding(twig, document)], name="X")
    session = QuerySession(query, churn_threshold=0.5)
    people = document.nodes("people")[0]
    inserted = []
    for step in range(4):
        person = random_subtree_person(rng, step)
        session.insert_subtree("X", people, person,
                               index=rng.randint(0, len(people.children)))
        inserted.append(person)
        assert_session_matches_oracle(session, f"xmark insert {step}")
    interests = document.nodes("interest")
    session.change_value("X", rng.choice(interests), "retuned")
    assert_session_matches_oracle(session, "xmark value change")
    for step, person in enumerate(inserted):
        session.delete_subtree("X", person)
        assert_session_matches_oracle(session, f"xmark delete {step}")


def random_subtree_person(rng, step: int):
    from repro.xml.model import XMLNode

    person = XMLNode("person", attributes={"id": f"oracle{step}"})
    person.add("name", text=f"oracle-person-{step}")
    for i in range(rng.randint(1, 2)):
        person.add("interest", text=f"category{rng.randint(0, 4)}")
    return person


@pytest.mark.parametrize("churn_threshold", [10.0, 0.0],
                         ids=["patch", "rebuild"])
def test_concurrent_readers_pin_staggered_snapshots(churn_threshold):
    """The MVCC differential regime: K pinned snapshots at staggered
    versions, each held open while updates continue, each byte-identical
    to a rebuild-from-scratch clone captured at its pin point — through
    both the O(1) maintained answer and a full re-evaluation over the
    pinned inputs. Releases are staggered too, so retained artifacts are
    reclaimed at different watermarks while other pins stay live."""
    rng = seeded_rng(f"mvcc-readers-{churn_threshold}")
    for trial in range(3):
        query = random_multimodel_instance(rng.randrange(10_000))
        session = QuerySession(query, churn_threshold=churn_threshold)
        readers = []  # (snapshot, frozen oracle rows at pin time)
        for step in range(8):
            if step % 2 == 0:  # K=4 snapshots at versions 0,2,4,6
                oracle = clone_query(session.query).naive_join()
                readers.append((session.pin(), oracle.sorted_rows()))
            op = random_session_op(rng, session, tags=["x", "y", "z"])
            note = (f"churn={churn_threshold} trial={trial} "
                    f"step={step} op={op} "
                    f"(REPRO_UPDATE_SEED={UPDATE_SEED})")
            for snapshot, frozen in readers:
                assert snapshot.answer().sorted_rows() == frozen, \
                    f"pinned answer diverged at {note}"
                assert snapshot.run().sorted_rows() == frozen, \
                    f"pinned re-evaluation diverged at {note}"
            # Stagger releases: drop the oldest reader every third step,
            # then keep updating with the remaining pins live.
            if step % 3 == 2 and readers:
                snapshot, frozen = readers.pop(0)
                assert snapshot.run().sorted_rows() == frozen, note
                snapshot.release()
        for snapshot, frozen in readers:
            assert snapshot.answer().sorted_rows() == frozen
            snapshot.release()
        assert session.mvcc.watermark() is None
        assert session.mvcc.active_count() == 0
        # Every retained artifact was reclaimed with the last pin.
        for chain in (list(session.mvcc.relation_chains.values())
                      + list(session.mvcc.document_chains.values())):
            assert chain.retained_versions() == ()
        # The live session itself is still oracle-consistent.
        assert_session_matches_oracle(
            session, f"mvcc trial={trial} post-release")


@pytest.mark.parametrize("churn_threshold", [10.0, 0.0],
                         ids=["patch", "rebuild"])
def test_accel_tracks_update_stream(churn_threshold):
    """Explicit accelerator enrollment in the update regimes.

    The accelerator's node relations *are* the maintained postings, so
    it inherits delta maintenance: after every patch (and after forced
    rebuilds) its relational lowering over the live columnar view must
    match a rebuilt-from-scratch clone — checked here directly on a
    value-predicate twig (the planner's accel shape) on top of the full
    every-backend check of :func:`assert_session_matches_oracle`."""
    from repro.xml.twig import TwigNode, TwigQuery

    rng = seeded_rng(f"accel-{churn_threshold}")
    document = xmark_document(0.1, rng=rng)
    root = TwigNode("oa", tag="open_auction")
    bidder = root.descendant("bd", tag="bidder")
    bidder.child("inc", tag="increase",
                 predicate=lambda v: isinstance(v, int) and v > 20)
    bidder.child("pr", tag="personref",
                 predicate=lambda v: isinstance(v, int) and v < 30)
    twig = TwigQuery(root, name="A")
    query = MultiModelQuery([], [TwigBinding(twig, document)], name="A")
    session = QuerySession(query, churn_threshold=churn_threshold)
    accel = get_twig_algorithm("accel")
    for step in range(8):
        op = random_session_op(rng, session,
                               tags=["bidder", "increase", "personref"])
        note = (f"accel churn={churn_threshold} step={step} op={op} "
                f"(REPRO_UPDATE_SEED={UPDATE_SEED})")
        reference = match_relation(clone_document(document), twig)
        live = accel.run(document, twig)
        assert live.sorted_rows() == reference.sorted_rows(), \
            f"accel diverged from the rebuilt clone at {note}"
        assert_session_matches_oracle(session, note)


def test_two_twigs_sharing_one_document():
    """One edit must refresh every twig bound to the same tree."""
    rng = seeded_rng("shared-doc")
    instance = random_multimodel_instance(rng.randrange(10_000))
    binding = instance.twigs[0]
    from repro.data.random_instances import random_twig

    from repro.xml.twig import TwigQuery

    second = TwigQuery(random_twig(rng, ["x", "y", "z"], prefix="u").root,
                       name="U")
    query = MultiModelQuery(
        instance.relations,
        [binding, TwigBinding(second, binding.document)],
        name="shared")
    session = QuerySession(query, churn_threshold=10.0)
    for step in range(6):
        op = random_session_op(rng, session, tags=["x", "y", "z"])
        assert_session_matches_oracle(session, f"shared step={step} op={op}")
