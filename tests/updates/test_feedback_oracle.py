"""Feedback corrections across an update stream: the oracle regime.

The property under test: a :class:`~repro.updates.session.QuerySession`
wired to a :class:`~repro.engine.adaptive.FeedbackStore` lets small
deltas *inherit* learned corrections (the maintained statistics were
patched, so the factors still describe the data) while churn bursts
*invalidate* them — and after a burst no plan ever consumes a stale
factor: every read is version-key checked and returns the neutral 1.0
until re-learned. Plans stay row-identical to the session's maintained
answer throughout.
"""

from __future__ import annotations

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.synthetic import skewed_triangle
from repro.engine.adaptive import (
    AdaptivePlanner,
    FeedbackStore,
    estimated_stage_sizes,
)
from repro.engine.planner import attribute_order, run_query
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.updates.session import QuerySession
from repro.xml.model import XMLDocument, element
from repro.xml.twig import TwigQuery


def skewed_query(n: int = 256) -> MultiModelQuery:
    return MultiModelQuery(skewed_triangle(n), [], name="skewed")


def learn(store: FeedbackStore, query: MultiModelQuery) -> list:
    """Execute once on the static-stats order and fold the feedback."""
    order = attribute_order(query, "connected")
    stats = JoinStats()
    run_query(query, order=order, stats=stats)
    store.observe(query, order, stats)
    return estimated_stage_sizes(query, order)


def doc_query() -> MultiModelQuery:
    document = XMLDocument(element(
        "lib",
        element("book", element("isbn", text="7"),
                element("price", text="30")),
        element("book", element("isbn", text="9"),
                element("price", text="40")),
    ))
    root = TwigQuery.build(
        "book", lambda book: (book.child("isbn"), book.child("price")),
        name="book")
    orders = Relation("Orders", ("user", "isbn"), [(1, 7), (2, 9), (3, 8)])
    return MultiModelQuery([orders], [TwigBinding(root, document)],
                           name="Q")


class TestRelationalRegime:
    def test_small_delta_inherits_corrections(self):
        store = FeedbackStore()
        query = skewed_query()
        session = QuerySession(query, feedback=store)
        estimates = learn(store, query)
        last = estimates[-1]
        learned = store.stage_factor(query, last.source, last.attribute,
                                     last.prefix)
        assert learned != 1.0
        epoch = store.epoch
        # One row against 256: far below the 25% churn fraction. The
        # session swaps in a fresh Relation object, so without the
        # inherit hook the version-key check would zero the factor.
        session.insert(last.source, (100_000, 0))
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) == learned
        assert store.epoch == epoch

    def test_churn_burst_invalidates_corrections(self):
        store = FeedbackStore()
        query = skewed_query()
        session = QuerySession(query, feedback=store)
        estimates = learn(store, query)
        last = estimates[-1]
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) != 1.0
        epoch = store.epoch
        # One delta moving > 25% of the input (the bulk path wire
        # batches use): every correction attributed to it is dropped.
        rows = [(200_000 + i, i % 4) for i in range(100)]
        session._apply_relation(last.source, inserted=rows)
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) == 1.0
        assert store.epoch > epoch
        # And no read path resurrects it: a marginal lookup is neutral
        # too, because the version stamp itself was dropped.
        assert store.stage_factor(query, last.source, last.attribute,
                                  None) == 1.0

    def test_post_churn_plans_stay_row_identical(self):
        store = FeedbackStore()
        query = skewed_query()
        session = QuerySession(query, feedback=store)
        planner = AdaptivePlanner(store=store)
        planner.execute(query)
        rows = [(300_000 + i, (i * 3) % 16) for i in range(120)]
        session._apply_relation("R", inserted=rows)
        session.delete("T", (0, 0))
        # Post-churn the planner races fresh (neutral factors) and its
        # answer must match the session's maintained oracle.
        result = planner.execute(query)
        assert result.rows == session.answer().rows
        planner.execute(query)  # re-learned factors: still identical
        assert planner.execute(query).rows == session.answer().rows

    def test_unnotified_store_is_safe_by_version_keys(self):
        # Even *without* the session hooks (feedback=None), a store
        # observed against the old version never leaks factors into the
        # updated query: the relation object changed, the stamp
        # mismatches, every read is neutral.
        store = FeedbackStore()
        query = skewed_query()
        session = QuerySession(query)
        estimates = learn(store, query)
        last = estimates[-1]
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) != 1.0
        session.insert(last.source, (400_000, 1))
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) == 1.0


class TestDocumentRegime:
    def test_in_place_patch_inherits_rebuild_invalidates(self):
        store = FeedbackStore()
        query = doc_query()
        # Default churn_threshold: a single value edit patches the
        # columnar view in place (inherit).
        session = QuerySession(query, feedback=store)
        learn(store, query)
        epoch = store.epoch
        isbn = query.twigs[0].document.root.children[0].children[0]
        session.change_value("book", isbn, "8")
        assert store.epoch == epoch  # inherited, stamp refreshed

    def test_forced_rebuild_is_churn(self):
        store = FeedbackStore()
        query = doc_query()
        # churn_threshold=0 forces a columnar rebuild on any structural
        # edit: the maintained statistics were reconstructed wholesale,
        # so the learned corrections must go.
        session = QuerySession(query, churn_threshold=0.0, feedback=store)
        learn(store, query)
        epoch = store.epoch
        book = element("book", element("isbn", text="8"),
                       element("price", text="99"))
        session.insert_subtree("book", query.twigs[0].document.root, book)
        assert store.epoch > epoch
        assert store.stage_factor(query, "book", "book", None) == 1.0
